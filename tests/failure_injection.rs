//! Failure-injection integration tests: the protocol must keep working (with
//! degraded performance, not collapse) when links die, when a whole region of
//! the network goes silent, or when loss is extreme.

use scoop::net::{LinkModel, Topology};
use scoop::sim::SimNode;
use scoop::types::{
    DataSourceKind, ExperimentConfig, FaultWindow, NodeId, SimDuration, SimTime, StoragePolicy,
};

fn tiny_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.num_nodes = 10;
    cfg.duration = SimDuration::from_mins(9);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.policy.scoop.summary_interval = SimDuration::from_secs(45);
    cfg.policy.scoop.remap_interval = SimDuration::from_secs(90);
    cfg.workload.data_source = DataSourceKind::Gaussian;
    cfg.policy.kind = StoragePolicy::Scoop;
    cfg.seed = 13;
    cfg
}

fn run_with_links(
    cfg: &ExperimentConfig,
    mutate: impl FnOnce(&Topology, &mut LinkModel),
) -> scoop::net::Engine<SimNode> {
    let topo = Topology::office_floor(cfg.num_nodes, cfg.seed).expect("topology");
    let mut links = LinkModel::from_topology(&topo, cfg.seed);
    mutate(&topo, &mut links);
    let mut engine = scoop::sim::runner::build_engine_with(cfg, topo, links).expect("engine");
    engine.run_until(SimTime::ZERO + cfg.duration);
    engine
}

#[test]
fn network_survives_a_dead_node() {
    let cfg = tiny_cfg();
    // Kill every link to and from node 5: it can neither send nor receive.
    let engine = run_with_links(&cfg, |topo, links| {
        for other in topo.nodes() {
            links.set_link(NodeId(5), other, 0.0);
            links.set_link(other, NodeId(5), 0.0);
        }
    });
    // The rest of the network still samples, stores, and answers queries.
    let stored: u64 = engine.iter_nodes().map(|(_, n)| n.metrics.stored).sum();
    assert!(stored > 0, "the surviving nodes must still store data");
    // The dead node itself never got anything delivered to it by others.
    assert_eq!(engine.stats().node(NodeId(5)).rx.total(), 0);
    // And the basestation still managed to disseminate at least one index.
    assert!(engine.node(NodeId::BASESTATION).indices_disseminated() >= 1);
}

#[test]
fn extreme_loss_degrades_but_does_not_wedge() {
    let cfg = tiny_cfg();
    let engine = run_with_links(&cfg, |topo, links| {
        // Make every usable link terrible (90 % loss).
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && links.link(a, b).is_usable() {
                    links.set_link(a, b, 0.10);
                }
            }
        }
    });
    let sampled: u64 = engine.iter_nodes().map(|(_, n)| n.metrics.sampled).sum();
    let stored: u64 = engine.iter_nodes().map(|(_, n)| n.metrics.stored).sum();
    assert!(sampled > 0);
    // Much of the data still lands somewhere (locally at worst); the system
    // must not lose everything or hang.
    assert!(
        stored as f64 >= sampled as f64 * 0.3,
        "only {stored}/{sampled} readings stored under extreme loss"
    );
    // Retransmissions should show up as a high transmission count per
    // delivered packet.
    assert!(engine.stats().total_tx().total() > 0);
}

#[test]
fn perfect_links_give_near_perfect_reliability() {
    let cfg = tiny_cfg();
    let engine = run_with_links(&cfg, |topo, links| {
        *links = LinkModel::perfect(topo);
    });
    let sampled: u64 = engine.iter_nodes().map(|(_, n)| n.metrics.sampled).sum();
    let stored: u64 = engine.iter_nodes().map(|(_, n)| n.metrics.stored).sum();
    // Readings still sitting in an unflushed batch (or in flight) at the end
    // of the run are neither stored nor lost.
    let batched: u64 = engine
        .iter_nodes()
        .map(|(_, n)| n.pending_batched() as u64)
        .sum();
    assert!(sampled > 0);
    assert!(
        (stored + batched) as f64 >= sampled as f64 * 0.93,
        "with perfect links almost everything should be stored ({stored}+{batched} of {sampled})"
    );
    // No unicast should ever fail.
    let failures: u64 = (0..engine.topology().len())
        .map(|i| engine.stats().node(NodeId(i as u16)).send_failures)
        .sum();
    assert_eq!(failures, 0);
}

#[test]
fn fault_spec_blackout_window_silences_and_revives_nodes() {
    // The declarative fault axis: a third of the sensors lose their radio
    // for minutes 3..6 of a 9-minute run, then come back (churn).
    let mut cfg = tiny_cfg();
    cfg.faults
        .windows
        .push(FaultWindow::blackout(180, 360, 0.34));
    let mut engine = scoop::sim::build_engine(&cfg).expect("engine");
    let affected: Vec<NodeId> = engine.fault_schedule().iter().map(|o| o.node).collect();
    assert_eq!(affected.len(), 3, "round(0.34 × 10) sensors go down");

    // During the window the affected radios are dead both ways.
    engine.run_until(SimTime::ZERO + SimDuration::from_secs(180));
    let tx_at_start: Vec<u64> = affected
        .iter()
        .map(|&n| engine.stats().node(n).tx.total())
        .collect();
    engine.run_until(SimTime::ZERO + SimDuration::from_secs(359));
    for (&node, &before) in affected.iter().zip(&tx_at_start) {
        assert_eq!(
            engine.stats().node(node).tx.total(),
            before,
            "{node} transmitted during its outage"
        );
    }

    // After the window closes the node rejoins and transmits again.
    engine.run_until(SimTime::ZERO + cfg.duration);
    assert!(
        affected
            .iter()
            .zip(&tx_at_start)
            .any(|(&n, &before)| engine.stats().node(n).tx.total() > before),
        "no affected node ever rejoined after the outage window"
    );
    // The rest of the network kept working throughout.
    let stored: u64 = engine.iter_nodes().map(|(_, n)| n.metrics.stored).sum();
    assert!(stored > 0);
}

#[test]
fn fault_runs_are_deterministic_and_differ_from_fault_free_runs() {
    let mut faulty = tiny_cfg();
    faulty
        .faults
        .windows
        .push(FaultWindow::blackout(180, 360, 0.34));
    let a = scoop::sim::run_experiment(&faulty).expect("faulty run");
    let b = scoop::sim::run_experiment(&faulty).expect("faulty run repeat");
    assert_eq!(a.messages, b.messages, "fault runs must stay deterministic");
    assert_eq!(a.storage, b.storage);

    let clean = scoop::sim::run_experiment(&tiny_cfg()).expect("clean run");
    assert_ne!(
        a.messages, clean.messages,
        "a blackout window must actually change the traffic"
    );
}
