//! Integration tests of the substrates working together *below* the Scoop
//! layer: topology + link model + engine + routing + trickle chunking, and
//! the core index/planner machinery driven directly (without the full
//! simulation harness).

use scoop::core::baselines::{hash_index, AnalyticalModel};
use scoop::core::histogram::SummaryHistogram;
use scoop::core::index::{IndexBuilderConfig, IndexDecision};
use scoop::core::summary::{ReportedNeighbor, SummaryMessage};
use scoop::core::{CostModel, CostParams, IndexBuilder, QueryPlanner, StatsStore};
use scoop::net::{LinkModel, Topology};
use scoop::types::{NodeId, SimTime, StorageIndexId, Value, ValueRange};

/// Builds the basestation's statistics as if a 4-hop chain of sensors had
/// reported summaries, then runs the full index-construction + query-planning
/// pipeline without any network simulation.
fn chain_stats(n_sensors: usize, domain: ValueRange) -> StatsStore {
    let mut st = StatsStore::new(n_sensors + 1, domain);
    for i in 1..=n_sensors {
        let center = (i as Value * domain.width() as Value / (n_sensors as Value + 1))
            .clamp(domain.lo, domain.hi);
        let values: Vec<Value> = (0..30)
            .map(|k| (center + (k % 3) - 1).clamp(domain.lo, domain.hi))
            .collect();
        let mut neighbors = vec![ReportedNeighbor {
            node: NodeId((i - 1) as u16),
            quality: 0.9,
        }];
        if i < n_sensors {
            neighbors.push(ReportedNeighbor {
                node: NodeId((i + 1) as u16),
                quality: 0.9,
            });
        }
        st.record_summary(SummaryMessage {
            node: NodeId(i as u16),
            histogram: SummaryHistogram::build(&values, 10),
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            sum: values.iter().map(|&v| v as i64).sum(),
            count: values.len() as u32,
            data_rate_hz: 1.0 / 15.0,
            neighbors,
            parent: Some(NodeId((i - 1) as u16)),
            newest_complete_index: StorageIndexId::NONE,
            generated_at: SimTime::from_secs(120),
        });
    }
    st
}

#[test]
fn index_construction_places_values_near_their_producers() {
    let domain = ValueRange::new(0, 99);
    let mut st = chain_stats(8, domain);
    // Rare queries: data placement dominates.
    for q in 0..4 {
        st.record_query(
            &ValueRange::new(q * 20, q * 20 + 4),
            SimTime::from_secs(600 + q as u64 * 120),
        );
    }
    let builder = IndexBuilder::new(IndexBuilderConfig::default());
    let decision = builder.build(
        &st,
        CostParams::from_stats(&st),
        StorageIndexId(1),
        SimTime::from_secs(840),
    );
    let index = match decision {
        IndexDecision::UseIndex(i) => i,
        other => panic!("expected an index, got {other:?}"),
    };
    assert!(index.is_complete());
    // Node 4's readings cluster around 44 (centres are i·100/9); with rare
    // queries that value should be owned by node 4 or one of its immediate
    // neighbours in the chain, not by the far end or the root.
    let owner = index.lookup(44).expect("complete index");
    assert!(
        (3..=5).contains(&owner.index()),
        "value 44 should live near its producer (node 4), got {owner}"
    );
    // The planner then sends a query for that value to exactly that owner.
    let mut planner = QueryPlanner::new();
    planner.record_index(index.clone());
    let plan = planner.plan(
        &ValueRange::new(43, 45),
        SimTime::from_secs(840),
        SimTime::from_secs(900),
        StorageIndexId(1),
    );
    assert!(plan.targets.contains(owner));
    assert!(
        plan.network_targets() <= 3,
        "narrow query should touch few nodes"
    );
}

#[test]
fn heavy_query_load_degenerates_to_send_to_base() {
    let domain = ValueRange::new(0, 49);
    let mut st = chain_stats(6, domain);
    // Hammer the whole domain with queries so the query term dominates.
    for q in 0..200u64 {
        st.record_query(&domain, SimTime::from_secs(600 + q));
    }
    let builder = IndexBuilder::new(IndexBuilderConfig::default());
    let decision = builder.build(
        &st,
        CostParams::from_stats(&st),
        StorageIndexId(1),
        SimTime::from_secs(900),
    );
    let index = match decision {
        IndexDecision::UseIndex(i) => i,
        other => panic!("expected an index, got {other:?}"),
    };
    // "Notice that this algorithm may generate a send-to-base policy (if all
    // values get mapped to the basestation)".
    let at_base: u64 = index
        .entries()
        .iter()
        .filter(|e| e.owner.is_basestation())
        .map(|e| e.range.width())
        .sum();
    assert!(
        at_base as f64 >= domain.width() as f64 * 0.8,
        "with overwhelming query load most values should live at the root ({at_base}/{})",
        domain.width()
    );
}

#[test]
fn store_local_fallback_triggers_when_queries_stop() {
    let domain = ValueRange::new(0, 49);
    let st = chain_stats(6, domain);
    // No queries recorded at all: store-local costs nothing.
    let builder = IndexBuilder::new(IndexBuilderConfig {
        allow_store_local_fallback: true,
    });
    let decision = builder.build(
        &st,
        CostParams::with_query_rate(0.0),
        StorageIndexId(1),
        SimTime::from_secs(900),
    );
    match decision {
        IndexDecision::StoreLocal {
            store_local_cost,
            index_cost,
            ..
        } => {
            assert!(store_local_cost <= index_cost);
        }
        IndexDecision::UseIndex(index) => {
            // Acceptable alternative: the index itself is equivalent to
            // store-local (every producer owns its own values at zero cost).
            let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
            let cost: f64 = index
                .domain()
                .values()
                .map(|v| model.placement_cost(index.lookup(v).unwrap(), v))
                .sum();
            assert!(
                cost.abs() < 1e-6,
                "zero-query index should cost ~0, got {cost}"
            );
        }
    }
}

#[test]
fn analytical_baselines_track_topology_shape() {
    let topo = Topology::office_floor(62, 9).expect("topology");
    let links = LinkModel::from_topology(&topo, 9);
    assert!(topo.is_connected());
    assert!(links.mean_loss() > 0.2 && links.mean_loss() < 0.8);

    let model = AnalyticalModel::new(&topo);
    let base = model.base(120);
    let local = model.local(120);
    let hash = model.hash(120, 120, 1.0);
    // With equal data and query counts, LOCAL and BASE are the same order of
    // magnitude (the paper notes they perform similarly at equal rates).
    let ratio = local.total() / base.total();
    assert!(
        (0.3..=3.0).contains(&ratio),
        "LOCAL/BASE analytical ratio {ratio} out of range"
    );
    // HASH pays for querying on top of BASE-like data cost.
    assert!(hash.query + hash.reply > 0.0);
}

#[test]
fn hash_index_spreads_query_load_across_owners() {
    let domain = ValueRange::new(0, 149);
    let idx = hash_index(domain, 62, SimTime::ZERO);
    let mut planner = QueryPlanner::new();
    planner.record_index(idx);
    // A handful of narrow queries should hit a variety of different owners.
    let mut owners = std::collections::HashSet::new();
    for start in (0..140).step_by(10) {
        let plan = planner.plan(
            &ValueRange::new(start, start + 4),
            SimTime::ZERO,
            SimTime::from_secs(100),
            StorageIndexId(1),
        );
        for t in plan.targets.iter() {
            owners.insert(t);
        }
    }
    assert!(
        owners.len() > 10,
        "hash owners too concentrated: {}",
        owners.len()
    );
}
