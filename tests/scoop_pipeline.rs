//! Cross-crate integration tests: run the full Scoop pipeline (tree
//! formation, statistics collection, index construction and dissemination,
//! data routing, querying) end to end on a small network and check the
//! system-level invariants the paper relies on.

use scoop::sim::{build_engine, run_experiment};
use scoop::types::{DataSourceKind, ExperimentConfig, NodeId, SimDuration, SimTime, StoragePolicy};

/// A configuration small enough for debug-mode CI but still covering every
/// protocol phase (several summary rounds, at least two remap rounds, many
/// queries).
fn tiny(policy: StoragePolicy, source: DataSourceKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.num_nodes = 12;
    cfg.duration = SimDuration::from_mins(10);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.policy.scoop.summary_interval = SimDuration::from_secs(45);
    cfg.policy.scoop.remap_interval = SimDuration::from_secs(90);
    cfg.policy.kind = policy;
    cfg.workload.data_source = source;
    cfg.seed = 5;
    cfg
}

#[test]
fn scoop_end_to_end_builds_an_index_and_answers_queries() {
    let cfg = tiny(StoragePolicy::Scoop, DataSourceKind::Real);
    let result = run_experiment(&cfg).expect("run");

    // The index machinery actually ran.
    assert!(
        result.indices_disseminated >= 1,
        "no storage index was ever disseminated"
    );
    assert!(result.messages.mapping > 0);
    assert!(result.messages.summary > 0);

    // Data was sampled, and the overwhelming majority was stored somewhere.
    assert!(result.storage.sampled > 100);
    assert!(
        result.storage.storage_success() > 0.6,
        "storage success {:.2} too low",
        result.storage.storage_success()
    );

    // Queries were issued and a reasonable fraction answered.
    assert!(result.queries.issued > 10);
    assert!(
        result.queries.query_success() > 0.3,
        "query success {:.2} too low",
        result.queries.query_success()
    );
}

#[test]
fn every_sensor_joins_the_routing_tree_during_warmup() {
    let cfg = tiny(StoragePolicy::Scoop, DataSourceKind::Gaussian);
    let mut engine = build_engine(&cfg).expect("engine");
    engine.run_until(SimTime::ZERO + cfg.warmup);
    let attached = engine
        .iter_nodes()
        .filter(|(id, node)| !id.is_basestation() && node.routing().is_attached())
        .count();
    assert!(
        attached >= cfg.num_nodes - 1,
        "only {attached}/{} sensors joined the tree during warmup",
        cfg.num_nodes
    );
}

#[test]
fn nodes_converge_on_the_basestations_index_epoch() {
    let cfg = tiny(StoragePolicy::Scoop, DataSourceKind::Unique);
    let mut engine = build_engine(&cfg).expect("engine");
    engine.run_until(SimTime::ZERO + cfg.duration);
    let base_epoch = engine.node(NodeId::BASESTATION).newest_index_id();
    assert!(base_epoch.is_some(), "the basestation never built an index");
    let with_index = engine
        .iter_nodes()
        .filter(|(id, node)| !id.is_basestation() && node.newest_index_id().is_some())
        .count();
    assert!(
        with_index as f64 >= cfg.num_nodes as f64 * 0.7,
        "only {with_index}/{} sensors ever assembled a complete index",
        cfg.num_nodes
    );
    // No sensor can hold an index newer than the basestation's.
    for (id, node) in engine.iter_nodes() {
        assert!(
            node.newest_index_id() <= base_epoch,
            "{id} holds index {:?} newer than the basestation's {:?}",
            node.newest_index_id(),
            base_epoch
        );
    }
}

#[test]
fn readings_end_up_on_their_designated_owner_or_the_root() {
    let cfg = tiny(StoragePolicy::Scoop, DataSourceKind::Unique);
    let result = run_experiment(&cfg).expect("run");
    // Everything that was routed under an index landed either on the owner
    // or on the root fallback; nothing vanished into a third category.
    assert!(result.storage.stored_at_owner > 0);
    assert!(
        result.storage.destination_accuracy() > 0.5,
        "destination accuracy {:.2} too low",
        result.storage.destination_accuracy()
    );
}

#[test]
fn scoop_beats_base_and_local_on_structured_data() {
    let scoop = run_experiment(&tiny(StoragePolicy::Scoop, DataSourceKind::Unique)).expect("run");
    let base = run_experiment(&tiny(StoragePolicy::Base, DataSourceKind::Unique)).expect("run");
    let local = run_experiment(&tiny(StoragePolicy::Local, DataSourceKind::Unique)).expect("run");
    assert!(
        scoop.total_messages() < base.total_messages(),
        "scoop {} should beat base {}",
        scoop.total_messages(),
        base.total_messages()
    );
    assert!(
        scoop.total_messages() < local.total_messages(),
        "scoop {} should beat local {}",
        scoop.total_messages(),
        local.total_messages()
    );
}

#[test]
fn random_data_degenerates_towards_base_like_cost() {
    // "RANDOM represents the case where there is no predictability in the
    // data ... the system basically degenerates into performance that is
    // equivalent to BASE or HASH."
    let scoop = run_experiment(&tiny(StoragePolicy::Scoop, DataSourceKind::Random)).expect("run");
    let base = run_experiment(&tiny(StoragePolicy::Base, DataSourceKind::Random)).expect("run");
    let ratio = scoop.total_messages() as f64 / base.total_messages().max(1) as f64;
    assert!(
        (0.5..=2.5).contains(&ratio),
        "scoop-on-random should be within a small factor of base, ratio {ratio:.2}"
    );
}

#[test]
fn base_policy_concentrates_receptions_at_the_root() {
    let result = run_experiment(&tiny(StoragePolicy::Base, DataSourceKind::Gaussian)).expect("run");
    let skew = result.root_skew();
    assert!(
        skew.root_rx as f64 > skew.mean_sensor_rx * 2.0,
        "the BASE root should receive far more than an average sensor"
    );
}

#[test]
fn results_are_reproducible_and_seed_sensitive() {
    let cfg = tiny(StoragePolicy::Scoop, DataSourceKind::Real);
    let a = run_experiment(&cfg).expect("run");
    let b = run_experiment(&cfg).expect("run");
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.per_node_tx, b.per_node_tx);

    let mut other = cfg.clone();
    other.seed = cfg.seed + 1;
    let c = run_experiment(&other).expect("run");
    assert_ne!(
        (a.messages, a.storage),
        (c.messages, c.storage),
        "different seeds should produce different traces"
    );
}
