//! Property-based tests (proptest) on the core data structures and
//! invariants: storage indices, histograms, value ranges, bitmaps, chunking,
//! and the cost model's placement properties P1-P3 from Section 4.

use proptest::prelude::*;
use scoop::core::histogram::SummaryHistogram;
use scoop::core::index::{IndexEntry, StorageIndex};
use scoop::core::summary::{ReportedNeighbor, SummaryMessage};
use scoop::core::{CostModel, CostParams, StatsStore};
use scoop::trickle::{ChunkAssembler, Chunker};
use scoop::types::{NodeBitmap, NodeId, SimTime, StorageIndexId, Value, ValueRange};

fn arb_domain() -> impl Strategy<Value = ValueRange> {
    (0i32..50, 1i32..150).prop_map(|(lo, w)| ValueRange::new(lo, lo + w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // StorageIndex
    // ------------------------------------------------------------------

    /// Building an index from a per-value owner vector and looking every
    /// value back up returns exactly that vector, no matter how owners are
    /// arranged; compaction never changes the mapping.
    #[test]
    fn storage_index_roundtrips_owner_assignment(
        domain in arb_domain(),
        owner_seed in proptest::collection::vec(0u16..20, 1..200),
    ) {
        let width = domain.width() as usize;
        let owners: Vec<NodeId> = (0..width)
            .map(|i| NodeId(owner_seed[i % owner_seed.len()]))
            .collect();
        let idx = StorageIndex::from_owners(StorageIndexId(1), domain, &owners, SimTime::ZERO)
            .expect("sized correctly");
        prop_assert!(idx.is_complete());
        for (i, &expected) in owners.iter().enumerate() {
            let v = domain.lo + i as Value;
            prop_assert_eq!(idx.lookup(v), Some(expected));
        }
        // Outside the domain nothing is owned.
        prop_assert_eq!(idx.lookup(domain.lo - 1), None);
        prop_assert_eq!(idx.lookup(domain.hi + 1), None);
        // Entries are sorted, non-overlapping, and contiguous.
        for pair in idx.entries().windows(2) {
            prop_assert_eq!(pair[0].range.hi + 1, pair[1].range.lo);
            prop_assert!(pair[0].owner != pair[1].owner, "adjacent equal owners must coalesce");
        }
    }

    /// The difference fraction is a pseudometric: zero against itself,
    /// symmetric, and within [0, 1].
    #[test]
    fn storage_index_difference_fraction_properties(
        domain in arb_domain(),
        owners_a in proptest::collection::vec(0u16..6, 1..40),
        owners_b in proptest::collection::vec(0u16..6, 1..40),
    ) {
        let width = domain.width() as usize;
        let mk = |seeds: &[u16], id: u32| {
            let owners: Vec<NodeId> = (0..width).map(|i| NodeId(seeds[i % seeds.len()])).collect();
            StorageIndex::from_owners(StorageIndexId(id), domain, &owners, SimTime::ZERO).unwrap()
        };
        let a = mk(&owners_a, 1);
        let b = mk(&owners_b, 2);
        prop_assert_eq!(a.difference_fraction(&a), 0.0);
        let d_ab = a.difference_fraction(&b);
        let d_ba = b.difference_fraction(&a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d_ab));
    }

    /// Owners listed for a query range are exactly the owners of the values
    /// in that range.
    #[test]
    fn owners_for_range_matches_per_value_lookup(
        domain in arb_domain(),
        owner_seed in proptest::collection::vec(0u16..8, 1..30),
        qlo in 0i32..200,
        qwidth in 0i32..60,
    ) {
        let width = domain.width() as usize;
        let owners: Vec<NodeId> = (0..width).map(|i| NodeId(owner_seed[i % owner_seed.len()])).collect();
        let idx = StorageIndex::from_owners(StorageIndexId(1), domain, &owners, SimTime::ZERO).unwrap();
        let q = ValueRange::new(qlo, qlo + qwidth);
        let from_ranges = idx.owners_for_range(&q);
        let mut from_lookup: Vec<NodeId> = q
            .values()
            .filter_map(|v| idx.lookup(v))
            .collect();
        from_lookup.sort();
        from_lookup.dedup();
        prop_assert_eq!(from_ranges, from_lookup);
    }

    // ------------------------------------------------------------------
    // Histogram
    // ------------------------------------------------------------------

    /// The histogram's probability mass over its own support sums to roughly
    /// one (the paper's estimator assumes values are uniform within a bin, so
    /// integer quantization can push the sum a little past 1 in either
    /// direction when bins are narrower than one value) and is zero outside
    /// [min, max].
    #[test]
    fn histogram_probabilities_form_a_distribution(
        values in proptest::collection::vec(-500i32..500, 1..60),
        n_bins in 1usize..20,
    ) {
        let h = SummaryHistogram::build(&values, n_bins).expect("non-empty");
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let sum: f64 = (min..=max).map(|v| h.probability_of(v)).sum();
        prop_assert!(sum <= 1.5, "sum {sum} overshoots far too much");
        prop_assert!(sum >= 0.5, "sum {sum} lost too much mass");
        prop_assert_eq!(h.probability_of(min - 1), 0.0);
        prop_assert_eq!(h.probability_of(max + 1), 0.0);
        prop_assert_eq!(h.total() as usize, values.len());
    }

    /// Every observed value has non-zero probability.
    #[test]
    fn histogram_observed_values_have_positive_probability(
        values in proptest::collection::vec(0i32..150, 1..40),
    ) {
        let h = SummaryHistogram::build(&values, 10).expect("non-empty");
        for &v in &values {
            prop_assert!(h.probability_of(v) > 0.0, "observed value {v} got zero probability");
        }
    }

    // ------------------------------------------------------------------
    // ValueRange and NodeBitmap
    // ------------------------------------------------------------------

    /// Range intersection is commutative, contained in both operands, and
    /// consistent with `overlaps`.
    #[test]
    fn value_range_intersection_properties(
        a_lo in -100i32..100, a_w in 0i32..80,
        b_lo in -100i32..100, b_w in 0i32..80,
    ) {
        let a = ValueRange::new(a_lo, a_lo + a_w);
        let b = ValueRange::new(b_lo, b_lo + b_w);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.is_some(), a.overlaps(&b));
        if let Some(i) = ab {
            prop_assert!(a.covers(&i) && b.covers(&i));
            prop_assert!(i.width() <= a.width() && i.width() <= b.width());
        }
    }

    /// Bitmap membership matches the set of inserted ids, under inserts and
    /// removes.
    #[test]
    fn node_bitmap_behaves_like_a_set(
        inserts in proptest::collection::vec(0u16..128, 0..60),
        removes in proptest::collection::vec(0u16..128, 0..30),
    ) {
        let mut bm = NodeBitmap::empty();
        let mut model = std::collections::BTreeSet::new();
        for &i in &inserts {
            bm.insert(NodeId(i));
            model.insert(i);
        }
        for &r in &removes {
            bm.remove(NodeId(r));
            model.remove(&r);
        }
        prop_assert_eq!(bm.len(), model.len());
        let from_bm: Vec<u16> = bm.iter().map(|n| n.0).collect();
        let from_model: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(from_bm, from_model);
    }

    // ------------------------------------------------------------------
    // Chunking
    // ------------------------------------------------------------------

    /// Splitting an index into chunks and reassembling them in any order
    /// reproduces the original entries exactly.
    #[test]
    fn chunk_split_reassemble_roundtrip(
        domain in arb_domain(),
        owner_seed in proptest::collection::vec(0u16..10, 1..40),
        per_chunk in 1usize..12,
        shuffle_seed in 0u64..1000,
    ) {
        let width = domain.width() as usize;
        let owners: Vec<NodeId> = (0..width).map(|i| NodeId(owner_seed[i % owner_seed.len()])).collect();
        let idx = StorageIndex::from_owners(StorageIndexId(3), domain, &owners, SimTime::ZERO).unwrap();
        let chunker = Chunker::new(per_chunk);
        let mut chunks = chunker.split(3, idx.entries());
        // Deterministic pseudo-shuffle.
        let n = chunks.len();
        for i in 0..n {
            let j = ((shuffle_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            chunks.swap(i, j);
        }
        let mut asm: ChunkAssembler<IndexEntry> = ChunkAssembler::new();
        let mut assembled = None;
        for c in &chunks {
            if let Some(entries) = asm.accept(c) {
                assembled = Some(entries);
            }
        }
        let entries = assembled.expect("all chunks delivered");
        prop_assert_eq!(entries, idx.entries().to_vec());
    }

    // ------------------------------------------------------------------
    // Cost model / placement properties (Section 4, P1-P3)
    // ------------------------------------------------------------------

    /// P3: with no queries, a value produced by exactly one node is owned by
    /// that node (storing at the producer is free).
    #[test]
    fn sole_producer_owns_its_value_without_queries(
        producer in 1u16..5,
        value in 0i32..100,
    ) {
        let domain = ValueRange::new(0, 99);
        let mut st = StatsStore::new(6, domain);
        for i in 1..6u16 {
            let vals = if i == producer { vec![value; 20] } else { vec![] };
            st.record_summary(SummaryMessage {
                node: NodeId(i),
                histogram: SummaryHistogram::build(&vals, 10),
                min: vals.iter().min().copied(),
                max: vals.iter().max().copied(),
                sum: vals.iter().map(|&v| v as i64).sum(),
                count: vals.len() as u32,
                data_rate_hz: if i == producer { 1.0 / 15.0 } else { 0.0 },
                neighbors: vec![ReportedNeighbor { node: NodeId(i - 1), quality: 0.9 }],
                parent: Some(NodeId(i - 1)),
                newest_complete_index: StorageIndexId(1),
                generated_at: SimTime::from_secs(60),
            });
        }
        let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
        let (owner, cost) = model.best_owner(value, &st.candidate_owners());
        prop_assert_eq!(owner, NodeId(producer));
        prop_assert!(cost.abs() < 1e-9);
    }
}
