//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no network access, so this shim provides the
//! subset of the `rand 0.8` API the workspace actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range` / `gen_bool`. The generator is xoshiro256++ (public
//! domain construction) seeded through SplitMix64 — deterministic, fast, and
//! `Send`, which is all the simulator needs. Streams differ from the real
//! `rand::rngs::StdRng`, but nothing in this workspace depends on specific
//! values, only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's multiply-shift keeps bias below 2^-64 without a loop.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..10).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3u16..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn singleton_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(rng.gen_range(4u64..=4), 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_covers_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let seen: std::collections::HashSet<u8> =
            (0..4000).map(|_| rng.gen_range(0u8..=100)).collect();
        assert!(seen.len() > 95, "only {} distinct values", seen.len());
    }
}
