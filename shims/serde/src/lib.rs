//! Minimal, dependency-free stand-in for `serde` (+ the data model behind the
//! in-tree `serde_json` shim).
//!
//! The build container has no network access, so this shim provides the
//! subset of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, routed through a simple JSON-like [`Value`]
//! data model instead of serde's visitor architecture. The derive macros are
//! hand-written in `serde_derive` (no `syn`/`quote`) and generate
//! [`Serialize::to_value`] / [`Deserialize::from_value`] implementations.
//!
//! Format mapping (matching what real serde_json would produce for the same
//! types, so a future swap to the real crates keeps files readable):
//! named structs -> objects; newtype structs -> their inner value; tuple
//! structs -> arrays; unit enum variants -> strings; data-carrying variants
//! -> externally tagged single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A parsed / to-be-serialized JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any integer parsed with a leading `-`).
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Pairs keep insertion order so output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// This value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::I64(v) => (v as i128) == (*other as i128),
                    Value::U64(v) => (v as i128) == (*other as i128),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// Error for a missing object field.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array (tuple)", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs: keys are not restricted
/// to strings in this workspace, and pair arrays round-trip losslessly.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn signed_cross_representation() {
        // A non-negative i64 serializes as U64 but must deserialize as i64.
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
        assert_eq!(u64::from_value(&Value::I64(9)).unwrap(), 9);
        assert!(u64::from_value(&Value::I64(-9)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [5i32, 6, 7];
        assert_eq!(<[i32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&pair.to_value()).unwrap(), pair);
        let mut map = HashMap::new();
        map.insert(3u16, 9u64);
        assert_eq!(
            HashMap::<u16, u64>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Array(vec![Value::Object(vec![(
            "n".to_string(),
            Value::U64(1234),
        )])]);
        assert_eq!(v[0]["n"], 1234);
        assert!(v[9]["missing"].is_null());
        assert_eq!(Value::Str("abc".into()), "abc");
        assert_eq!(Value::F64(0.5), 0.5);
    }
}
