//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build container has no network access, so this shim provides the
//! subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! sampled from a fixed deterministic seed (derived from the test name) and
//! failures are reported by the underlying `assert!` — there is no shrinking.
//! That keeps runs reproducible without any persistence files.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies while sampling cases.
pub type TestRng = StdRng;

/// Creates the deterministic generator for one named test.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline test suite
            // fast while still exploring a meaningful sample.
            Config { cases: 64 }
        }
    }
}

/// Strategies: how to sample a value of some type.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms sampled values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy producing one fixed value (cloned per case).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn` runs its body once per sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut proptest_rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50, 0u32..50).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0i32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..10).contains(x)));
        }

        #[test]
        fn prop_map_applies(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let s = 0u64..1_000_000;
        for _ in 0..20 {
            assert_eq!(
                crate::strategy::Strategy::sample(&s, &mut a),
                crate::strategy::Strategy::sample(&s, &mut b)
            );
        }
    }
}
