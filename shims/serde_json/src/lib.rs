//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the [`serde`] shim's [`Value`] data
//! model. Supports exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and a [`Value`] type with indexing.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                // Keep floats recognizable as floats on re-parse.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && !self.bytes[start..end].is_ascii() {
                        // Multi-byte sequence: extend until it decodes.
                        if std::str::from_utf8(&self.bytes[start..end]).is_ok() {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at offset {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let s = "a \"quoted\"\nline".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);

        let f = -0.125f64;
        let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn parses_into_value() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5], "b": null, "c": "x"}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert!(v["b"].is_null());
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Value = from_str(r#"{"rows":[{"n":1},{"n":2}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_keep_their_type() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let v: Value = from_str(&json).unwrap();
        assert_eq!(v, 2.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
