//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the in-tree `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`). Supported shapes — which cover every derived type in
//! this workspace:
//!
//! * structs with named fields (including generic type parameters),
//! * tuple structs (newtypes serialize transparently, wider tuples as arrays),
//! * unit structs,
//! * enums with unit and tuple variants (externally tagged, like serde).
//!
//! Two field-level `#[serde(...)]` attributes are supported on named-field
//! structs, with the same semantics as real serde:
//!
//! * `#[serde(default)]` — a missing (or `null`) key deserializes to
//!   `Default::default()` instead of erroring,
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted from
//!   the serialized object when `path(&self.field)` returns `true`.
//!
//! Any other `#[serde(...)]` attribute, and struct-variant enums, are *not*
//! supported; using them fails the build loudly rather than silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
struct Input {
    name: String,
    /// Generic type parameter names, e.g. `["P"]` for `Packet<P>`.
    type_params: Vec<String>,
    /// Lifetime parameter names (re-emitted without bounds).
    lifetimes: Vec<String>,
    body: Body,
}

/// One named struct field plus its parsed `#[serde(...)]` attributes.
struct Field {
    name: String,
    /// `#[serde(default)]`: tolerate a missing key on deserialize.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: predicate path, if any.
    skip_serializing_if: Option<String>,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, usize)>),
}

/// Derives `serde::Serialize` via the shim's `to_value` data model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let (impl_generics, ty_generics, where_clause) = generics_for(&parsed, "Serialize");
    let name = &parsed.name;
    let body = match &parsed.body {
        Body::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let name = &f.name;
                    match &f.skip_serializing_if {
                        None => format!(
                            "__pairs.push((::std::string::String::from(\"{name}\"), \
                             ::serde::Serialize::to_value(&self.{name})));"
                        ),
                        Some(path) => format!(
                            "if !({path})(&self.{name}) {{ \
                             __pairs.push((::std::string::String::from(\"{name}\"), \
                             ::serde::Serialize::to_value(&self.{name}))); }}"
                        ),
                    }
                })
                .collect();
            format!(
                "let mut __pairs: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}\n::serde::Value::Object(__pairs)"
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    k => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("f{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(::std::vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {where_clause} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated code must parse")
}

/// Derives `serde::Deserialize` via the shim's `from_value` data model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let (impl_generics, ty_generics, where_clause) = generics_for(&parsed, "Deserialize");
    let name = &parsed.name;
    let body = match &parsed.body {
        Body::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    if f.default {
                        format!(
                            "{fname}: match v.get(\"{fname}\") {{\n\
                                 ::std::option::Option::Some(val) if !val.is_null() => \
                                     ::serde::Deserialize::from_value(val)?,\n\
                                 _ => ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!(
                            "{fname}: ::serde::Deserialize::from_value(\
                             v.get(\"{fname}\").unwrap_or(&::serde::Value::Null))?,"
                        )
                    }
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {n} elements, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(_inner)?)),"
                        )
                    } else {
                        let inits: String = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                                 let items = _inner.as_array()\
                                     .ok_or_else(|| ::serde::Error::expected(\"array\", _inner))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"wrong tuple-variant arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({inits}))\n\
                             }}"
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, _inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::expected(\"{name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {where_clause} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize): generated code must parse")
}

/// Renders `impl<...>`, `Name<...>`, and a where clause binding every type
/// parameter to the given shim trait.
fn generics_for(input: &Input, bound: &str) -> (String, String, String) {
    if input.type_params.is_empty() && input.lifetimes.is_empty() {
        return (String::new(), String::new(), String::new());
    }
    let mut params: Vec<String> = input.lifetimes.clone();
    params.extend(input.type_params.iter().cloned());
    let list = params.join(", ");
    let where_clause = if input.type_params.is_empty() {
        String::new()
    } else {
        let bounds: Vec<String> = input
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{bound}"))
            .collect();
        format!("where {}", bounds.join(", "))
    };
    (format!("<{list}>"), format!("<{list}>"), where_clause)
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive shim: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive shim: expected type name, got {other}"),
    };
    i += 1;

    let (type_params, lifetimes) = parse_generics(&tokens, &mut i);

    // Skip anything (e.g. a where clause) up to the body. Bounds inside a
    // where clause are not re-emitted; none of the derived types use one.
    match kind.as_str() {
        "struct" => {
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        return Input {
                            name,
                            type_params,
                            lifetimes,
                            body: Body::Named(parse_named_fields(g.stream())),
                        };
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        return Input {
                            name,
                            type_params,
                            lifetimes,
                            body: Body::Tuple(count_tuple_fields(g.stream())),
                        };
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => {
                        return Input {
                            name,
                            type_params,
                            lifetimes,
                            body: Body::Unit,
                        };
                    }
                    _ => i += 1,
                }
            }
            panic!("derive shim: struct `{name}` has no body");
        }
        "enum" => {
            while i < tokens.len() {
                if let TokenTree::Group(g) = &tokens[i] {
                    if g.delimiter() == Delimiter::Brace {
                        return Input {
                            name: name.clone(),
                            type_params,
                            lifetimes,
                            body: Body::Enum(parse_variants(g.stream(), &name)),
                        };
                    }
                }
                i += 1;
            }
            panic!("derive shim: enum `{name}` has no body");
        }
        other => panic!("derive shim: cannot derive for `{other}` items"),
    }
}

/// Returns `true` if the attribute group (the `[...]` after a `#`) is a
/// `#[serde(...)]` attribute.
fn is_serde_attr(group: &proc_macro::Group) -> bool {
    matches!(
        group.stream().into_iter().next(),
        Some(TokenTree::Ident(id)) if id.to_string() == "serde"
    )
}

/// Advances past `#[...]` attributes and a `pub` / `pub(...)` visibility.
///
/// Only named-struct *fields* interpret `#[serde(...)]` (see
/// [`take_field_attrs`]); everywhere this skipper runs — containers, enum
/// variants, tuple fields — a serde attribute would be ignored, so its
/// presence must fail the build loudly instead of silently misbehaving.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if is_serde_attr(g) {
                        panic!(
                            "derive shim: #[serde(...)] is only supported on named \
                             struct fields, not here"
                        );
                    }
                }
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` after the type name, returning (type params, lifetimes).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (Vec<String>, Vec<String>) {
    let mut type_params = Vec::new();
    let mut lifetimes = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (type_params, lifetimes),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && at_param_start => {
                *i += 1;
                if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
                    lifetimes.push(format!("'{id}"));
                    *i += 1;
                }
                at_param_start = false;
            }
            TokenTree::Ident(id) if depth == 1 && at_param_start => {
                let text = id.to_string();
                if text != "const" {
                    type_params.push(text);
                }
                at_param_start = false;
                *i += 1;
            }
            _ => {
                // Bounds, defaults, nested generics: irrelevant to the shim.
                *i += 1;
            }
        }
    }
    (type_params, lifetimes)
}

/// Parses the payload of one `#[serde(...)]` attribute into `field`,
/// panicking on anything this shim does not implement.
fn apply_serde_attr(stream: TokenStream, field: &mut Field) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                field.default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => i += 1,
                    other => {
                        panic!("derive shim: skip_serializing_if needs `= \"path\"`, got {other:?}")
                    }
                }
                let literal = match tokens.get(i) {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    other => panic!(
                        "derive shim: skip_serializing_if needs a string path, got {other:?}"
                    ),
                };
                field.skip_serializing_if = Some(literal.trim_matches('"').to_string());
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!(
                "derive shim: unsupported #[serde(...)] attribute content `{other}` \
                 (only `default` and `skip_serializing_if = \"path\"` are implemented)"
            ),
        }
    }
}

/// Advances past a field's attributes and visibility, recording any
/// `#[serde(...)]` attribute contents into `field`.
fn take_field_attrs(tokens: &[TokenTree], i: &mut usize, field: &mut Field) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                        (inner.first(), inner.get(1))
                    {
                        if id.to_string() == "serde" {
                            apply_serde_attr(args.stream(), field);
                        }
                    }
                }
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Extracts fields (names plus serde attributes) from the brace group of a
/// named-field struct.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut parsed = Field {
            name: String::new(),
            default: false,
            skip_serializing_if: None,
        };
        take_field_attrs(&tokens, &mut i, &mut parsed);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive shim: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("derive shim: expected `:` after `{field}`, got {other}"),
        }
        parsed.name = field;
        fields.push(parsed);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct's paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        // A serde attribute on a tuple field would be ignored (only named
        // fields parse them): fail loudly instead.
        if let TokenTree::Group(g) = t {
            if g.delimiter() == Delimiter::Bracket && is_serde_attr(g) {
                panic!(
                    "derive shim: #[serde(...)] is only supported on named \
                     struct fields, not tuple fields"
                );
            }
        }
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

/// Extracts `(variant name, tuple arity)` pairs from an enum body.
fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive shim: expected variant name in `{enum_name}`, got {other}"),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_tuple_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("derive shim: struct-variant `{enum_name}::{variant}` is not supported")
                }
                _ => {}
            }
        }
        variants.push((variant, arity));
        // Skip to the next top-level comma (covers discriminants).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}
