//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Provides the API surface the workspace's micro-benchmarks use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`]) and prints
//! simple mean wall-clock timings. There is no statistical analysis; bench
//! targets must set `harness = false` (which they need with real criterion
//! anyway).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 20, &mut f);
        self
    }
}

/// A named benchmark id with a parameter, mirroring criterion's.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim has no time-based sampling.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Hands the measured closure to the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured round.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warmup call, then calibrate so a sample takes >= ~1ms.
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        let iters = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)) as u64 + 1
        } else {
            1
        };
        self.iters_per_sample = iters;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut all = Vec::new();
    let mut iters = 1u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        iters = b.iters_per_sample.max(1);
        all.extend(b.samples);
    }
    if all.is_empty() {
        println!("  {id}: no samples (Bencher::iter never called)");
        return;
    }
    let total: Duration = all.iter().sum();
    let mean_ns = total.as_nanos() as f64 / (all.len() as u64 * iters) as f64;
    let min_ns = all.iter().map(|d| d.as_nanos()).min().unwrap_or(0) as f64 / iters as f64;
    println!(
        "  {id}: mean {:.1} us/iter, best {:.1} us/iter ({} samples x {} iters)",
        mean_ns / 1_000.0,
        min_ns / 1_000.0,
        all.len(),
        iters
    );
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_closures() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("case", 1), &3u32, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                });
            });
            group.finish();
        }
        assert!(calls > 0);
    }
}
