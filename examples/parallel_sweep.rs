//! Parallel scenario sweep: run a policy × data-source grid through the
//! `SweepRunner`, verify the parallel results match the sequential baseline
//! bit for bit, and report the wall-clock difference.
//!
//! ```bash
//! cargo run --release --example parallel_sweep [-- threads]
//! ```

use scoop::sim::sweep::{ScenarioSuite, SweepRunner};
use scoop::types::{DataSourceKind, ExperimentConfig, SimDuration, StoragePolicy};
use std::time::Instant;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| SweepRunner::from_env().threads().max(4));

    // A 4-policy × 5-source grid of small runs, two trials each: 40 runs.
    let mut suite = ScenarioSuite::new("policy-x-source", 2);
    let mut seed = 1u64;
    for policy in StoragePolicy::ALL {
        for source in DataSourceKind::ALL {
            let mut cfg = ExperimentConfig::small_test();
            cfg.num_nodes = 12;
            cfg.duration = SimDuration::from_mins(10);
            cfg.warmup = SimDuration::from_mins(2);
            cfg.policy.kind = policy;
            cfg.workload.data_source = source;
            cfg.seed = seed;
            seed += 1;
            suite = suite.scenario(format!("{policy}/{source}"), cfg);
        }
    }
    println!(
        "suite `{}`: {} scenarios x {} trials = {} runs",
        suite.name,
        suite.scenarios.len(),
        suite.trials,
        suite.job_count()
    );

    let start = Instant::now();
    let sequential = SweepRunner::sequential()
        .run(&suite)
        .expect("sequential sweep");
    let seq_elapsed = start.elapsed();

    let start = Instant::now();
    let parallel = SweepRunner::with_threads(threads)
        .run(&suite)
        .expect("parallel sweep");
    let par_elapsed = start.elapsed();

    let identical = sequential
        .results
        .iter()
        .zip(&parallel.results)
        .all(|(a, b)| a.trials == b.trials && a.averaged == b.averaged);
    println!(
        "sequential: {:.2} s | {} threads: {:.2} s | speedup {:.2}x | results identical: {identical}",
        seq_elapsed.as_secs_f64(),
        threads,
        par_elapsed.as_secs_f64(),
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(1e-9),
    );
    assert!(
        identical,
        "parallel sweep diverged from the sequential baseline"
    );

    println!(
        "\n{:<18} {:>10} {:>12}",
        "scenario", "messages", "storage ok"
    );
    for result in &parallel.results {
        println!(
            "{:<18} {:>10} {:>11.1}%",
            result.label,
            result.averaged.total_messages(),
            result.averaged.storage.storage_success() * 100.0
        );
    }
}
