//! Regenerate any figure or table from the paper's evaluation.
//!
//! A thin wrapper over `scoop-lab run` — same flags, same artifact output
//! (runs are persisted under `results/`; follow with `scoop-lab report` to
//! regenerate `EXPERIMENTS.md`):
//!
//! ```bash
//! # quick (16-node, 12-minute) versions of everything:
//! cargo run --release --example reproduce -- --quick all
//! # one experiment at paper scale (62 nodes, 40 minutes, 3 trials):
//! cargo run --release --example reproduce -- fig3-middle
//! # machine-readable output:
//! cargo run --release --example reproduce -- --json fig4
//! ```
//!
//! Experiments: `fig3-left`, `fig3-middle`, `fig3-right`, `fig4`, `fig5`,
//! `sample-interval`, `reliability`, `root-skew`, `scaling`, `ablations`,
//! `all`.

fn main() {
    let mut args: Vec<String> = vec!["run".to_string()];
    args.extend(std::env::args().skip(1));
    std::process::exit(scoop::lab::cli::run_cli(&args));
}
