//! Regenerate any figure or table from the paper's evaluation.
//!
//! ```bash
//! # quick (16-node, 12-minute) versions of everything:
//! cargo run --release --example reproduce -- --quick all
//! # one experiment at paper scale (62 nodes, 40 minutes, 3 trials):
//! cargo run --release --example reproduce -- fig3-middle
//! # machine-readable output:
//! cargo run --release --example reproduce -- --json fig4
//! ```
//!
//! Experiments: `fig3-left`, `fig3-middle`, `fig3-right`, `fig4`, `fig5`,
//! `sample-interval`, `reliability`, `root-skew`, `scaling`, `ablations`,
//! `all`.

use scoop::sim::experiments::{self, fig4, fig5};
use scoop::sim::report;
use scoop::types::{DataSourceKind, StoragePolicy};

struct Options {
    quick: bool,
    json: bool,
    trials: usize,
    which: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        json: false,
        trials: 0,
        which: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            other if other.starts_with("--trials=") => {
                opts.trials = other.trim_start_matches("--trials=").parse().unwrap_or(0);
            }
            other => opts.which.push(other.to_string()),
        }
    }
    if opts.which.is_empty() {
        opts.which.push("all".to_string());
    }
    if opts.trials == 0 {
        opts.trials = if opts.quick { 1 } else { 3 };
    }
    opts
}

fn main() {
    let opts = parse_args();
    let base = if opts.quick {
        experiments::quick_base()
    } else {
        experiments::paper_base()
    };
    let trials = opts.trials;
    let wants = |name: &str| opts.which.iter().any(|w| w == name || w == "all");

    if wants("fig3-left") {
        let rows = experiments::fig3_left(&base, trials).expect("fig3 left");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!(
                "{}",
                report::fig3_table("Figure 3 (left): testbed comparison", &rows)
            );
        }
    }
    if wants("fig3-middle") {
        let rows = experiments::fig3_middle(&base, trials).expect("fig3 middle");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!(
                "{}",
                report::fig3_table("Figure 3 (middle): policies on the REAL trace", &rows)
            );
        }
    }
    if wants("fig3-right") {
        let rows = experiments::fig3_right(&base, trials).expect("fig3 right");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!(
                "{}",
                report::fig3_table("Figure 3 (right): Scoop across data sources", &rows)
            );
        }
    }
    if wants("fig4") {
        let rows = experiments::fig4_selectivity(&base, &fig4::default_width_fracs(), trials)
            .expect("fig4");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::fig4_table(&rows));
        }
    }
    if wants("fig5") {
        let rows = experiments::fig5_query_interval(&base, &fig5::default_intervals(), trials)
            .expect("fig5");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::fig5_table(&rows));
        }
    }
    if wants("sample-interval") {
        let rows = experiments::sample_interval_sweep(
            &base,
            &[
                DataSourceKind::Real,
                DataSourceKind::Random,
                DataSourceKind::Unique,
            ],
            &[15, 30, 60],
            trials,
        )
        .expect("sample interval");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::sample_interval_table(&rows));
        }
    }
    if wants("reliability") {
        let rows =
            experiments::reliability(&base, &[StoragePolicy::Scoop], trials).expect("reliability");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::reliability_table(&rows));
        }
    }
    if wants("root-skew") {
        let rows = experiments::root_skew(&base, trials).expect("root skew");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::root_skew_table(&rows));
        }
    }
    if wants("scaling") {
        let sizes: Vec<usize> = if opts.quick {
            vec![16, 25]
        } else {
            vec![25, 50, 62, 100]
        };
        let rows = experiments::scaling(
            &base,
            &sizes,
            &[DataSourceKind::Real, DataSourceKind::Random],
            trials,
        )
        .expect("scaling");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::scaling_table(&rows));
        }
    }
    if wants("ablations") {
        let rows =
            experiments::ablation_rows(&base, DataSourceKind::Real, trials).expect("ablations");
        if opts.json {
            println!("{}", report::to_json(&rows));
        } else {
            println!("{}", report::ablation_table(&rows));
        }
    }
}
