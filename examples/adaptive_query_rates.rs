//! Adaptivity demo: Scoop moves data towards the basestation as queries get
//! more frequent, and towards the producers as they get rarer.
//!
//! ```bash
//! cargo run --release --example adaptive_query_rates
//! ```
//!
//! This is the behaviour properties P1/P2 from Section 4 promise. We run the
//! same network under a sweep of query intervals and report (a) the total
//! message cost per policy and (b) how much of the value domain the final
//! storage index places on the basestation — the "send-to-base fraction".

use scoop::sim::{build_engine, run_experiment};
use scoop::types::{DataSourceKind, ExperimentConfig, NodeId, SimDuration, SimTime, StoragePolicy};

fn send_to_base_fraction(cfg: &ExperimentConfig) -> f64 {
    let mut engine = build_engine(cfg).expect("valid configuration");
    engine.run_until(SimTime::ZERO + cfg.duration);
    let base = engine.node(NodeId::BASESTATION);
    match base.current_index() {
        None => 0.0,
        Some(index) => {
            let total = index.domain().width() as f64;
            let at_base: u64 = index
                .entries()
                .iter()
                .filter(|e| e.owner.is_basestation())
                .map(|e| e.range.width())
                .sum();
            at_base as f64 / total
        }
    }
}

fn main() {
    let mut base = ExperimentConfig::small_test();
    base.num_nodes = 20;
    base.workload.data_source = DataSourceKind::Real;
    base.duration = SimDuration::from_mins(20);
    base.warmup = SimDuration::from_mins(4);
    base.seed = 11;

    println!("== How Scoop adapts to the query rate (20 nodes, REAL trace) ==\n");
    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>22}",
        "query interval", "scoop msgs", "local msgs", "base msgs", "% of domain at root"
    );

    for interval_secs in [5u64, 15, 45, 120] {
        let mut scoop_cfg = base.clone();
        scoop_cfg.policy.kind = StoragePolicy::Scoop;
        scoop_cfg.workload.queries.query_interval = SimDuration::from_secs(interval_secs);
        let scoop = run_experiment(&scoop_cfg).expect("run");
        let at_root = send_to_base_fraction(&scoop_cfg);

        let mut local_cfg = scoop_cfg.clone();
        local_cfg.policy.kind = StoragePolicy::Local;
        let local = run_experiment(&local_cfg).expect("run");

        let mut base_cfg = scoop_cfg.clone();
        base_cfg.policy.kind = StoragePolicy::Base;
        let base_run = run_experiment(&base_cfg).expect("run");

        println!(
            "{:<18} {:>14} {:>14} {:>14} {:>21.1}%",
            format!("every {interval_secs} s"),
            scoop.total_messages(),
            local.total_messages(),
            base_run.total_messages(),
            at_root * 100.0
        );
    }

    println!();
    println!("With frequent queries Scoop pushes more of the value domain onto the root");
    println!("(approaching send-to-base); with rare queries it leaves readings near their");
    println!("producers (approaching store-local), which is exactly the hybrid the paper");
    println!("describes in Section 4 (properties P1 and P2).");
}
