//! Factory-floor monitoring: the motivating scenario from the paper's
//! introduction.
//!
//! ```bash
//! cargo run --release --example factory_monitoring
//! ```
//!
//! A factory instruments its equipment with battery-powered vibration
//! sensors. Each sensor classifies its recent readings into a vibration
//! class; an engineer occasionally asks "which machines vibrated in class
//! 15-20 over the last few minutes?". Shipping every reading to a gateway
//! (the TinyDB model) would drain the batteries; flooding every query is just
//! as bad. This example compares the three policies on exactly that workload
//! and prints the expected battery lifetime of an average node and of the
//! gateway-adjacent root under each.

use scoop::net::{EnergyModel, Topology};
use scoop::sim::run_experiment;
use scoop::types::{
    Attribute, DataSourceKind, ExperimentConfig, SimDuration, StoragePolicy, ValueRange,
};

fn main() {
    // Vibration classes 0-20 (Section 4's "classify ... on a scale of 1-20").
    // Machines in the same bay vibrate similarly: the GAUSSIAN source (fixed
    // per-node mean, small variance) is the right stand-in.
    let mut base = ExperimentConfig::paper_defaults();
    base.num_nodes = 40;
    base.workload.attribute = Attribute::Acceleration;
    base.workload.value_domain = ValueRange::new(0, 20);
    base.workload.data_source = DataSourceKind::Gaussian;
    base.workload.sample_interval = SimDuration::from_secs(10);
    base.workload.queries.query_interval = SimDuration::from_secs(60);
    base.duration = SimDuration::from_mins(30);
    base.warmup = SimDuration::from_mins(8);
    base.seed = 7;

    let energy = EnergyModel::default();
    let window_secs = base.measured_duration().as_secs_f64();

    println!("== Factory monitoring: 40 vibration sensors, query every 60 s ==\n");
    println!(
        "{:<8} {:>10} {:>12} {:>20} {:>20}",
        "policy", "messages", "data msgs", "avg node lifetime", "root lifetime"
    );

    for policy in [
        StoragePolicy::Scoop,
        StoragePolicy::Local,
        StoragePolicy::Base,
    ] {
        let mut cfg = base.clone();
        cfg.policy.kind = policy;
        let result = run_experiment(&cfg).expect("valid configuration");

        // Approximate per-node energy from transmissions (communication
        // dominates, Section 2.1). Receptions at the root are charged too.
        let sensors = cfg.num_nodes as f64;
        let mean_tx = result.per_node_tx.iter().skip(1).sum::<u64>() as f64 / sensors;
        let mean_rx = result.per_node_rx.iter().skip(1).sum::<u64>() as f64 / sensors;
        let node_joules =
            (mean_tx + mean_rx) * energy.bits_per_message * energy.radio_tx_nj_per_bit * 1e-9;
        let root_tx = result.per_node_tx[0] as f64;
        let root_rx = result.per_node_rx[0] as f64;
        let root_joules =
            (root_tx + root_rx) * energy.bits_per_message * energy.radio_tx_nj_per_bit * 1e-9;

        let lifetime = |joules: f64| -> String {
            if joules <= 0.0 {
                return "unbounded".to_string();
            }
            let days = energy.battery_joules / (joules / window_secs) / 86_400.0;
            format!("{days:.0} days")
        };

        println!(
            "{:<8} {:>10} {:>12} {:>20} {:>20}",
            policy.to_string(),
            result.total_messages(),
            result.messages.data,
            lifetime(node_joules),
            lifetime(root_joules),
        );
    }

    println!();
    println!("Scoop keeps readings on (or next to) the machines that produce them and");
    println!("only moves popular vibration classes toward the gateway, which is why the");
    println!("average sensor outlives both alternatives while queries stay cheap.");

    // Topology context for the curious.
    let topo = Topology::office_floor(base.num_nodes, base.seed).expect("topology");
    println!(
        "\n(network: {} nodes, depth {} hops, {:.0} % average connectivity)",
        topo.len(),
        topo.network_depth(),
        topo.connectivity_fraction() * 100.0
    );
}
