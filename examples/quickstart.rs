//! Quickstart: run a small Scoop network end to end and print what happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! This builds a 16-node office-floor network, runs Scoop with the paper's
//! protocol parameters (scaled down to a 12-minute run), and prints the
//! message breakdown, the storage index that ended up in effect, and the
//! reliability numbers.

use scoop::sim::{build_engine, run_experiment};
use scoop::types::{ExperimentConfig, NodeId, SimTime, StoragePolicy};

fn main() {
    // 1. Configure the experiment. `small_test()` is the paper's Section 6
    //    parameter table scaled down to 16 nodes / 12 minutes.
    let mut cfg = ExperimentConfig::small_test();
    cfg.policy.kind = StoragePolicy::Scoop;
    cfg.seed = 42;

    // 2. Run it and look at the aggregate result.
    let result = run_experiment(&cfg).expect("valid configuration");
    println!(
        "== Scoop quickstart ({} nodes, {} simulated) ==",
        cfg.num_nodes, cfg.duration
    );
    println!("message breakdown over the measured window:");
    println!("  data        : {}", result.messages.data);
    println!("  summary     : {}", result.messages.summary);
    println!("  mapping     : {}", result.messages.mapping);
    println!("  query/reply : {}", result.messages.query_reply);
    println!("  total       : {}", result.total_messages());
    println!();
    println!(
        "storage success    : {:.1} % of {} sampled readings",
        result.storage.storage_success() * 100.0,
        result.storage.sampled
    );
    println!(
        "destination accuracy: {:.1} % reached their designated owner",
        result.storage.destination_accuracy() * 100.0
    );
    println!(
        "query success      : {:.1} % over {} queries",
        result.queries.query_success() * 100.0,
        result.queries.issued
    );
    println!(
        "indices disseminated: {} (suppressed remaps: {})",
        result.indices_disseminated, result.remaps_suppressed
    );

    // 3. Re-run step by step to inspect the storage index the basestation
    //    converged on (the Figure 1 "value range -> owner" table).
    let mut engine = build_engine(&cfg).expect("valid configuration");
    engine.run_until(SimTime::ZERO + cfg.duration);
    let base = engine.node(NodeId::BASESTATION);
    if let Some(index) = base.current_index() {
        println!();
        println!("final storage index (epoch {}):", index.id().0);
        println!("  values      -> node");
        for entry in index.entries().iter().take(12) {
            println!(
                "  {:>4}-{:<8} -> {}",
                entry.range.lo, entry.range.hi, entry.owner
            );
        }
        if index.entries().len() > 12 {
            println!("  ... {} more entries", index.entries().len() - 12);
        }
    }
}
