//! Workspace-root facade crate.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can write `use scoop::...`. Library users normally
//! depend on the individual crates instead.

#![warn(missing_docs)]

pub use scoop_core as core;
pub use scoop_lab as lab;
pub use scoop_net as net;
pub use scoop_routing as routing;
pub use scoop_serve as serve;
pub use scoop_sim as sim;
pub use scoop_storage as storage;
pub use scoop_store as store;
pub use scoop_trickle as trickle;
pub use scoop_types as types;
pub use scoop_workload as workload;
