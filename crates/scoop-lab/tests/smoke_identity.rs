//! The cross-version byte-identity gate: running the quick-smoke suite must
//! reproduce the committed `baselines/smoke.json` **byte for byte** — not
//! merely within the `scoop-lab check` tolerances, and without any
//! `--bless`.
//!
//! The committed baseline pins the *calibrated* link-model defaults (the
//! link-calibration re-baseline was a deliberate `--bless`). The
//! byte-identity proof for the pre-calibration engine lives on in
//! `spec_equivalence.rs`, which replays the suite under the `link=legacy`
//! preset against the preserved `baselines/smoke-legacy.json`.

use scoop_lab::check::{baseline_file_content, run_smoke_suite};
use std::path::PathBuf;

fn committed_baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/smoke.json")
}

#[test]
fn quick_smoke_suite_is_byte_identical_to_committed_baseline() {
    let measured = run_smoke_suite().expect("smoke suite runs");
    let fresh = baseline_file_content(&measured).expect("serializes");
    let committed =
        std::fs::read_to_string(committed_baseline_path()).expect("committed baseline file exists");
    assert!(
        fresh == committed,
        "the quick-smoke suite no longer reproduces the committed baseline byte \
         for byte; the engine's random stream or row serialization changed \
         (first divergence at byte {})",
        fresh
            .bytes()
            .zip(committed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.len().min(committed.len()))
    );
}

/// Row-for-row equality stated structurally as well: every experiment in the
/// baseline appears, in order, with identical rows — so a future serializer
/// change that reformats bytes but preserves rows degrades this file's
/// failure mode from "bytes differ" to a precise row diff.
#[test]
fn quick_smoke_rows_match_committed_baseline_row_for_row() {
    let measured = run_smoke_suite().expect("smoke suite runs");
    let committed = scoop_lab::check::load_baseline(&committed_baseline_path())
        .expect("committed baseline parses");
    assert_eq!(measured.len(), committed.len(), "experiment count changed");
    for (fresh, baseline) in measured.iter().zip(&committed) {
        assert_eq!(fresh.experiment, baseline.experiment, "suite order changed");
        assert_eq!(
            fresh.rows.measured_rows(None),
            baseline.rows.measured_rows(None),
            "{} rows drifted from the committed baseline",
            fresh.experiment
        );
    }
}
