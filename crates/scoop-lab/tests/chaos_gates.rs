//! The chaos acceptance gates from the adversarial fault model contract:
//!
//! * partition-and-heal — post-heal storage and query success must recover
//!   to at least 90 % of the unfaulted control run;
//! * basestation failover — query success of the 2-sink federation under a
//!   sink crash must stay within tolerance of the single-sink control;
//! * mass churn — the surviving-plus-joined network must recover too.
//!
//! These run the same deterministic quick-scale chaos suite the
//! `scoop-lab check --chaos` CI gate snapshots, so a baseline re-bless
//! cannot quietly lower the bar: the gates here are absolute.

use scoop_lab::check::run_chaos_suite;
use scoop_lab::rows::RowSet;

fn phase_metrics(rows: &RowSet, phase: &str) -> (f64, f64, f64, f64) {
    match rows {
        RowSet::Chaos(rows) => {
            let r = rows
                .iter()
                .find(|r| r.phase == phase)
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            (
                r.storage_success,
                r.query_success,
                r.control_storage_success,
                r.control_query_success,
            )
        }
        other => panic!("chaos artifact carries {other:?}"),
    }
}

#[test]
fn chaos_scenarios_meet_the_recovery_gates() {
    let artifacts = run_chaos_suite().expect("chaos suite runs");
    assert_eq!(artifacts.len(), 3);
    for artifact in &artifacts {
        let (storage, query, ctrl_storage, ctrl_query) = phase_metrics(&artifact.rows, "after");
        assert!(
            storage >= ctrl_storage * 0.9,
            "{}: post-fault storage {storage:.3} below 90 % of control {ctrl_storage:.3}",
            artifact.experiment
        );
        assert!(
            query >= ctrl_query * 0.9,
            "{}: post-fault query success {query:.3} below 90 % of control {ctrl_query:.3}",
            artifact.experiment
        );
    }

    // Failover specifically: query success within tolerance of the
    // single-sink control in *every* phase — the federation must not trade
    // steady-state query reliability for redundancy, and the root's
    // takeover must keep queries flowing while the peer sink is dead.
    let failover = artifacts
        .iter()
        .find(|a| a.experiment == "chaos-failover")
        .expect("failover artifact");
    for phase in ["before", "during", "after"] {
        let (_, query, _, ctrl_query) = phase_metrics(&failover.rows, phase);
        assert!(
            query >= ctrl_query - 0.15,
            "failover {phase}: query success {query:.3} not within tolerance \
             of single-sink control {ctrl_query:.3}"
        );
    }

    // Partition specifically: the cut must actually bite while open —
    // otherwise the recovery gates above are vacuous.
    let partition = artifacts
        .iter()
        .find(|a| a.experiment == "chaos-partition")
        .expect("partition artifact");
    let (storage, _, ctrl_storage, _) = phase_metrics(&partition.rows, "during");
    assert!(
        storage < ctrl_storage - 0.1,
        "partition during-phase storage {storage:.3} should degrade vs control {ctrl_storage:.3}"
    );
}
