//! Shard-count invariance under active faults. The plain smoke suite
//! already holds sharded dispatch to byte-identical artifacts; this file
//! raises the bar to the chaos scenarios, where partitions rewire routing
//! mid-run, churn kills and joins nodes, and basestation failover reorders
//! which sink answers. If any of those paths consulted shard-local state,
//! the artifacts would diverge — so the three chaos scenarios at 1, 2, and
//! 4 engine shards must render to the same bytes.
//!
//! Env mutation is process-global, so this file keeps a single #[test]
//! (its own binary) and restores the variable before asserting.

use scoop_lab::check::run_chaos_suite;

#[test]
fn chaos_suite_is_shard_count_invariant() {
    let run_with_shards = |shards: &str| {
        std::env::set_var("SCOOP_ENGINE_SHARDS", shards);
        let artifacts = run_chaos_suite().expect("chaos suite");
        std::env::remove_var("SCOOP_ENGINE_SHARDS");
        artifacts
            .iter()
            .map(|a| a.deterministic_json())
            .collect::<Result<Vec<String>, _>>()
            .expect("render artifacts")
    };
    let sequential = run_with_shards("1");
    assert!(!sequential.is_empty());
    for shards in ["2", "4"] {
        let sharded = run_with_shards(shards);
        assert_eq!(sequential.len(), sharded.len());
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a, b, "{shards}-shard chaos run diverged from sequential");
        }
    }
}
