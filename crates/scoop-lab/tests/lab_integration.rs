//! Integration tests for the lab subsystem: artifact schema stability
//! (golden file), run determinism, and the regression-gate exit code.

use scoop_lab::artifact::{Artifact, Provenance};
use scoop_lab::check::{baseline_file_content, run_smoke_suite};
use scoop_lab::cli::run_cli;
use scoop_lab::rows::RowSet;
use scoop_lab::suite::{run_suite, ExperimentId, PointSet, Scale, SuiteOptions};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig5_quick_smoke.json")
}

/// The canonical artifact the golden file pins down: quick-scale smoke
/// Figure 5, seed 1, single trial, provenance masked.
fn golden_artifact() -> Artifact {
    let options = SuiteOptions {
        scale: Scale::Quick,
        trials: 1,
        seed: 1,
        points: PointSet::Smoke,
        experiments: vec![ExperimentId::Fig5],
        overrides: Vec::new(),
    };
    let mut artifacts = run_suite(&options, |_| ()).unwrap();
    let mut artifact = artifacts.remove(0);
    artifact.provenance = Provenance::masked();
    artifact
}

/// Schema pin: the committed golden file must deserialize into an
/// [`Artifact`] and re-serialize to the exact committed bytes. Regenerate
/// deliberately with `SCOOP_LAB_BLESS_GOLDEN=1 cargo test -p scoop-lab`.
#[test]
fn golden_artifact_round_trips_byte_for_byte() {
    let path = golden_path();
    if std::env::var("SCOOP_LAB_BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut json = golden_artifact().to_json().unwrap();
        json.push('\n');
        std::fs::write(&path, json).unwrap();
    }
    let committed = std::fs::read_to_string(&path)
        .expect("golden file missing; run with SCOOP_LAB_BLESS_GOLDEN=1 once");
    let parsed: Artifact = serde_json::from_str(&committed).unwrap();
    let mut reserialized = parsed.to_json().unwrap();
    reserialized.push('\n');
    assert_eq!(
        reserialized, committed,
        "artifact schema no longer round-trips the committed golden file"
    );
    assert_eq!(parsed.schema_version, scoop_lab::SCHEMA_VERSION);
    assert_eq!(parsed.experiment, "fig5");
    assert_eq!(parsed.scale, "quick");
    assert!(matches!(parsed.rows, RowSet::Fig5(_)));
    assert!(parsed.config_hash.starts_with("fnv1a:"));
}

/// Behavior pin (on top of the schema pin): the golden file's rows are what
/// the current simulator actually produces for that configuration.
#[test]
fn golden_artifact_matches_a_fresh_run() {
    let committed = std::fs::read_to_string(golden_path())
        .expect("golden file missing; run with SCOOP_LAB_BLESS_GOLDEN=1 once");
    let parsed: Artifact = serde_json::from_str(&committed).unwrap();
    let fresh = golden_artifact();
    assert_eq!(
        parsed.deterministic_json().unwrap(),
        fresh.deterministic_json().unwrap(),
        "simulator output changed for the golden configuration; re-bless deliberately"
    );
}

/// Two `scoop-lab run`s with the same seed produce byte-identical artifacts
/// modulo the provenance (timing / git revision) block; a different seed
/// produces different bytes.
#[test]
fn same_seed_runs_are_byte_identical_modulo_provenance() {
    let mut options = SuiteOptions::quick_smoke();
    options.experiments = vec![ExperimentId::Fig3Middle, ExperimentId::Fig5];
    let first = run_suite(&options, |_| ()).unwrap();
    let second = run_suite(&options, |_| ()).unwrap();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.deterministic_json().unwrap(),
            b.deterministic_json().unwrap(),
            "{} differs between identical runs",
            a.experiment
        );
    }

    let mut reseeded = options.clone();
    reseeded.seed = 99;
    let third = run_suite(&reseeded, |_| ()).unwrap();
    assert_ne!(
        first[0].deterministic_json().unwrap(),
        third[0].deterministic_json().unwrap(),
        "a different seed must change the measured rows"
    );
}

/// The acceptance-criterion path: `scoop-lab check` exits 0 against a
/// faithful baseline file and non-zero when the committed baseline is
/// perturbed beyond the default tolerance.
#[test]
fn check_exit_codes_track_baseline_perturbation() {
    let dir = std::env::temp_dir().join(format!("scoop-lab-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let baseline_path = dir.join("smoke.json");

    // A faithful baseline: what the current code measures.
    let measured = run_smoke_suite().unwrap();
    std::fs::write(&baseline_path, baseline_file_content(&measured).unwrap()).unwrap();
    let args: Vec<String> = [
        "check",
        "--tolerance",
        "default",
        &format!("--baseline={}", baseline_path.display()),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(run_cli(&args), 0, "faithful baseline must pass");

    // Perturb one committed number by ~10 % — beyond the 2 % default.
    let mut perturbed = measured.clone();
    let fig3 = perturbed
        .iter_mut()
        .find(|a| a.experiment == "fig3-middle")
        .unwrap();
    match &mut fig3.rows {
        RowSet::Fig3(rows) => rows[0].total = rows[0].total * 11 / 10 + 1,
        other => panic!("unexpected rows {other:?}"),
    }
    std::fs::write(&baseline_path, baseline_file_content(&perturbed).unwrap()).unwrap();
    assert_eq!(run_cli(&args), 1, "perturbed baseline must fail the gate");

    let _ = std::fs::remove_dir_all(&dir);
}
