//! The spec round-trip CI gate: serialize → deserialize → run quick smoke →
//! check against the committed baseline. A schema change that breaks the
//! committed artifacts under `results/`, the committed smoke baseline, or
//! the spec JSON itself fails here — in `cargo test` and as an explicit CI
//! step — instead of surfacing as a corrupt report three PRs later.

use scoop_lab::artifact::ArtifactStore;
use scoop_lab::baselines::TolerancePreset;
use scoop_lab::check::{
    compare_to_baseline, load_baseline, run_smoke_suite, DEFAULT_BASELINE_PATH,
};
use scoop_lab::suite::ExperimentId;
use scoop_types::ScenarioSpec;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn scenario_specs_round_trip_through_json() {
    for spec in [ScenarioSpec::paper_defaults(), ScenarioSpec::small_test()] {
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back, "spec JSON round trip changed the spec");
        back.validate().unwrap();
    }
    // Overridden axes survive the trip too (the `--set` path serializes the
    // same way).
    let mut spec = ScenarioSpec::paper_defaults();
    spec.apply_axes([
        ("topology", "grid"),
        ("nodes", "96"),
        ("link.loss_floor", "0.05"),
        ("fault.window", "600..900@0.1"),
    ])
    .unwrap();
    let json = serde_json::to_string(&spec).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}

#[test]
fn committed_artifacts_load_under_the_current_schema() {
    let store = ArtifactStore::new(workspace_root().join("results"));
    let artifacts = store
        .load_present(&ExperimentId::ALL)
        .expect("every committed artifact must deserialize under the current schema");
    assert!(
        !artifacts.is_empty(),
        "results/ contains no readable artifacts — regenerate with `scoop-lab run`"
    );
    for artifact in &artifacts {
        assert_eq!(artifact.schema_version, scoop_lab::SCHEMA_VERSION);
        assert!(
            !artifact.rows.is_empty(),
            "{} is empty",
            artifact.experiment
        );
        // Round trip: the committed bytes must re-serialize losslessly.
        let json = artifact.to_json().unwrap();
        let back: scoop_lab::Artifact = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_json().unwrap(), json, "{}", artifact.experiment);
    }
}

#[test]
fn quick_smoke_matches_the_committed_baseline() {
    let baseline_path = workspace_root().join(DEFAULT_BASELINE_PATH);
    let baseline = load_baseline(&baseline_path)
        .expect("committed smoke baseline must deserialize under the current schema");
    let measured = run_smoke_suite().expect("quick smoke suite must run");
    let outcome = compare_to_baseline(&measured, &baseline, TolerancePreset::Default);
    assert!(
        !outcome.failed(),
        "smoke suite drifted from the committed baseline:\n{}",
        outcome.render_text()
    );
}
