//! The calibration oracle: the shipped `LinkSpec::default()` can never
//! silently drift from the committed calibration evidence.
//!
//! The committed `results/calibration.json` is the measured grid the
//! defaults were re-baselined from. This test re-runs the *objective* (not
//! the simulations — scoring the committed rows is cheap and deterministic)
//! and asserts that:
//!
//! 1. every stored `objective` score equals a fresh scoring of its row,
//! 2. the stored `winner` is the argmin of the stored grid,
//! 3. `LinkSpec::default()` in this binary *is* that argmin, and
//! 4. the winner meets the acceptance thresholds the re-baseline promised
//!    (≥ 80 % storage success, ≥ 70 % query success at paper scale).
//!
//! Changing the defaults without rerunning `scoop-lab calibrate` (or
//! rerunning it and ignoring its winner) fails here.

use scoop_lab::calibrate::{load_calibration, CalibrationPoint, Objective};
use scoop_types::LinkSpec;
use std::path::PathBuf;

fn committed_calibration_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/calibration.json")
}

#[test]
fn shipped_default_is_the_argmin_of_the_committed_grid() {
    let artifact = load_calibration(&committed_calibration_path())
        .expect("committed results/calibration.json loads");
    assert_eq!(
        artifact.scale, "paper",
        "the committed calibration must be a paper-scale run"
    );
    assert!(
        artifact.rows.len() >= 8,
        "the committed grid must be a real search, not a smoke run ({} points)",
        artifact.rows.len()
    );

    // The objective stored in the artifact must be the paper objective the
    // code ships — otherwise "argmin" would be against a different ruler.
    assert_eq!(artifact.objective, Objective::paper());

    // Re-score every committed row and find the argmin independently.
    let mut best: Option<(usize, f64)> = None;
    for (i, row) in artifact.rows.iter().enumerate() {
        let rescored = artifact.objective.score(row);
        assert!(
            (row.objective - rescored).abs() < 1e-12,
            "row {i} ({}) stores objective {} but re-scores to {rescored}",
            row.point.label(),
            row.objective
        );
        if best.is_none() || rescored < best.unwrap().1 {
            best = Some((i, rescored));
        }
    }
    let (argmin_index, _) = best.expect("grid is non-empty");
    let argmin = artifact.rows[argmin_index].point;

    assert!(
        artifact.winner.same_knobs(&argmin),
        "committed winner {} is not the argmin {} of the committed grid",
        artifact.winner.label(),
        argmin.label()
    );

    let shipped = CalibrationPoint::from_spec(&LinkSpec::default());
    assert!(
        shipped.same_knobs(&argmin),
        "LinkSpec::default() ({}) drifted from the calibration argmin ({}); \
         rerun `scoop-lab calibrate` and re-baseline, or revert the default",
        shipped.label(),
        argmin.label()
    );
    assert!(
        artifact.shipped_default.same_knobs(&shipped),
        "the committed artifact was produced by a binary with a different \
         default ({}); regenerate results/calibration.json",
        artifact.shipped_default.label()
    );
}

#[test]
fn committed_winner_meets_the_acceptance_thresholds() {
    let artifact = load_calibration(&committed_calibration_path())
        .expect("committed results/calibration.json loads");
    let row = artifact
        .winner_row()
        .expect("the winner is one of the committed rows");
    assert!(
        row.storage_success >= 0.80,
        "calibrated storage success {:.1} % fell below the 80 % acceptance bar",
        row.storage_success * 100.0
    );
    assert!(
        row.query_success >= 0.70,
        "calibrated query success {:.1} % fell below the 70 % acceptance bar",
        row.query_success * 100.0
    );
    // The cost side of the objective: the calibrated point must stay inside
    // the paper's Figure 3 (middle) tolerance band (0.70 ± 30 %), not buy
    // reliability with retransmission floods.
    assert!(
        (0.49..=0.91).contains(&row.cost_ratio),
        "calibrated SCOOP/BASE cost ratio {:.3} left the Figure 3 band",
        row.cost_ratio
    );
}

#[test]
fn legacy_point_is_in_the_committed_grid_and_loses() {
    // The grid must contain the pre-calibration model as its anchor, and the
    // evidence must actually justify the flip: the legacy point scores
    // strictly worse than the winner.
    let artifact = load_calibration(&committed_calibration_path())
        .expect("committed results/calibration.json loads");
    let legacy = CalibrationPoint::from_spec(&LinkSpec::legacy());
    let legacy_row = artifact
        .rows
        .iter()
        .find(|r| r.point.same_knobs(&legacy))
        .expect("the legacy knobs anchor the committed grid");
    let winner_row = artifact.winner_row().expect("winner row exists");
    assert!(
        legacy_row.objective > winner_row.objective,
        "the legacy model ({}) does not score worse than the shipped default \
         ({}); the re-baseline would be unjustified",
        legacy_row.objective,
        winner_row.objective
    );
}
