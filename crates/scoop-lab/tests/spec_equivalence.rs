//! Equivalence proof for the ScenarioSpec redesign, kept alive across the
//! link-model calibration: building an engine through `SimBuilder` from a
//! spec with the **legacy** link model produces byte-identical artifacts to
//! the pre-redesign construction path (`Topology::office_floor` +
//! `LinkModel::from_topology` welded into the runner), which survives as
//! explicit hand construction through `build_engine_with` — and the whole
//! quick-smoke suite under `link=legacy` reproduces the committed
//! pre-calibration baseline (`baselines/smoke-legacy.json`) byte for byte.
//!
//! `LinkSpec::default()` is the *calibrated* model since the calibration
//! re-baseline; `LinkSpec::legacy()` (and the `link=legacy` axis preset) is
//! the addressable handle to the historical behavior these proofs pin.

use scoop_lab::artifact::{Artifact, Provenance};
use scoop_lab::rows::RowSet;
use scoop_lab::suite::{ExperimentId, SuiteOptions};
use scoop_net::{LinkModel, Topology};
use scoop_sim::experiments::Fig3Row;
use scoop_sim::{
    build_engine_with, run_built_experiment, run_experiment, MessageBreakdown, RunResult,
};
use scoop_types::{ExperimentConfig, ScenarioSpec};

/// Replays the pre-redesign `build_engine` body: the office-floor topology
/// and the default distance-decay link model, constructed directly and
/// measured through the shared runner.
fn legacy_run(config: &ExperimentConfig) -> RunResult {
    let topology = Topology::office_floor(config.num_nodes, config.seed).unwrap();
    let links = LinkModel::from_topology(&topology, config.seed);
    let engine = build_engine_with(config, topology, links).unwrap();
    run_built_experiment(config, engine).unwrap()
}

fn artifact_for(result: &RunResult) -> Artifact {
    let rows = RowSet::Fig3(vec![Fig3Row {
        policy: result.config.policy.kind,
        source: result.config.workload.data_source,
        messages: result.messages,
        total: result.messages.total(),
    }]);
    let options = SuiteOptions::quick_smoke();
    Artifact::new(
        ExperimentId::Fig3Middle,
        &options,
        &result.config,
        rows,
        Provenance::masked(),
    )
}

#[test]
fn legacy_link_spec_path_is_byte_identical_to_legacy_construction() {
    let mut spec = ScenarioSpec::paper_defaults();
    spec.link = scoop_types::LinkSpec::legacy();
    let legacy = legacy_run(&spec);
    let through_spec = run_experiment(&spec).unwrap();

    // Full metric equality first (clearer failure than a JSON diff)...
    assert_eq!(legacy.messages, through_spec.messages);
    assert_eq!(legacy.storage, through_spec.storage);
    assert_eq!(legacy.queries, through_spec.queries);
    assert_eq!(legacy.per_node_tx, through_spec.per_node_tx);
    assert_eq!(legacy.per_node_rx, through_spec.per_node_rx);

    // ...then the artifact bytes, the unit committed results are stored in.
    assert_eq!(
        artifact_for(&legacy).to_json().unwrap(),
        artifact_for(&through_spec).to_json().unwrap(),
        "spec-built and legacy-built artifacts must serialize identically"
    );
}

#[test]
fn small_test_spec_path_is_byte_identical_across_policies() {
    for policy in scoop_types::StoragePolicy::ALL {
        let mut spec = ScenarioSpec::small_test();
        spec.link = scoop_types::LinkSpec::legacy();
        spec.policy.kind = policy;
        spec.workload.data_source = scoop_types::DataSourceKind::Gaussian;
        let legacy = legacy_run(&spec);
        let through_spec = run_experiment(&spec).unwrap();
        assert_eq!(
            artifact_for(&legacy).to_json().unwrap(),
            artifact_for(&through_spec).to_json().unwrap(),
            "{policy}: spec path drifted from legacy construction"
        );
    }
}

/// The calibration re-baseline flipped `LinkSpec::default()`, so the
/// committed `baselines/smoke.json` now pins the *calibrated* behavior. This
/// test keeps the pre-calibration byte-identity proofs alive: the quick-smoke
/// suite run under the `link=legacy` axis preset must reproduce the
/// pre-calibration baseline (`baselines/smoke-legacy.json`, the verbatim
/// smoke.json from before the flip) byte for byte — same config hash, same
/// rows, same serialization — once the parts that *name* the run differently
/// (the overrides list, the masked provenance) are normalized away.
#[test]
fn legacy_link_preset_reproduces_the_pre_calibration_smoke_baseline() {
    use scoop_lab::artifact::Provenance;
    use scoop_lab::check::baseline_file_content;
    use scoop_lab::suite::run_suite;

    let mut options = SuiteOptions::quick_smoke();
    options.overrides.push(("link".into(), "legacy".into()));
    let mut artifacts = run_suite(&options, |_| ()).expect("legacy smoke suite runs");
    for artifact in &mut artifacts {
        artifact.provenance = Provenance::masked();
        // The committed pre-calibration baseline was a no-override run; the
        // `link=legacy` preset resolves to the *same* base config (the same
        // config_hash proves it), so only the recorded override list differs.
        artifact.overrides.clear();
    }
    let fresh = baseline_file_content(&artifacts).expect("serializes");
    let committed_path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/smoke-legacy.json");
    let committed =
        std::fs::read_to_string(committed_path).expect("committed smoke-legacy.json exists");
    assert!(
        fresh == committed,
        "the legacy link preset no longer reproduces the pre-calibration smoke \
         baseline byte for byte (first divergence at byte {})",
        fresh
            .bytes()
            .zip(committed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.len().min(committed.len()))
    );
}

#[test]
fn message_breakdown_total_is_consistent() {
    // Guard the helper used above: the artifact totals must match the
    // runner's own accounting.
    let spec = ScenarioSpec::small_test();
    let result = run_experiment(&spec).unwrap();
    let b: MessageBreakdown = result.messages;
    assert_eq!(b.total(), result.total_messages());
}
