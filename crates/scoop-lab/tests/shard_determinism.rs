//! Shard-vs-sequential equivalence for the region-sharded event loop.
//!
//! The engine's event queue can be partitioned into per-region heaps merged
//! by `(time, seq, shard)`; because the insertion counter is global, sharded
//! dispatch must pop events in exactly the single-queue order. This test
//! holds the whole stack to that claim: the full quick-smoke suite — every
//! experiment family, every policy, real trace data, loss, retries, faults —
//! run at 1, 2, and 4 shards must produce byte-identical artifacts. It is
//! the same bar `sweep_determinism` set for inter-run thread parallelism,
//! applied to intra-run region sharding.
//!
//! Env mutation is process-global, so this file keeps a single #[test] (its
//! own binary) and restores the variable before asserting.

use scoop_lab::check::{run_smoke_suite, run_workloads_suite};

#[test]
fn quick_smoke_suite_is_shard_count_invariant() {
    let run_with_shards = |shards: &str| {
        std::env::set_var("SCOOP_ENGINE_SHARDS", shards);
        // Smoke plus the workloads suite, so the new range/aggregate kinds
        // (q-digest folds included) are held to the same shard invariance.
        let mut artifacts = run_smoke_suite().expect("smoke suite");
        artifacts.extend(run_workloads_suite().expect("workloads suite"));
        std::env::remove_var("SCOOP_ENGINE_SHARDS");
        artifacts
            .iter()
            .map(|a| a.deterministic_json())
            .collect::<Result<Vec<String>, _>>()
            .expect("render artifacts")
    };
    let sequential = run_with_shards("1");
    assert!(!sequential.is_empty());
    for shards in ["2", "4"] {
        let sharded = run_with_shards(shards);
        assert_eq!(sequential.len(), sharded.len());
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a, b, "{shards}-shard run diverged from sequential");
        }
    }
}
