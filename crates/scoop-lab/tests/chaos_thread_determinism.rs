//! Sweep-thread invariance under active faults: the chaos scenarios must
//! render byte-identical artifacts whether the sweep layer runs on one
//! worker or four. The chaos suite drives each faulted/control engine pair
//! deterministically, so any divergence here would mean thread count leaked
//! into simulation state — exactly the regression this test exists to catch.
//!
//! Env mutation is process-global, so this file keeps a single #[test]
//! (its own binary) and restores the variable before asserting.

use scoop_lab::check::run_chaos_suite;

#[test]
fn chaos_suite_is_thread_count_invariant() {
    let run_with_threads = |threads: &str| {
        std::env::set_var("SCOOP_SWEEP_THREADS", threads);
        let artifacts = run_chaos_suite().expect("chaos suite");
        std::env::remove_var("SCOOP_SWEEP_THREADS");
        artifacts
            .iter()
            .map(|a| a.deterministic_json())
            .collect::<Result<Vec<String>, _>>()
            .expect("render artifacts")
    };
    let single = run_with_threads("1");
    assert!(!single.is_empty());
    let parallel = run_with_threads("4");
    assert_eq!(single.len(), parallel.len());
    for (a, b) in single.iter().zip(&parallel) {
        assert_eq!(a, b, "4-thread chaos run diverged from single-threaded");
    }
}
