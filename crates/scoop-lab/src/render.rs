//! The `EXPERIMENTS.md` regenerator.
//!
//! [`render_experiments_md`] turns the latest artifacts into a markdown
//! report: per experiment, the measured table, and — where a paper baseline
//! exists — a measured-vs-paper comparison with each row classified as
//! `match` / `drift` / `missing` by the diff engine, drift annotations
//! included. The file is meant to be committed, so the renderer keeps noisy
//! provenance (wall-clock) to one summary table at the top.

use crate::artifact::Artifact;
use crate::baselines::paper_baseline;
use crate::calibrate::CalibrationArtifact;
use crate::diff::{diff_rows, DiffReport, RowStatus};
use crate::rows::MeasuredRow;
use scoop_types::{LinkSpec, ScoopError};

/// Status badge used in the markdown tables.
fn badge(status: Option<&RowStatus>) -> &'static str {
    match status {
        Some(RowStatus::Match) => "✓ match",
        Some(RowStatus::Drift(_)) => "✗ drift",
        Some(RowStatus::Missing) => "? missing",
        None => "—",
    }
}

fn fmt_value(metric: &str, value: f64) -> String {
    if metric.ends_with("_success") || metric.ends_with("_accuracy") {
        format!("{:.1}%", value * 100.0)
    } else if metric.starts_with("total_vs") || metric.starts_with("fraction") {
        format!("{value:.3}")
    } else if value.fract() == 0.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.1}")
    }
}

/// Renders one experiment's measured-vs-paper table. Every baseline-checked
/// `(row, metric)` pair becomes a line; measured-only rows are summarized in
/// the plain table above it.
fn comparison_table(measured: &[MeasuredRow], report: &DiffReport) -> String {
    let mut out = String::new();
    out.push_str("| row | metric | measured | paper | status |\n");
    out.push_str("|---|---|---:|---:|---|\n");
    for (key, status) in &report.rows {
        let row = measured.iter().find(|r| r.key == *key);
        // Re-derive which metrics the baseline checked from the deviations
        // plus the baseline set is not available here; instead the caller
        // passes the full diff, so list drifted metrics explicitly and
        // matched rows as one line.
        match status {
            RowStatus::Missing => {
                out.push_str(&format!(
                    "| `{key}` | — | — | — | {} |\n",
                    badge(Some(status))
                ));
            }
            RowStatus::Match => {
                let shown = row
                    .map(|r| {
                        r.metrics
                            .iter()
                            .map(|(m, v)| format!("{m}={}", fmt_value(m, *v)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    })
                    .unwrap_or_default();
                out.push_str(&format!(
                    "| `{key}` | all checked | {shown} | within tolerance | {} |\n",
                    badge(Some(status))
                ));
            }
            RowStatus::Drift(deviations) => {
                for deviation in deviations {
                    out.push_str(&format!(
                        "| `{key}` | {} | {} | {} ± {} | {} |\n",
                        deviation.metric,
                        if deviation.measured.is_nan() {
                            "absent".to_string()
                        } else {
                            fmt_value(&deviation.metric, deviation.measured)
                        },
                        fmt_value(&deviation.metric, deviation.expected),
                        fmt_value(&deviation.metric, deviation.allowed),
                        badge(Some(status))
                    ));
                }
            }
        }
    }
    out
}

/// Renders the "Calibration" section from the committed calibration
/// artifact: the scored grid, the winner, and whether the shipped
/// `LinkSpec::default()` is the measured argmin.
fn calibration_section(calibration: &CalibrationArtifact) -> String {
    let mut out = String::new();
    out.push_str("## Calibration\n\n");
    out.push_str(&format!(
        "`scoop-lab calibrate` grid-searched the `LinkSpec` knobs ({} points, \
         {} scale, {} trial(s), SCOOP *and* BASE per point) against the paper \
         targets: storage {:.0} %, query {:.0} %, destination accuracy \
         {:.0} %, Figure 3 cost ratio {:.2}. The objective is the weighted L1 \
         distance to those targets (weights {:.1}/{:.1}/{:.1}/{:.1}); the \
         winning point ships as `LinkSpec::default()` and the committed \
         `results/calibration.json` is enforced by the calibration-oracle \
         test.\n\n",
        calibration.rows.len(),
        calibration.scale,
        calibration.trials,
        calibration.objective.targets.storage_success * 100.0,
        calibration.objective.targets.query_success * 100.0,
        calibration.objective.targets.destination_accuracy * 100.0,
        calibration.objective.targets.cost_ratio,
        calibration.objective.weights.storage_success,
        calibration.objective.weights.query_success,
        calibration.objective.weights.destination_accuracy,
        calibration.objective.weights.cost_ratio,
    ));
    out.push_str("```text\n");
    out.push_str(&calibration.render_text());
    out.push_str("```\n\n");
    let current = crate::calibrate::CalibrationPoint::from_spec(&LinkSpec::default());
    if calibration.winner.same_knobs(&current) {
        out.push_str(&format!(
            "The shipped `LinkSpec::default()` ({}) **is** the grid argmin.\n\n",
            current.label()
        ));
    } else {
        out.push_str(&format!(
            "**Warning:** the shipped `LinkSpec::default()` ({}) does **not** \
             match this grid's argmin ({}) — rerun `scoop-lab calibrate` and \
             re-baseline.\n\n",
            current.label(),
            calibration.winner.label()
        ));
    }
    out
}

/// Renders the whole `EXPERIMENTS.md` from the given artifacts plus, when
/// available, the committed calibration artifact (the "Calibration"
/// section).
pub fn render_experiments_md_with(
    artifacts: &[Artifact],
    calibration: Option<&CalibrationArtifact>,
) -> Result<String, ScoopError> {
    let mut out = render_experiments_md(artifacts)?;
    if let Some(calibration) = calibration {
        out.push_str(&calibration_section(calibration));
    }
    Ok(out)
}

/// Renders the whole `EXPERIMENTS.md` from the given artifacts (typically
/// everything in the store, in suite order).
pub fn render_experiments_md(artifacts: &[Artifact]) -> Result<String, ScoopError> {
    if artifacts.is_empty() {
        return Err(ScoopError::Artifact(
            "no artifacts to render; run `scoop-lab run` first".into(),
        ));
    }
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — measured vs. paper\n\n");
    out.push_str(
        "Regenerated by `scoop-lab report` from the artifacts under `results/`.\n\
         Do not edit by hand: run `cargo run --release -p scoop-lab -- run` then\n\
         `cargo run --release -p scoop-lab -- report`.\n\n",
    );
    out.push_str(
        "Figure baselines are encoded as the **ratios** the paper's figures argue\n\
         about (bars normalized to the panel's reference bar, curve points to BASE\n\
         at the same sweep point), because absolute message counts do not transfer\n\
         from the paper's 2007 TinyOS testbed to this reproduction. Prose numbers\n\
         (reliability percentages) are compared absolutely. `drift` rows are\n\
         documented findings, not build failures — the CI regression gate\n\
         (`scoop-lab check`) compares against committed smoke artifacts instead.\n\n",
    );

    // Run summary table. Artifacts can come from different `run`
    // invocations (e.g. a partial quick re-run over committed paper-scale
    // files), so the header is only stated when uniform and the per-row
    // provenance always spells out scale / seed / trials.
    let first = &artifacts[0];
    let uniform = artifacts.iter().all(|a| {
        a.scale == first.scale
            && a.seed == first.seed
            && a.trials == first.trials
            && a.provenance.git_rev == first.provenance.git_rev
    });
    out.push_str("## Run summary\n\n");
    if uniform {
        out.push_str(&format!(
            "- scale: **{}**, seed {}, {} trial(s) per scenario, schema v{}\n",
            first.scale, first.seed, first.trials, first.schema_version
        ));
        out.push_str(&format!(
            "- git revision: `{}`, sweep threads: {}\n\n",
            first.provenance.git_rev, first.provenance.threads
        ));
    } else {
        out.push_str(
            "**Warning:** these artifacts come from *different* runs (mixed \
             scale, seed, trials, or git revision — see the table). Regenerate \
             them together with one `scoop-lab run` before committing this \
             file.\n\n",
        );
    }
    out.push_str(
        "| experiment | scale | seed | trials | rows | wall-clock (s) | events | events/s | git rev |\n\
         |---|---|---:|---:|---:|---:|---:|---:|---|\n",
    );
    for artifact in artifacts {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.2} | {} | {:.0} | `{}` |\n",
            artifact.experiment,
            artifact.scale,
            artifact.seed,
            artifact.trials,
            artifact.rows.len(),
            artifact.provenance.wall_clock_secs,
            artifact.provenance.events_processed,
            artifact.provenance.events_per_sec,
            artifact.provenance.git_rev
        ));
    }
    out.push('\n');

    // Overridden runs are not the canonical suite: say so loudly, per
    // artifact, so `--set` experiments saved over `results/` cannot
    // masquerade as paper defaults.
    let overridden: Vec<&Artifact> = artifacts
        .iter()
        .filter(|a| !a.overrides.is_empty())
        .collect();
    if !overridden.is_empty() {
        out.push_str(
            "**Warning:** the following artifacts were produced with `--set` axis \
             overrides and do **not** describe the default scenario:\n\n",
        );
        for artifact in overridden {
            let list = artifact
                .overrides
                .iter()
                .map(|(k, v)| format!("`{k}={v}`"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("- {}: {list}\n", artifact.experiment));
        }
        out.push('\n');
    }

    // Per-experiment sections.
    for artifact in artifacts {
        let id = artifact.experiment_id();
        let title = id
            .map(|i| i.title().to_string())
            .unwrap_or_else(|| artifact.experiment.clone());
        out.push_str(&format!("## {title}\n\n"));
        out.push_str("```text\n");
        out.push_str(&artifact.rows.table(&title));
        out.push_str("```\n\n");

        if let Some(baseline) = id.and_then(paper_baseline) {
            let measured = artifact
                .rows
                .measured_rows(id.and_then(|i| i.reference_key()));
            let report = diff_rows(&measured, &baseline);
            let (matches, drifts, missing) = report.counts();
            out.push_str(&format!(
                "**vs. paper** ({}): {matches} match, {drifts} drift, {missing} missing.\n\n",
                baseline.source
            ));
            out.push_str(&comparison_table(&measured, &report));
            out.push('\n');
        } else {
            out.push_str(
                "*No quantitative paper baseline for this experiment; measured only.*\n\n",
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Provenance;
    use crate::suite::{run_suite, SuiteOptions};

    fn smoke_artifacts() -> Vec<Artifact> {
        let mut options = SuiteOptions::quick_smoke();
        options.experiments.truncate(2); // fig3-middle + fig4: enough shape
        run_suite(&options, |_| ()).unwrap()
    }

    #[test]
    fn renders_summary_tables_and_sections() {
        let artifacts = smoke_artifacts();
        let md = render_experiments_md(&artifacts).unwrap();
        assert!(md.starts_with("# EXPERIMENTS"));
        assert!(md.contains("## Run summary"));
        assert!(md.contains("Figure 3 (middle)"));
        assert!(md.contains("Figure 4"));
        assert!(md.contains("vs. paper"));
        assert!(md.contains("| row | metric | measured | paper | status |"));
    }

    #[test]
    fn empty_artifact_list_is_an_error() {
        assert!(render_experiments_md(&[]).is_err());
    }

    #[test]
    fn overridden_artifacts_are_flagged_as_non_canonical() {
        let mut artifacts = smoke_artifacts();
        let clean_md = render_experiments_md(&artifacts).unwrap();
        assert!(!clean_md.contains("axis overrides"));

        artifacts[0].overrides = vec![("link.loss_floor".into(), "0.05".into())];
        let md = render_experiments_md(&artifacts).unwrap();
        assert!(
            md.contains("`--set` axis") && md.contains("`link.loss_floor=0.05`"),
            "an overridden artifact must be flagged: {md}"
        );
    }

    #[test]
    fn provenance_appears_in_summary_only_once_per_field() {
        let mut artifacts = smoke_artifacts();
        artifacts[0].provenance = Provenance {
            git_rev: "abc123def456".into(),
            wall_clock_secs: 1.5,
            threads: 2,
            events_processed: 3_000_000,
            events_per_sec: 2_000_000.0,
            peak_rss_bytes: 256 * 1024 * 1024,
        };
        let md = render_experiments_md(&artifacts).unwrap();
        assert!(md.contains("abc123def456"));
        assert!(md.contains("3000000"), "events column missing: {md}");
    }

    #[test]
    fn mixed_run_artifacts_get_a_warning_not_a_wrong_header() {
        let mut artifacts = smoke_artifacts();
        let uniform_md = render_experiments_md(&artifacts).unwrap();
        assert!(!uniform_md.contains("**Warning:**"));
        assert!(uniform_md.contains("- scale: **quick**"));

        artifacts[1].scale = "paper".into();
        artifacts[1].trials = 3;
        let mixed_md = render_experiments_md(&artifacts).unwrap();
        assert!(mixed_md.contains("**Warning:**"), "{mixed_md}");
        assert!(
            !mixed_md.contains("- scale: **quick**"),
            "a mixed report must not claim one uniform scale"
        );
        assert!(mixed_md.contains("| paper | 1 | 3 |"), "{mixed_md}");
    }
}
