//! `scoop-lab store` — ingest readings into the durable basestation store,
//! query them back at rest, and inspect store statistics.
//!
//! ```text
//! scoop-lab store ingest --db DIR [--artifact FILE]... [--sim [--paper]]
//!                        [--set key=value]... [--block-size N] [--compact]
//!                        [--dump FILE] [--history FILE]
//! scoop-lab store query  --db DIR (--at MS | --from MS --to MS | --all)
//!                        [--json] [--out FILE]
//! scoop-lab store stats  --db DIR [--json]
//! ```
//!
//! Two ingest sources exist. `--artifact` maps the measured rows of a
//! committed results artifact to records **deterministically** (row and
//! metric order fix node, attribute, time, and value), which is what the CI
//! round-trip relies on: ingest `results/fig3-left.json`, restart, query
//! everything back, and the dumped and queried JSON must match byte for
//! byte. `--sim` runs a simulation (quick scale by default, `--paper` for
//! the full paper scale) and persists every reading held in the network's
//! data buffers through the [`DiskBackend`] seam — the "full run's readings
//! are ingestible" path.

use crate::artifact::Artifact;
use crate::history::HistoryRecord;
use crate::suite::{ExperimentId, PointSet, Scale, SuiteOptions};
use scoop_storage::{PersistenceBackend, StoredReading};
use scoop_store::{DiskBackend, IngestReport, Store, StoreOptions, StoreStats};
use scoop_types::{Attribute, DurableRecord, NodeId, SimTime};
use serde::Serialize;
use std::path::{Path, PathBuf};

pub(crate) const STORE_USAGE: &str = "usage: scoop-lab store <ingest|query|stats> [options]
  ingest --db DIR [--artifact FILE]... [--sim [--paper]] [--set key=value]...
         [--block-size N] [--compact] [--dump FILE] [--history FILE]
  query  --db DIR (--at MS | --from MS --to MS | --all) [--json] [--out FILE]
  stats  --db DIR [--json]";

/// Entry point for `scoop-lab store ...` (wired up in `cli.rs`).
pub(crate) fn cmd_store(
    args: &[String],
    parse: impl Fn(
        &[String],
        &[&str],
        &[&str],
    ) -> Result<(Vec<String>, Vec<String>, Vec<(String, String)>), String>,
) -> Result<i32, String> {
    let Some(sub) = args.first() else {
        return Err(STORE_USAGE.to_string());
    };
    let rest = &args[1..];
    match sub.as_str() {
        "ingest" => cmd_ingest(rest, &parse),
        "query" => cmd_query(rest, &parse),
        "stats" => cmd_stats(rest, &parse),
        other => Err(format!("unknown store subcommand `{other}`\n{STORE_USAGE}")),
    }
}

type Parsed = (Vec<String>, Vec<String>, Vec<(String, String)>);

fn required_db(values: &[(String, String)]) -> Result<PathBuf, String> {
    values
        .iter()
        .rev()
        .find(|(n, _)| n == "db")
        .map(|(_, v)| PathBuf::from(v))
        .ok_or_else(|| "store commands need --db DIR".to_string())
}

fn open_store(values: &[(String, String)]) -> Result<Store, String> {
    let db = required_db(values)?;
    let mut options = StoreOptions::default();
    if let Some((_, raw)) = values.iter().rev().find(|(n, _)| n == "block-size") {
        options.block_size = raw
            .parse()
            .map_err(|_| format!("bad --block-size value `{raw}`"))?;
    }
    Store::open(&db, options).map_err(|e| e.to_string())
}

/// Deterministically maps one results artifact to durable records: row `i`
/// becomes node `i + 1`, metric `j` of that row becomes attribute code
/// `j mod |Attribute::ALL|`, values are rounded to integers, and timestamps
/// count up in 1-second steps in (row, metric) order. The mapping carries no
/// sensor semantics — it exists so the same artifact always yields the same
/// bytes, which the CI round-trip diffs.
pub(crate) fn records_from_artifact(artifact: &Artifact) -> Result<Vec<DurableRecord>, String> {
    let reference_key = artifact.experiment_id().and_then(|id| id.reference_key());
    let rows = artifact.rows.measured_rows(reference_key);
    if rows.is_empty() {
        return Err(format!(
            "artifact `{}` has no measured rows",
            artifact.experiment
        ));
    }
    let mut records = Vec::new();
    let mut tick = 0u64;
    for (i, row) in rows.iter().enumerate() {
        for (j, (_, value)) in row.metrics.iter().enumerate() {
            tick += 1;
            records.push(DurableRecord {
                time_ms: tick * 1000,
                node: NodeId((i + 1) as u16),
                attribute: (j % Attribute::ALL.len()) as u8,
                value: value.round() as i32,
            });
        }
    }
    Ok(records)
}

fn load_artifact(path: &str) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Runs a simulation and returns every reading sitting in the network's
/// data buffers at the end — the readings a basestation would persist.
fn records_from_sim(
    paper: bool,
    overrides: Vec<(String, String)>,
) -> Result<Vec<StoredReading>, String> {
    let options = SuiteOptions {
        scale: if paper { Scale::Paper } else { Scale::Quick },
        trials: 1,
        seed: 1,
        points: PointSet::Full,
        experiments: ExperimentId::ALL.to_vec(),
        overrides,
    };
    let config = options.base_config().map_err(|e| e.to_string())?;
    let mut engine = scoop_sim::build_engine(&config).map_err(|e| e.to_string())?;
    engine.run_until(SimTime::ZERO + config.duration);
    let mut readings = Vec::new();
    for (_, node) in engine.iter_nodes() {
        readings.extend(node.data_buffer().iter().copied());
    }
    Ok(readings)
}

/// One canonical JSON rendering of a record set, shared by `--dump` and
/// `query --json` so a round trip can be diffed byte for byte.
fn records_json(records: &[DurableRecord]) -> Result<String, String> {
    let mut sorted = records.to_vec();
    sorted.sort_unstable();
    let mut json = serde_json::to_string_pretty(&sorted).map_err(|e| e.to_string())?;
    json.push('\n');
    Ok(json)
}

fn cmd_ingest(
    args: &[String],
    parse: &impl Fn(&[String], &[&str], &[&str]) -> Result<Parsed, String>,
) -> Result<i32, String> {
    let (positional, flags, values) = parse(
        args,
        &["db", "artifact", "set", "block-size", "dump", "history"],
        &["sim", "paper", "compact"],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let sim = flags.iter().any(|f| f == "sim");
    let paper = flags.iter().any(|f| f == "paper");
    let compact = flags.iter().any(|f| f == "compact");
    let artifact_paths: Vec<&str> = values
        .iter()
        .filter(|(n, _)| n == "artifact")
        .map(|(_, v)| v.as_str())
        .collect();
    if artifact_paths.is_empty() && !sim {
        return Err("nothing to ingest: pass --artifact FILE and/or --sim".into());
    }

    let mut records: Vec<DurableRecord> = Vec::new();
    for path in &artifact_paths {
        records.extend(records_from_artifact(&load_artifact(path)?)?);
    }

    let mut store = open_store(&values)?;
    let mut report = IngestReport::default();
    if !records.is_empty() {
        report = store.append_batch(&records).map_err(|e| e.to_string())?;
    }
    if sim {
        let overrides: Vec<(String, String)> = values
            .iter()
            .filter(|(n, _)| n == "set")
            .map(|(_, payload)| {
                payload
                    .split_once('=')
                    .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                    .ok_or_else(|| format!("--set needs key=value, got `{payload}`"))
            })
            .collect::<Result<_, _>>()?;
        let readings = records_from_sim(paper, overrides)?;
        // Persist through the opt-in backend seam, exactly as an attached
        // basestation would; then fold the store back out for the summary.
        let started = std::time::Instant::now();
        let mut backend = DiskBackend::from_store(store);
        backend.append_batch(&readings).map_err(|e| e.to_string())?;
        backend.sync().map_err(|e| e.to_string())?;
        let persisted = backend.records_persisted();
        store = backend.into_store();
        records.extend(
            readings
                .iter()
                .map(|stored| DurableRecord::from_reading(&stored.reading)),
        );
        report.records += persisted;
        report.ingest_secs += started.elapsed().as_secs_f64();
    }
    report.records_per_sec = if report.ingest_secs > 0.0 {
        report.records as f64 / report.ingest_secs
    } else {
        0.0
    };
    store.commit().map_err(|e| e.to_string())?;
    if compact {
        store.compact_all_blocking().map_err(|e| e.to_string())?;
    }
    let stats = store.stats().map_err(|e| e.to_string())?;

    println!(
        "ingested {} record(s) in {:.3} s ({:.0} records/s) into {}",
        report.records,
        report.ingest_secs,
        report.records_per_sec,
        store.dir().display()
    );
    println!(
        "store: {} segment(s), {} block(s), {} bytes on disk, \
         index built in {:.4} s ({} PLA segment(s))",
        stats.segments, stats.blocks, stats.disk_bytes, stats.index_build_secs, stats.pla_segments
    );

    if let Some((_, dump)) = values.iter().rev().find(|(n, _)| n == "dump") {
        std::fs::write(dump, records_json(&records)?).map_err(|e| format!("{dump}: {e}"))?;
        println!("dumped canonical ingest set to {dump}");
    }
    if let Some((_, history)) = values.iter().rev().find(|(n, _)| n == "history") {
        HistoryRecord::from_store_ingest(&report, &stats)
            .append_to(Path::new(history))
            .map_err(|e| e.to_string())?;
        println!("appended store metrics to {history}");
    }
    Ok(0)
}

fn cmd_query(
    args: &[String],
    parse: &impl Fn(&[String], &[&str], &[&str]) -> Result<Parsed, String>,
) -> Result<i32, String> {
    let (positional, flags, values) = parse(
        args,
        &["db", "at", "from", "to", "out", "block-size"],
        &["json", "all"],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let json = flags.iter().any(|f| f == "json");
    let all = flags.iter().any(|f| f == "all");
    let parse_ms = |name: &str| -> Result<Option<u64>, String> {
        values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, raw)| {
                raw.parse()
                    .map_err(|_| format!("bad --{name} value `{raw}`"))
            })
            .transpose()
    };
    let at = parse_ms("at")?;
    let from = parse_ms("from")?;
    let to = parse_ms("to")?;

    let mut store = open_store(&values)?;
    let outcome = match (at, from, to, all) {
        (Some(t), None, None, false) => store.query_point(t),
        (None, Some(a), Some(b), false) => store.query_range(a, b),
        (None, None, None, true) => store.scan_all(),
        _ => return Err("pass exactly one of --at MS, --from MS --to MS, or --all".into()),
    }
    .map_err(|e| e.to_string())?;

    if json {
        let payload = records_json(&outcome.records)?;
        match values.iter().rev().find(|(n, _)| n == "out") {
            Some((_, out)) => {
                std::fs::write(out, payload).map_err(|e| format!("{out}: {e}"))?;
            }
            None => print!("{payload}"),
        }
    } else {
        for r in &outcome.records {
            let attribute = scoop_types::attribute_from_code(r.attribute)
                .map(|a| a.to_string())
                .unwrap_or_else(|| format!("code-{}", r.attribute));
            println!(
                "t={:>10} ms  node={:<5} {:<12} value={}",
                r.time_ms, r.node.0, attribute, r.value
            );
        }
        println!(
            "{} record(s), {} data block(s) read",
            outcome.records.len(),
            outcome.blocks_read
        );
    }
    Ok(0)
}

/// The JSON shape of `store stats --json` (scoop-store itself carries no
/// serde dependency; this mirror keeps the serialization concern here).
#[derive(Serialize)]
struct StatsJson {
    segments: usize,
    blocks: usize,
    records: u64,
    disk_bytes: u64,
    pla_segments: usize,
    blocks_read: u64,
    index_fallback_lookups: u64,
    index_build_secs: f64,
    min_time_ms: u64,
    max_time_ms: u64,
    recovered_segments: usize,
}

fn cmd_stats(
    args: &[String],
    parse: &impl Fn(&[String], &[&str], &[&str]) -> Result<Parsed, String>,
) -> Result<i32, String> {
    let (positional, flags, values) = parse(args, &["db", "block-size"], &["json"])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let store = open_store(&values)?;
    let stats = store.stats().map_err(|e| e.to_string())?;
    let recovered = store
        .recovery_report()
        .iter()
        .filter(|(_, outcome)| !matches!(outcome, scoop_store::RecoveryOutcome::Sealed))
        .count();
    if flags.iter().any(|f| f == "json") {
        let payload = StatsJson {
            segments: stats.segments,
            blocks: stats.blocks,
            records: stats.records,
            disk_bytes: stats.disk_bytes,
            pla_segments: stats.pla_segments,
            blocks_read: stats.blocks_read,
            index_fallback_lookups: stats.index_fallback_lookups,
            index_build_secs: stats.index_build_secs,
            min_time_ms: stats.min_time_ms,
            max_time_ms: stats.max_time_ms,
            recovered_segments: recovered,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?
        );
    } else {
        print_stats_text(&stats, recovered, store.dir());
    }
    Ok(0)
}

fn print_stats_text(stats: &StoreStats, recovered: usize, dir: &Path) {
    println!("store at {}", dir.display());
    println!(
        "  {} segment(s), {} block(s), {} record(s), {} bytes on disk",
        stats.segments, stats.blocks, stats.records, stats.disk_bytes
    );
    println!(
        "  time span: {} .. {} ms",
        stats.min_time_ms, stats.max_time_ms
    );
    println!(
        "  learned index: {} PLA segment(s), built in {:.4} s, \
         {} fallback lookup(s)",
        stats.pla_segments, stats.index_build_secs, stats.index_fallback_lookups
    );
    println!(
        "  session: {} data block(s) read, {} segment(s) recovered on open",
        stats.blocks_read, recovered
    );
}
