//! The typed union of every experiment's row type, plus the derived metric
//! view the diff engine and the report renderer consume.
//!
//! Each experiment in `scoop_sim::experiments` returns its own row struct.
//! [`RowSet`] wraps them all behind one serializable type so artifacts can
//! carry any experiment's output, and [`RowSet::measured_rows`] flattens a
//! row set into keyed `(metric, value)` pairs — including the *normalized*
//! metrics (ratios to a reference row) that the paper's figures actually
//! argue about, so baselines transfer across absolute-scale differences
//! between the paper's testbed and this simulator.

use scoop_sim::experiments::{
    AblationRow, AggregateOpsRow, ChaosRow, Fig3Row, Fig4Row, Fig5Row, LinkCalibrationRow,
    RangeWidthRow, ReliabilityRow, RootSkewRow, SampleIntervalRow, ScalingRow,
};
use scoop_sim::report;
use serde::{Deserialize, Serialize};

/// The rows of one experiment run, tagged by experiment family.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RowSet {
    /// A Figure 3 panel (stacked message breakdowns).
    Fig3(Vec<Fig3Row>),
    /// The Figure 4 selectivity sweep.
    Fig4(Vec<Fig4Row>),
    /// The Figure 5 query-interval sweep.
    Fig5(Vec<Fig5Row>),
    /// The ablation suite.
    Ablations(Vec<AblationRow>),
    /// The sample-interval sweep.
    SampleInterval(Vec<SampleIntervalRow>),
    /// The reliability measurements.
    Reliability(Vec<ReliabilityRow>),
    /// The root-skew analysis.
    RootSkew(Vec<RootSkewRow>),
    /// The scaling study.
    Scaling(Vec<ScalingRow>),
    /// The link-calibration ablation.
    LinkCalibration(Vec<LinkCalibrationRow>),
    /// A chaos scenario (per-phase reliability under scheduled faults).
    Chaos(Vec<ChaosRow>),
    /// The range-workload width sweep.
    RangeWidth(Vec<RangeWidthRow>),
    /// The aggregate-operator grid.
    Aggregate(Vec<AggregateOpsRow>),
}

/// One row of any experiment, flattened to named numeric metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasuredRow {
    /// Stable row key (e.g. `scoop/real`, `scoop/width-50%`).
    pub key: String,
    /// `(metric name, value)` pairs, in presentation order.
    pub metrics: Vec<(String, f64)>,
}

impl MeasuredRow {
    /// The value of the named metric, if present.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(m, _)| m == name)
            .map(|&(_, v)| v)
    }
}

impl RowSet {
    /// Number of rows carried.
    pub fn len(&self) -> usize {
        match self {
            RowSet::Fig3(r) => r.len(),
            RowSet::Fig4(r) => r.len(),
            RowSet::Fig5(r) => r.len(),
            RowSet::Ablations(r) => r.len(),
            RowSet::SampleInterval(r) => r.len(),
            RowSet::Reliability(r) => r.len(),
            RowSet::RootSkew(r) => r.len(),
            RowSet::Scaling(r) => r.len(),
            RowSet::LinkCalibration(r) => r.len(),
            RowSet::Chaos(r) => r.len(),
            RowSet::RangeWidth(r) => r.len(),
            RowSet::Aggregate(r) => r.len(),
        }
    }

    /// Whether the set carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the set as the plain-text table the bench harness prints,
    /// titled `title`.
    pub fn table(&self, title: &str) -> String {
        match self {
            RowSet::Fig3(rows) => report::fig3_table(title, rows),
            RowSet::Fig4(rows) => report::fig4_table(rows),
            RowSet::Fig5(rows) => report::fig5_table(rows),
            RowSet::Ablations(rows) => report::ablation_table(rows),
            RowSet::SampleInterval(rows) => report::sample_interval_table(rows),
            RowSet::Reliability(rows) => report::reliability_table(rows),
            RowSet::RootSkew(rows) => report::root_skew_table(rows),
            RowSet::Scaling(rows) => report::scaling_table(title, rows),
            RowSet::LinkCalibration(rows) => report::link_calibration_table(rows),
            RowSet::Chaos(rows) => report::chaos_table(title, rows),
            RowSet::RangeWidth(rows) => report::range_width_table(rows),
            RowSet::Aggregate(rows) => report::aggregate_ops_table(rows),
        }
    }

    /// Renders the bare rows as a pretty JSON *array* (the machine-readable
    /// format `reproduce --json` has always printed), without the enum tag
    /// that [`serde::Serialize`] adds for artifact files.
    pub fn rows_json(&self) -> Result<String, scoop_types::ScoopError> {
        match self {
            RowSet::Fig3(rows) => report::to_json(rows),
            RowSet::Fig4(rows) => report::to_json(rows),
            RowSet::Fig5(rows) => report::to_json(rows),
            RowSet::Ablations(rows) => report::to_json(rows),
            RowSet::SampleInterval(rows) => report::to_json(rows),
            RowSet::Reliability(rows) => report::to_json(rows),
            RowSet::RootSkew(rows) => report::to_json(rows),
            RowSet::Scaling(rows) => report::to_json(rows),
            RowSet::LinkCalibration(rows) => report::to_json(rows),
            RowSet::Chaos(rows) => report::to_json(rows),
            RowSet::RangeWidth(rows) => report::to_json(rows),
            RowSet::Aggregate(rows) => report::to_json(rows),
        }
    }

    /// Flattens the rows into keyed metric vectors.
    ///
    /// `reference_key` names the row used as the denominator for the
    /// normalized `*_vs_ref` metrics (see [`crate::suite::ExperimentId::
    /// reference_key`]); rows in families without a reference (or when the
    /// reference row is absent) simply omit the ratio metrics.
    pub fn measured_rows(&self, reference_key: Option<&str>) -> Vec<MeasuredRow> {
        let mut rows = self.raw_rows();
        // Figures 4 and 5 (and the range-width sweep, their steady-state
        // cousin) compare policies *pointwise*: normalize each row to the
        // BASE row at the same sweep point (same width / same interval).
        if matches!(
            self,
            RowSet::Fig4(_) | RowSet::Fig5(_) | RowSet::RangeWidth(_)
        ) {
            let base_totals: Vec<(String, f64)> = rows
                .iter()
                .filter(|r| r.key.starts_with("base/"))
                .filter_map(|r| {
                    let point = r.key.trim_start_matches("base/").to_string();
                    r.metric("total_messages").map(|t| (point, t))
                })
                .collect();
            for row in &mut rows {
                let point = row.key.split_once('/').map(|(_, p)| p).unwrap_or("");
                let reference = base_totals
                    .iter()
                    .find(|(p, _)| p == point)
                    .map(|&(_, t)| t)
                    .filter(|&t| t > 0.0);
                if let (Some(total), Some(base)) = (row.metric("total_messages"), reference) {
                    row.metrics.push(("total_vs_base".into(), total / base));
                }
            }
        }
        if let Some(reference) = reference_key {
            let ref_total = rows
                .iter()
                .find(|r| r.key == reference)
                .and_then(|r| r.metric("total_messages"));
            if let Some(ref_total) = ref_total.filter(|&t| t > 0.0) {
                for row in &mut rows {
                    if let Some(total) = row.metric("total_messages") {
                        row.metrics
                            .push(("total_vs_ref".to_string(), total / ref_total));
                    }
                }
            }
        }
        rows
    }

    /// The per-family flattening, absolute metrics only.
    fn raw_rows(&self) -> Vec<MeasuredRow> {
        match self {
            RowSet::Fig3(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/{}", r.policy, r.source),
                    metrics: vec![
                        ("total_messages".into(), r.total as f64),
                        ("data_messages".into(), r.messages.data as f64),
                        ("summary_messages".into(), r.messages.summary as f64),
                        ("mapping_messages".into(), r.messages.mapping as f64),
                        ("query_reply_messages".into(), r.messages.query_reply as f64),
                    ],
                })
                .collect(),
            RowSet::Fig4(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/width-{:.0}%", r.policy, r.requested_width_frac * 100.0),
                    metrics: vec![
                        ("total_messages".into(), r.total_messages as f64),
                        ("fraction_nodes_queried".into(), r.fraction_nodes_queried),
                    ],
                })
                .collect(),
            RowSet::Fig5(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/interval-{}s", r.policy, r.query_interval_secs),
                    metrics: vec![("total_messages".into(), r.total_messages as f64)],
                })
                .collect(),
            RowSet::Ablations(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: r.variant.clone(),
                    metrics: vec![
                        ("total_messages".into(), r.total_messages as f64),
                        ("data_messages".into(), r.data_messages as f64),
                        ("mapping_messages".into(), r.mapping_messages as f64),
                    ],
                })
                .collect(),
            RowSet::SampleInterval(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/sample-{}s", r.source, r.sample_interval_secs),
                    metrics: vec![
                        ("total_messages".into(), r.total_messages as f64),
                        ("non_data_messages".into(), r.non_data_messages as f64),
                    ],
                })
                .collect(),
            RowSet::Reliability(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: r.policy.to_string(),
                    metrics: vec![
                        ("storage_success".into(), r.storage_success),
                        ("query_success".into(), r.query_success),
                        ("destination_accuracy".into(), r.destination_accuracy),
                    ],
                })
                .collect(),
            RowSet::RootSkew(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: r.policy.to_string(),
                    metrics: vec![
                        ("root_tx".into(), r.root_tx as f64),
                        ("root_rx".into(), r.root_rx as f64),
                        ("mean_sensor_tx".into(), r.mean_sensor_tx),
                        ("total_messages".into(), r.total_messages as f64),
                    ],
                })
                .collect(),
            RowSet::Scaling(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/{}-nodes", r.source, r.num_nodes),
                    metrics: vec![
                        ("total_messages".into(), r.total_messages as f64),
                        ("messages_per_node".into(), r.messages_per_node),
                        ("storage_success".into(), r.storage_success),
                    ],
                })
                .collect(),
            RowSet::LinkCalibration(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("floor-{:.2}/exp-{:.1}", r.loss_floor, r.distance_exponent),
                    metrics: vec![
                        ("storage_success".into(), r.storage_success),
                        ("query_success".into(), r.query_success),
                        ("total_messages".into(), r.total_messages as f64),
                    ],
                })
                .collect(),
            RowSet::Chaos(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/{}", r.scenario, r.phase),
                    metrics: vec![
                        ("storage_success".into(), r.storage_success),
                        ("query_success".into(), r.query_success),
                        ("control_storage_success".into(), r.control_storage_success),
                        ("control_query_success".into(), r.control_query_success),
                    ],
                })
                .collect(),
            RowSet::RangeWidth(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/width-{:.0}%", r.policy, r.width_frac * 100.0),
                    metrics: vec![
                        ("total_messages".into(), r.total_messages as f64),
                        ("fraction_nodes_queried".into(), r.fraction_nodes_queried),
                        ("query_success".into(), r.query_success),
                    ],
                })
                .collect(),
            RowSet::Aggregate(rows) => rows
                .iter()
                .map(|r| MeasuredRow {
                    key: format!("{}/{}", r.policy, r.op),
                    metrics: vec![
                        ("total_messages".into(), r.total_messages as f64),
                        ("query_reply_messages".into(), r.query_reply_messages as f64),
                        ("query_success".into(), r.query_success),
                    ],
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_sim::MessageBreakdown;
    use scoop_types::{DataSourceKind, StoragePolicy};

    fn fig3_set() -> RowSet {
        RowSet::Fig3(vec![
            Fig3Row {
                policy: StoragePolicy::Scoop,
                source: DataSourceKind::Real,
                messages: MessageBreakdown {
                    data: 10,
                    summary: 5,
                    mapping: 3,
                    query_reply: 2,
                },
                total: 20,
            },
            Fig3Row {
                policy: StoragePolicy::Base,
                source: DataSourceKind::Real,
                messages: MessageBreakdown {
                    data: 40,
                    summary: 0,
                    mapping: 0,
                    query_reply: 0,
                },
                total: 40,
            },
        ])
    }

    #[test]
    fn measured_rows_include_normalized_ratio() {
        let rows = fig3_set().measured_rows(Some("base/real"));
        let scoop = rows.iter().find(|r| r.key == "scoop/real").unwrap();
        assert_eq!(scoop.metric("total_messages"), Some(20.0));
        assert_eq!(scoop.metric("total_vs_ref"), Some(0.5));
        let base = rows.iter().find(|r| r.key == "base/real").unwrap();
        assert_eq!(base.metric("total_vs_ref"), Some(1.0));
    }

    #[test]
    fn missing_reference_omits_ratio() {
        let rows = fig3_set().measured_rows(Some("hash/real"));
        assert!(rows[0].metric("total_vs_ref").is_none());
        let rows = fig3_set().measured_rows(None);
        assert!(rows[0].metric("total_vs_ref").is_none());
    }

    #[test]
    fn fig5_rows_normalize_to_base_at_same_interval() {
        let set = RowSet::Fig5(vec![
            Fig5Row {
                policy: StoragePolicy::Scoop,
                query_interval_secs: 5,
                total_messages: 30,
            },
            Fig5Row {
                policy: StoragePolicy::Base,
                query_interval_secs: 5,
                total_messages: 60,
            },
            Fig5Row {
                policy: StoragePolicy::Scoop,
                query_interval_secs: 45,
                total_messages: 10,
            },
            Fig5Row {
                policy: StoragePolicy::Base,
                query_interval_secs: 45,
                total_messages: 50,
            },
        ]);
        let rows = set.measured_rows(None);
        let ratio = |key: &str| {
            rows.iter()
                .find(|r| r.key == key)
                .unwrap()
                .metric("total_vs_base")
                .unwrap()
        };
        assert_eq!(ratio("scoop/interval-5s"), 0.5);
        assert_eq!(ratio("scoop/interval-45s"), 0.2);
        assert_eq!(ratio("base/interval-45s"), 1.0);
    }

    #[test]
    fn row_set_len_and_table() {
        let set = fig3_set();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(set.table("Fig 3").contains("scoop/real"));
    }

    #[test]
    fn rows_json_is_a_bare_array() {
        let json = fig3_set().rows_json().unwrap();
        assert!(json.trim_start().starts_with('['), "{json}");
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["total"], 20);
    }

    #[test]
    fn row_set_serde_round_trips() {
        let set = fig3_set();
        let json = serde_json::to_string(&set).unwrap();
        let back: RowSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.measured_rows(None),
            set.measured_rows(None),
            "metric view survives the round trip"
        );
    }
}
