//! The `scoop-lab` binary: see [`scoop_lab::cli`] for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(scoop_lab::cli::run_cli(&args));
}
