//! Schema-versioned experiment artifacts and the on-disk store.
//!
//! Every `scoop-lab run` writes one JSON file per experiment under
//! `results/`. An [`Artifact`] is self-describing: schema version, the
//! experiment slug, the scale and seed it ran at, a hash of the full base
//! configuration (so a changed parameter is detectable without diffing the
//! whole config), provenance (git revision, wall-clock, sweep threads), and
//! the typed rows. Everything except the [`Provenance`] block is a pure
//! function of `(code, config, seed)` — the determinism tests rely on
//! [`Artifact::deterministic_json`] masking exactly that block.

use crate::rows::RowSet;
use crate::suite::{ExperimentId, SuiteOptions};
use scoop_types::{ExperimentConfig, ScoopError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Version of the artifact JSON layout. Bump on any breaking change and
/// teach [`ArtifactStore::load`] to migrate (or reject) old files.
///
/// History: v1 — the original layout; v2 — the ScenarioSpec redesign added
/// the required `overrides` field (axis overrides applied to the base spec).
pub const SCHEMA_VERSION: u32 = 2;

/// Where an artifact came from: the only part of an artifact that is *not*
/// a deterministic function of the configuration.
///
/// The throughput fields are serialized only when non-zero so the masked
/// form — what the committed smoke baseline and golden files pin byte for
/// byte — is unchanged from the pre-throughput schema, and files written by
/// older binaries still load (`#[serde(default)]`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Short git revision of the workspace, or `"unknown"` outside a repo.
    pub git_rev: String,
    /// Wall-clock seconds the experiment took.
    pub wall_clock_secs: f64,
    /// Worker threads the sweep ran on (results are identical at any count).
    pub threads: usize,
    /// Total engine events dispatched across every run of the experiment
    /// (all scenarios × trials, including warmup). `0` means unrecorded
    /// (masked provenance or a pre-throughput artifact).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub events_processed: u64,
    /// `events_processed / wall_clock_secs` — the hot-path throughput number
    /// the `engine_hot_path` bench and `BENCH_history.jsonl` track.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub events_per_sec: f64,
    /// Peak resident set size of the process in bytes when the experiment
    /// finished (Linux `VmHWM`, a monotone high-water mark — so this bounds
    /// the experiment's own footprint from above). `0` means unrecorded:
    /// masked provenance, a pre-memory artifact, or a platform without
    /// procfs.
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub peak_rss_bytes: u64,
}

/// `skip_serializing_if` predicate: unrecorded event counts stay off disk.
fn is_zero_u64(v: &u64) -> bool {
    *v == 0
}

/// `skip_serializing_if` predicate: unrecorded throughput stays off disk.
fn is_zero_f64(v: &f64) -> bool {
    *v == 0.0
}

impl Provenance {
    /// Captures the current workspace revision and sweep-thread count, plus
    /// the measured event throughput.
    pub fn capture(wall_clock_secs: f64, events_processed: u64) -> Self {
        Provenance {
            git_rev: workspace_git_rev(),
            wall_clock_secs,
            threads: scoop_sim::SweepRunner::from_env().threads(),
            events_processed,
            events_per_sec: if wall_clock_secs > 0.0 {
                events_processed as f64 / wall_clock_secs
            } else {
                0.0
            },
            peak_rss_bytes: peak_rss_bytes(),
        }
    }

    /// The neutral value substituted when comparing artifacts for
    /// determinism.
    pub fn masked() -> Self {
        Provenance {
            git_rev: String::new(),
            wall_clock_secs: 0.0,
            threads: 0,
            events_processed: 0,
            events_per_sec: 0.0,
            peak_rss_bytes: 0,
        }
    }
}

/// Peak resident set size of this process in bytes: the `VmHWM` line of
/// `/proc/self/status`, scaled from kB. Returns 0 where procfs is absent
/// (non-Linux), which serializes as "unrecorded".
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// One persisted experiment run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Artifact {
    /// Artifact layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment slug (see [`ExperimentId::slug`]).
    pub experiment: String,
    /// Scale name (`"paper"` or `"quick"`).
    pub scale: String,
    /// Base seed of the run (trial `t` used `seed + t`).
    pub seed: u64,
    /// Trials averaged per scenario.
    pub trials: usize,
    /// FNV-1a hash of the canonical JSON of the base configuration.
    pub config_hash: String,
    /// Axis overrides (`--set key=value`) the run applied on top of the
    /// scale's defaults, in application order. Empty for canonical runs —
    /// a non-empty list marks the artifact as describing a *modified*
    /// scenario, and the report renderer flags it.
    pub overrides: Vec<(String, String)>,
    /// Where and how the run happened.
    pub provenance: Provenance,
    /// The measured rows.
    pub rows: RowSet,
}

impl Artifact {
    /// Builds an artifact for one finished experiment.
    pub fn new(
        id: ExperimentId,
        options: &SuiteOptions,
        base: &ExperimentConfig,
        rows: RowSet,
        provenance: Provenance,
    ) -> Self {
        Artifact {
            schema_version: SCHEMA_VERSION,
            experiment: id.slug().to_string(),
            scale: options.scale.name().to_string(),
            // The *resolved* spec's seed, not options.seed: a `--set seed=N`
            // override must be recorded as the seed the run actually used.
            seed: base.seed,
            trials: options.trials,
            config_hash: config_hash(base),
            overrides: options.overrides.clone(),
            provenance,
            rows,
        }
    }

    /// The experiment id, if the slug is recognized.
    pub fn experiment_id(&self) -> Option<ExperimentId> {
        ExperimentId::from_slug(&self.experiment)
    }

    /// Pretty JSON as written to disk.
    pub fn to_json(&self) -> Result<String, ScoopError> {
        serde_json::to_string_pretty(self).map_err(|e| ScoopError::Serialization(e.to_string()))
    }

    /// Pretty JSON with the provenance block masked: two runs of the same
    /// code at the same config and seed must produce byte-identical output
    /// here, no matter the wall-clock, revision, or thread count.
    pub fn deterministic_json(&self) -> Result<String, ScoopError> {
        let mut masked = self.clone();
        masked.provenance = Provenance::masked();
        masked.to_json()
    }
}

/// Stable 64-bit FNV-1a hash of the canonical (compact) config JSON.
pub fn config_hash(config: &ExperimentConfig) -> String {
    let canonical = serde_json::to_string(config).unwrap_or_default();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    format!("fnv1a:{hash:016x}")
}

/// The short revision of the enclosing git repository, or `"unknown"`.
pub(crate) fn workspace_git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Reads and writes artifacts under one results directory.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// A store rooted at `root` (typically `results/`). Nothing is touched
    /// until the first save.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ArtifactStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file an experiment's artifact lives in.
    pub fn path_for(&self, slug: &str) -> PathBuf {
        self.root.join(format!("{slug}.json"))
    }

    /// Writes one artifact, creating the directory if needed. Returns the
    /// path written.
    pub fn save(&self, artifact: &Artifact) -> Result<PathBuf, ScoopError> {
        std::fs::create_dir_all(&self.root)
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", self.root.display())))?;
        let path = self.path_for(&artifact.experiment);
        let mut json = artifact.to_json()?;
        json.push('\n');
        std::fs::write(&path, json)
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
        Ok(path)
    }

    /// Loads the artifact for one experiment slug.
    pub fn load(&self, slug: &str) -> Result<Artifact, ScoopError> {
        let path = self.path_for(slug);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
        // Probe the version *before* the typed parse: a file from another
        // schema generation must produce the version message, not whatever
        // missing-field error the typed deserializer trips over first.
        let probe: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| ScoopError::Serialization(format!("{}: {e}", path.display())))?;
        let version = match probe.get("schema_version") {
            Some(serde_json::Value::U64(n)) => *n as u32,
            Some(serde_json::Value::I64(n)) => *n as u32,
            _ => 0,
        };
        if version != SCHEMA_VERSION {
            return Err(ScoopError::Artifact(format!(
                "{}: schema version {version} (this binary reads {SCHEMA_VERSION}; \
                 regenerate with `scoop-lab run`)",
                path.display(),
            )));
        }
        let artifact: Artifact = serde_json::from_str(&text)
            .map_err(|e| ScoopError::Serialization(format!("{}: {e}", path.display())))?;
        Ok(artifact)
    }

    /// Loads every artifact present for the given experiments, in suite
    /// order, skipping experiments that have no file yet.
    pub fn load_present(&self, ids: &[ExperimentId]) -> Result<Vec<Artifact>, ScoopError> {
        let mut artifacts = Vec::new();
        for id in ids {
            if self.path_for(id.slug()).exists() {
                artifacts.push(self.load(id.slug())?);
            }
        }
        Ok(artifacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_experiment, PointSet, Scale};

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("scoop-lab-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::new(dir)
    }

    fn sample_artifact() -> Artifact {
        let options = SuiteOptions::quick_smoke();
        let base = options.base_config().unwrap();
        let rows = run_experiment(ExperimentId::Fig5, &base, 1, PointSet::Smoke).unwrap();
        Artifact::new(
            ExperimentId::Fig5,
            &options,
            &base,
            rows,
            Provenance::capture(0.25, 10_000),
        )
    }

    #[test]
    fn save_load_round_trip() {
        let store = tmp_store("roundtrip");
        let artifact = sample_artifact();
        let path = store.save(&artifact).unwrap();
        assert!(path.ends_with("fig5.json"));
        let back = store.load("fig5").unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.experiment, "fig5");
        assert_eq!(back.config_hash, artifact.config_hash);
        assert_eq!(
            back.deterministic_json().unwrap(),
            artifact.deterministic_json().unwrap()
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_rejects_other_schema_versions() {
        let store = tmp_store("schema");
        let mut artifact = sample_artifact();
        artifact.schema_version = SCHEMA_VERSION + 1;
        store.save(&artifact).unwrap();
        let err = store.load("fig5").unwrap_err();
        assert!(matches!(err, ScoopError::Artifact(_)), "{err}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn old_schema_files_get_the_version_message_not_a_field_error() {
        // A v1-era file has no `overrides` key; the load must still say
        // "schema version 1", not trip over the missing field.
        let store = tmp_store("v1");
        std::fs::create_dir_all(store.root()).unwrap();
        std::fs::write(
            store.path_for("fig5"),
            r#"{"schema_version": 1, "experiment": "fig5"}"#,
        )
        .unwrap();
        let err = store.load("fig5").unwrap_err().to_string();
        assert!(err.contains("schema version 1"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn artifact_records_the_resolved_seed_not_the_flag() {
        let mut options = SuiteOptions::quick_smoke();
        options
            .overrides
            .push(("seed".to_string(), "7".to_string()));
        let base = options.base_config().unwrap();
        assert_eq!(base.seed, 7);
        let rows = run_experiment(ExperimentId::Fig5, &base, 1, PointSet::Smoke).unwrap();
        let artifact = Artifact::new(
            ExperimentId::Fig5,
            &options,
            &base,
            rows,
            Provenance::masked(),
        );
        assert_eq!(
            artifact.seed, 7,
            "a `--set seed=` override must be recorded as the seed actually used"
        );
        assert_eq!(artifact.overrides, options.overrides);
    }

    #[test]
    fn missing_artifacts_are_skipped_not_errors() {
        let store = tmp_store("missing");
        assert!(store.load("fig4").is_err());
        let present = store.load_present(&[ExperimentId::Fig4]).unwrap();
        assert!(present.is_empty());
    }

    #[test]
    fn peak_rss_is_captured_and_masked() {
        // On Linux procfs is always there and a running test has touched
        // memory, so the high-water mark must be positive and plausible.
        let peak = peak_rss_bytes();
        assert!(peak > 0, "VmHWM should be readable on Linux");
        assert!(peak < 1 << 42, "VmHWM parse produced garbage: {peak}");
        let captured = Provenance::capture(0.5, 1_000);
        assert!(
            captured.peak_rss_bytes >= 1024,
            "{}",
            captured.peak_rss_bytes
        );
        assert_eq!(Provenance::masked().peak_rss_bytes, 0);
        // Masked JSON omits the field entirely (the committed-baseline form).
        let json = serde_json::to_string(&Provenance::masked()).unwrap();
        assert!(!json.contains("peak_rss_bytes"), "{json}");
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = Scale::Quick.base_config();
        let mut b = a.clone();
        assert_eq!(config_hash(&a), config_hash(&b));
        b.num_nodes += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        assert!(config_hash(&a).starts_with("fnv1a:"));
    }

    #[test]
    fn deterministic_json_masks_only_provenance() {
        let artifact = sample_artifact();
        let mut other = artifact.clone();
        other.provenance = Provenance {
            git_rev: "feedfacecafe".into(),
            wall_clock_secs: 99.0,
            threads: 8,
            events_processed: 123_456,
            events_per_sec: 1_247.0,
            peak_rss_bytes: 512 * 1024 * 1024,
        };
        assert_eq!(
            artifact.deterministic_json().unwrap(),
            other.deterministic_json().unwrap()
        );
        assert_ne!(artifact.to_json().unwrap(), other.to_json().unwrap());
    }
}
