//! The regression gate behind `scoop-lab check`.
//!
//! Runs the deterministic quick smoke suite ([`SuiteOptions::quick_smoke`])
//! and compares every metric of every row against the committed baseline
//! file (`crates/scoop-lab/baselines/smoke.json`), at a chosen tolerance
//! preset. Any `Drift` or `Missing` row fails the check — CI turns that into
//! a red build. `--bless` rewrites the baseline from the current run after a
//! deliberate behavioral change.

use crate::artifact::{Artifact, Provenance};
use crate::baselines::{regression_baseline, TolerancePreset};
use crate::diff::{diff_rows, DiffReport};
use crate::suite::{run_suite, SuiteOptions};
use scoop_types::ScoopError;
use std::path::Path;

/// Path of the committed smoke baseline, relative to the workspace root.
pub const DEFAULT_BASELINE_PATH: &str = "crates/scoop-lab/baselines/smoke.json";

/// Path of the committed chaos baseline (the chaos scenario family runs as
/// its own gate with its own baseline file, so extending the fault model
/// never perturbs the classic smoke baseline).
pub const DEFAULT_CHAOS_BASELINE_PATH: &str = "crates/scoop-lab/baselines/chaos.json";

/// Path of the committed workloads baseline (the range/aggregate workload
/// grids run as their own gate with their own baseline file, like chaos).
pub const DEFAULT_WORKLOADS_BASELINE_PATH: &str = "crates/scoop-lab/baselines/workloads.json";

/// The outcome of one `scoop-lab check`.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// One diff per smoke experiment, in suite order.
    pub reports: Vec<DiffReport>,
}

impl CheckOutcome {
    /// Whether any experiment drifted from the committed baseline.
    pub fn failed(&self) -> bool {
        self.reports.iter().any(DiffReport::has_failures)
    }

    /// Plain-text rendering of every report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for report in &self.reports {
            out.push_str(&report.render_text());
        }
        let verdict = if self.failed() {
            "CHECK FAILED: smoke suite drifted from the committed baseline \
             (re-bless with `scoop-lab check --bless` if the change is intended)"
        } else {
            "check passed: smoke suite matches the committed baseline"
        };
        out.push_str(verdict);
        out.push('\n');
        out
    }
}

/// Runs the smoke suite and returns its artifacts (provenance masked, so the
/// baseline file is stable across machines and commits).
pub fn run_smoke_suite() -> Result<Vec<Artifact>, ScoopError> {
    run_masked(&SuiteOptions::quick_smoke())
}

/// Runs the chaos smoke suite (the three chaos scenarios at quick scale)
/// and returns its artifacts, provenance masked like [`run_smoke_suite`].
pub fn run_chaos_suite() -> Result<Vec<Artifact>, ScoopError> {
    run_masked(&SuiteOptions::chaos_smoke())
}

/// Runs the workloads smoke suite (the range and aggregate grids at quick
/// scale) and returns its artifacts, provenance masked like
/// [`run_smoke_suite`].
pub fn run_workloads_suite() -> Result<Vec<Artifact>, ScoopError> {
    run_masked(&SuiteOptions::workloads_smoke())
}

fn run_masked(options: &SuiteOptions) -> Result<Vec<Artifact>, ScoopError> {
    let mut artifacts = run_suite(options, |_| ())?;
    for artifact in &mut artifacts {
        artifact.provenance = Provenance::masked();
    }
    Ok(artifacts)
}

/// Serializes smoke artifacts as the baseline file's content.
pub fn baseline_file_content(artifacts: &[Artifact]) -> Result<String, ScoopError> {
    let mut json = serde_json::to_string_pretty(artifacts)
        .map_err(|e| ScoopError::Serialization(e.to_string()))?;
    json.push('\n');
    Ok(json)
}

/// Loads the committed baseline artifacts.
pub fn load_baseline(path: &Path) -> Result<Vec<Artifact>, ScoopError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| ScoopError::Serialization(format!("{}: {e}", path.display())))
}

/// Compares freshly measured smoke artifacts against baseline artifacts.
///
/// Coverage is checked in *both* directions: a baseline row absent from the
/// measurement is `Missing`, and a measured experiment with no baseline
/// entry at all fails too — otherwise a truncated or emptied baseline file
/// would make the gate pass while checking nothing.
///
/// Public (rather than folded into [`run_check`]) so tests can exercise the
/// classification with perturbed baselines without touching the filesystem.
pub fn compare_to_baseline(
    measured: &[Artifact],
    baseline: &[Artifact],
    preset: TolerancePreset,
) -> CheckOutcome {
    let mut reports: Vec<DiffReport> = baseline
        .iter()
        .map(|expected| {
            let baseline_set = regression_baseline(expected, preset.tolerance());
            let measured_rows = measured
                .iter()
                .find(|a| a.experiment == expected.experiment)
                .map(|a| {
                    a.rows
                        .measured_rows(a.experiment_id().and_then(|id| id.reference_key()))
                })
                .unwrap_or_default();
            diff_rows(&measured_rows, &baseline_set)
        })
        .collect();
    for artifact in measured {
        if !baseline.iter().any(|b| b.experiment == artifact.experiment) {
            reports.push(DiffReport {
                experiment: artifact.experiment.clone(),
                source: "no committed baseline entry — the baseline file does not cover \
                         this experiment (re-bless to extend it)"
                    .to_string(),
                rows: vec![(
                    "<entire experiment>".to_string(),
                    crate::diff::RowStatus::Missing,
                )],
            });
        }
    }
    CheckOutcome { reports }
}

/// The full check: run the smoke suite, load the committed baseline at
/// `baseline_path`, and classify. With `bless`, the baseline file is
/// (re)written from the current run instead and the check trivially passes.
pub fn run_check(
    baseline_path: &Path,
    preset: TolerancePreset,
    bless: bool,
) -> Result<CheckOutcome, ScoopError> {
    check_measured(run_smoke_suite()?, baseline_path, preset, bless)
}

/// Same gate over the chaos suite and its own baseline file.
pub fn run_chaos_check(
    baseline_path: &Path,
    preset: TolerancePreset,
    bless: bool,
) -> Result<CheckOutcome, ScoopError> {
    run_chaos_check_with_history(baseline_path, preset, bless, None)
}

/// The chaos gate with an optional perf-history side effect: before the
/// provenance is masked for the baseline comparison, one `scale:"chaos"`
/// record (real wall clock, events/sec, peak RSS) is appended to `history`.
/// The scale override keeps the comparability filter honest — chaos wall
/// clocks are only ever gated against earlier chaos records, never against
/// the classic quick suite, store ingests, or serve benches.
pub fn run_chaos_check_with_history(
    baseline_path: &Path,
    preset: TolerancePreset,
    bless: bool,
    history: Option<&Path>,
) -> Result<CheckOutcome, ScoopError> {
    let mut artifacts = run_suite(&SuiteOptions::chaos_smoke(), |_| ())?;
    if let Some(path) = history {
        if let Some(mut record) = crate::history::HistoryRecord::from_artifacts(&artifacts) {
            record.scale = "chaos".to_string();
            record.append_to(path)?;
        }
    }
    for artifact in &mut artifacts {
        artifact.provenance = Provenance::masked();
    }
    check_measured(artifacts, baseline_path, preset, bless)
}

/// Same gate over the workloads suite and its own baseline file.
pub fn run_workloads_check(
    baseline_path: &Path,
    preset: TolerancePreset,
    bless: bool,
) -> Result<CheckOutcome, ScoopError> {
    run_workloads_check_with_history(baseline_path, preset, bless, None)
}

/// The workloads gate with the same optional perf-history side effect as
/// [`run_chaos_check_with_history`], stamped `scale:"workload"` so workload
/// wall clocks only ever gate against earlier workload records.
pub fn run_workloads_check_with_history(
    baseline_path: &Path,
    preset: TolerancePreset,
    bless: bool,
    history: Option<&Path>,
) -> Result<CheckOutcome, ScoopError> {
    let mut artifacts = run_suite(&SuiteOptions::workloads_smoke(), |_| ())?;
    if let Some(path) = history {
        if let Some(mut record) = crate::history::HistoryRecord::from_artifacts(&artifacts) {
            record.scale = "workload".to_string();
            record.append_to(path)?;
        }
    }
    for artifact in &mut artifacts {
        artifact.provenance = Provenance::masked();
    }
    check_measured(artifacts, baseline_path, preset, bless)
}

fn check_measured(
    measured: Vec<Artifact>,
    baseline_path: &Path,
    preset: TolerancePreset,
    bless: bool,
) -> Result<CheckOutcome, ScoopError> {
    if bless {
        if let Some(parent) = baseline_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ScoopError::Artifact(format!("{}: {e}", parent.display())))?;
        }
        std::fs::write(baseline_path, baseline_file_content(&measured)?)
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", baseline_path.display())))?;
        return Ok(compare_to_baseline(&measured, &measured, preset));
    }
    let baseline = load_baseline(baseline_path)?;
    Ok(compare_to_baseline(&measured, &baseline, preset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::RowStatus;
    use crate::rows::RowSet;

    #[test]
    fn smoke_run_matches_itself_at_every_preset() {
        let artifacts = run_smoke_suite().unwrap();
        for preset in [
            TolerancePreset::Strict,
            TolerancePreset::Default,
            TolerancePreset::Loose,
        ] {
            let outcome = compare_to_baseline(&artifacts, &artifacts, preset);
            assert!(!outcome.failed(), "{}", outcome.render_text());
        }
    }

    #[test]
    fn perturbed_baseline_fails_the_check() {
        let measured = run_smoke_suite().unwrap();
        let mut baseline = measured.clone();
        // Perturb one Figure 5 total by 10 % — far beyond the default 2 %.
        let fig5 = baseline
            .iter_mut()
            .find(|a| a.experiment == "fig5")
            .expect("smoke suite contains fig5");
        match &mut fig5.rows {
            RowSet::Fig5(rows) => {
                rows[0].total_messages = rows[0].total_messages * 11 / 10 + 1;
            }
            other => panic!("fig5 artifact carries {other:?}"),
        }
        let outcome = compare_to_baseline(&measured, &baseline, TolerancePreset::Default);
        assert!(outcome.failed());
        let report = outcome
            .reports
            .iter()
            .find(|r| r.experiment == "fig5")
            .unwrap();
        assert!(
            report
                .rows
                .iter()
                .any(|(_, s)| matches!(s, RowStatus::Drift(_))),
            "{}",
            report.render_text()
        );
        // The same perturbation is inside the loose 10 %+ tolerance… just.
        let text = outcome.render_text();
        assert!(text.contains("CHECK FAILED"), "{text}");
    }

    #[test]
    fn empty_or_truncated_baseline_fails_the_check() {
        let measured = run_smoke_suite().unwrap();
        // Entirely empty baseline: the gate must not silently pass.
        let outcome = compare_to_baseline(&measured, &[], TolerancePreset::Default);
        assert!(outcome.failed());
        assert_eq!(outcome.reports.len(), measured.len());
        // Baseline missing one experiment: that experiment still fails.
        let mut truncated = measured.clone();
        truncated.retain(|a| a.experiment != "ablations");
        let outcome = compare_to_baseline(&measured, &truncated, TolerancePreset::Default);
        assert!(outcome.failed());
        let report = outcome
            .reports
            .iter()
            .find(|r| r.experiment == "ablations")
            .unwrap();
        assert!(report.has_failures());
        assert!(report.source.contains("no committed baseline"));
    }

    #[test]
    fn missing_experiment_fails_the_check() {
        let measured = run_smoke_suite().unwrap();
        let mut short = measured.clone();
        short.retain(|a| a.experiment != "fig4");
        let outcome = compare_to_baseline(&short, &measured, TolerancePreset::Loose);
        assert!(outcome.failed());
        let fig4 = outcome
            .reports
            .iter()
            .find(|r| r.experiment == "fig4")
            .unwrap();
        assert!(fig4
            .rows
            .iter()
            .all(|(_, s)| matches!(s, RowStatus::Missing)));
    }

    #[test]
    fn chaos_gate_appends_a_chaos_scale_history_record() {
        let tmp = std::env::temp_dir().join(format!("scoop-chaos-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();
        let baseline = tmp.join("chaos-baseline.json");
        let history = tmp.join("history.jsonl");

        // Bless against a fresh baseline so the gate passes regardless of
        // CWD, while the unmasked run feeds the history side effect.
        let outcome =
            run_chaos_check_with_history(&baseline, TolerancePreset::Default, true, Some(&history))
                .unwrap();
        assert!(!outcome.failed(), "{}", outcome.render_text());

        let records = crate::history::load_history(&history).unwrap();
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.scale, "chaos");
        assert_eq!(record.experiments.len(), 3, "one timing per scenario");
        assert!(
            record.total_wall_clock_secs > 0.0,
            "the record keeps real provenance even though the gate compares masked"
        );
        assert!(record.total_events_processed > 0);
        // The blessed baseline itself stays masked and machine-independent.
        let blessed = load_baseline(&baseline).unwrap();
        assert!(blessed
            .iter()
            .all(|a| a.provenance.wall_clock_secs == 0.0 && a.provenance.git_rev.is_empty()));

        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn workloads_gate_appends_a_workload_scale_history_record() {
        let tmp = std::env::temp_dir().join(format!("scoop-wl-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();
        let baseline = tmp.join("workloads-baseline.json");
        let history = tmp.join("history.jsonl");

        let outcome = run_workloads_check_with_history(
            &baseline,
            TolerancePreset::Default,
            true,
            Some(&history),
        )
        .unwrap();
        assert!(!outcome.failed(), "{}", outcome.render_text());

        let records = crate::history::load_history(&history).unwrap();
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.scale, "workload");
        assert_eq!(record.experiments.len(), 2, "one timing per grid");
        assert!(record.total_events_processed > 0);
        // The blessed baseline itself stays masked and machine-independent.
        let blessed = load_baseline(&baseline).unwrap();
        assert_eq!(blessed.len(), 2);
        assert!(blessed
            .iter()
            .all(|a| a.provenance.wall_clock_secs == 0.0 && a.provenance.git_rev.is_empty()));

        let _ = std::fs::remove_dir_all(&tmp);
    }
}
