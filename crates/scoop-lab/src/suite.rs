//! The experiment suite: every figure/table the lab can run, with one stable
//! identifier per experiment.
//!
//! [`ExperimentId`] is the single enumeration the CLI, the artifact store,
//! the baselines, and the bench harness all key on. [`run_experiment`] maps
//! an id to the corresponding `scoop_sim::experiments` function (all grids
//! execute on the parallel [`SweepRunner`](scoop_sim::SweepRunner) inside),
//! and [`run_suite`] runs a list of experiments, recording per-experiment
//! wall-clock into [`Artifact`]s.

use crate::artifact::{Artifact, Provenance};
use crate::rows::RowSet;
use scoop_sim::experiments::{self, fig4, fig5};
use scoop_types::{DataSourceKind, ExperimentConfig, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Which configuration scale a suite runs at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's Section 6 parameters: 62 nodes, 40 minutes.
    Paper,
    /// The scaled-down sanity configuration: 16 nodes, 12 minutes.
    Quick,
}

impl Scale {
    /// The base configuration for this scale.
    pub fn base_config(self) -> ExperimentConfig {
        match self {
            Scale::Paper => experiments::paper_base(),
            Scale::Quick => experiments::quick_base(),
        }
    }

    /// Lowercase name used in artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One experiment of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Figure 3 (left): the testbed comparison bars.
    Fig3Left,
    /// Figure 3 (middle): all policies over the REAL trace.
    Fig3Middle,
    /// Figure 3 (right): SCOOP over every data source.
    Fig3Right,
    /// Figure 4: cost vs. fraction of nodes queried.
    Fig4,
    /// Figure 5: cost vs. query interval.
    Fig5,
    /// The ablation suite over the REAL trace.
    Ablations,
    /// The sample-interval sweep.
    SampleInterval,
    /// The reliability measurements.
    Reliability,
    /// The root-skew analysis.
    RootSkew,
    /// The scaling study.
    Scaling,
    /// The link-calibration ablation over the LinkSpec loss knobs.
    LinkCalibration,
    /// The 256-node grid scaling scenario (exercises the raised MAX_NODES).
    Scaling256,
    /// The 4096-node grid stress scenario under the HASH policy.
    Scaling4096,
    /// The 32k-node grid stress scenario: 32,767 sensors plus the
    /// basestation fill the raised `MAX_NODES` cap exactly.
    Scaling32768,
    /// Chaos: per-phase reliability across a seeded network partition.
    ChaosPartition,
    /// Chaos: a promoted second sink crashes; the root takes over.
    ChaosSinkFailover,
    /// Chaos: mass churn (25 % killed, 25 % fresh joiners).
    ChaosChurn,
    /// Range workloads: cost vs. fixed query width per policy.
    RangeWidth,
    /// Aggregate workloads: cost per aggregate operator per policy.
    AggregateOps,
}

impl ExperimentId {
    /// Every experiment, in the order `run`/`report` process them.
    pub const ALL: [ExperimentId; 19] = [
        ExperimentId::Fig3Left,
        ExperimentId::Fig3Middle,
        ExperimentId::Fig3Right,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Ablations,
        ExperimentId::SampleInterval,
        ExperimentId::Reliability,
        ExperimentId::LinkCalibration,
        ExperimentId::RootSkew,
        ExperimentId::Scaling,
        ExperimentId::Scaling256,
        ExperimentId::Scaling4096,
        ExperimentId::Scaling32768,
        ExperimentId::ChaosPartition,
        ExperimentId::ChaosSinkFailover,
        ExperimentId::ChaosChurn,
        ExperimentId::RangeWidth,
        ExperimentId::AggregateOps,
    ];

    /// The workload-kind family (range and aggregate queries), in suite order.
    pub const WORKLOADS: [ExperimentId; 2] = [ExperimentId::RangeWidth, ExperimentId::AggregateOps];

    /// The chaos scenario family, in suite order.
    pub const CHAOS: [ExperimentId; 3] = [
        ExperimentId::ChaosPartition,
        ExperimentId::ChaosSinkFailover,
        ExperimentId::ChaosChurn,
    ];

    /// Stable slug used for CLI selection and artifact file names.
    pub fn slug(self) -> &'static str {
        match self {
            ExperimentId::Fig3Left => "fig3-left",
            ExperimentId::Fig3Middle => "fig3-middle",
            ExperimentId::Fig3Right => "fig3-right",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Ablations => "ablations",
            ExperimentId::SampleInterval => "sample-interval",
            ExperimentId::Reliability => "reliability",
            ExperimentId::RootSkew => "root-skew",
            ExperimentId::Scaling => "scaling",
            ExperimentId::LinkCalibration => "link-calibration",
            ExperimentId::Scaling256 => "scaling-256",
            ExperimentId::Scaling4096 => "scaling-4096",
            ExperimentId::Scaling32768 => "scaling-32768",
            ExperimentId::ChaosPartition => "chaos-partition",
            ExperimentId::ChaosSinkFailover => "chaos-failover",
            ExperimentId::ChaosChurn => "chaos-churn",
            ExperimentId::RangeWidth => "range-width",
            ExperimentId::AggregateOps => "aggregate-ops",
        }
    }

    /// Human-readable title used in tables and EXPERIMENTS.md headings.
    pub fn title(self) -> &'static str {
        match self {
            ExperimentId::Fig3Left => "Figure 3 (left): testbed comparison",
            ExperimentId::Fig3Middle => "Figure 3 (middle): policies on the REAL trace",
            ExperimentId::Fig3Right => "Figure 3 (right): Scoop across data sources",
            ExperimentId::Fig4 => "Figure 4: cost vs. % of nodes queried",
            ExperimentId::Fig5 => "Figure 5: cost vs. query interval",
            ExperimentId::Ablations => "Ablations (SCOOP on the REAL trace)",
            ExperimentId::SampleInterval => "Sample-interval sweep",
            ExperimentId::Reliability => "Reliability",
            ExperimentId::RootSkew => "Root-node skew",
            ExperimentId::Scaling => "Scaling study",
            ExperimentId::LinkCalibration => "Link calibration (LinkSpec loss knobs)",
            ExperimentId::Scaling256 => "Scaling to 256 nodes (grid topology)",
            ExperimentId::Scaling4096 => "Scaling to 4096 nodes (grid, HASH policy)",
            ExperimentId::Scaling32768 => "Scaling to 32k nodes (grid, HASH policy)",
            ExperimentId::ChaosPartition => "Chaos: network partition (50 % isolated, healed)",
            ExperimentId::ChaosSinkFailover => "Chaos: basestation failover (2-sink federation)",
            ExperimentId::ChaosChurn => "Chaos: mass churn (25 % killed, 25 % joined)",
            ExperimentId::RangeWidth => "Range workloads: cost vs. fixed query width",
            ExperimentId::AggregateOps => "Aggregate workloads: cost per operator",
        }
    }

    /// Parses a slug (as typed on the CLI).
    pub fn from_slug(slug: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.into_iter().find(|id| id.slug() == slug)
    }

    /// The row key the normalized `total_vs_ref` metric divides by, if this
    /// experiment's figure argues in ratios (see [`RowSet::measured_rows`]).
    ///
    /// Figure 3 panels normalize to the panel's BASE bar (left/middle) or the
    /// REAL bar (right); ablations normalize to the unmodified baseline
    /// variant.
    pub fn reference_key(self) -> Option<&'static str> {
        match self {
            ExperimentId::Fig3Left => Some("base/gaussian"),
            ExperimentId::Fig3Middle => Some("base/real"),
            ExperimentId::Fig3Right => Some("scoop/real"),
            ExperimentId::Ablations => Some("baseline"),
            _ => None,
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Which sweep points an experiment runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointSet {
    /// The full grids used for figure regeneration.
    Full,
    /// Reduced grids for the regression smoke suite (`scoop-lab check`).
    Smoke,
}

/// Options for one suite invocation.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Configuration scale.
    pub scale: Scale,
    /// Trials averaged per scenario.
    pub trials: usize,
    /// Base seed (trial `t` runs with `seed + t`).
    pub seed: u64,
    /// Full or smoke sweep grids.
    pub points: PointSet,
    /// Which experiments to run, in order.
    pub experiments: Vec<ExperimentId>,
    /// String-keyed axis overrides (`("topology", "grid")` style; see
    /// [`scoop_types::AXES`]) applied to the base spec of every experiment,
    /// in order, after scale and seed.
    pub overrides: Vec<(String, String)>,
}

impl SuiteOptions {
    /// The full paper-scale suite: every experiment, 3 trials.
    pub fn paper_full() -> Self {
        SuiteOptions {
            scale: Scale::Paper,
            trials: 3,
            seed: 1,
            points: PointSet::Full,
            experiments: ExperimentId::ALL.to_vec(),
            overrides: Vec::new(),
        }
    }

    /// The quick smoke suite backing `scoop-lab check`: deterministic,
    /// single-trial, reduced grids — small enough for a CI gate. Includes
    /// the 256-node grid scenario so the raised `MAX_NODES` cap stays
    /// exercised on every check.
    pub fn quick_smoke() -> Self {
        SuiteOptions {
            scale: Scale::Quick,
            trials: 1,
            seed: 1,
            points: PointSet::Smoke,
            experiments: vec![
                ExperimentId::Fig3Middle,
                ExperimentId::Fig4,
                ExperimentId::Fig5,
                ExperimentId::Ablations,
                ExperimentId::Reliability,
                ExperimentId::LinkCalibration,
                ExperimentId::Scaling256,
            ],
            overrides: Vec::new(),
        }
    }

    /// The chaos gate suite: the three chaos scenarios at quick scale,
    /// deterministic and single-trial, compared against their own committed
    /// baseline (`crates/scoop-lab/baselines/chaos.json`) so the classic
    /// smoke baseline stays untouched by fault-model work.
    pub fn chaos_smoke() -> Self {
        SuiteOptions {
            scale: Scale::Quick,
            trials: 1,
            seed: 1,
            points: PointSet::Smoke,
            experiments: ExperimentId::CHAOS.to_vec(),
            overrides: Vec::new(),
        }
    }

    /// The workloads gate suite: the range and aggregate workload grids at
    /// quick scale, deterministic and single-trial, compared against their
    /// own committed baseline (`crates/scoop-lab/baselines/workloads.json`)
    /// so the classic smoke baseline stays untouched by workload work.
    pub fn workloads_smoke() -> Self {
        SuiteOptions {
            scale: Scale::Quick,
            trials: 1,
            seed: 1,
            points: PointSet::Smoke,
            experiments: ExperimentId::WORKLOADS.to_vec(),
            overrides: Vec::new(),
        }
    }

    /// The base spec with this suite's seed and axis overrides applied, then
    /// validated. Fails on an unknown axis key, a malformed value (the error
    /// lists the valid axes), or a resolved spec that is out of range — so
    /// `--set` mistakes surface before any simulation runs.
    pub fn base_config(&self) -> Result<ExperimentConfig, ScoopError> {
        let mut cfg = self.scale.base_config();
        cfg.seed = self.seed;
        cfg.apply_axes(self.overrides.iter().map(|(k, v)| (k.as_str(), v.as_str())))?;
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Runs one experiment and returns its rows.
pub fn run_experiment(
    id: ExperimentId,
    base: &ExperimentConfig,
    trials: usize,
    points: PointSet,
) -> Result<RowSet, ScoopError> {
    let smoke = points == PointSet::Smoke;
    match id {
        ExperimentId::Fig3Left => experiments::fig3_left(base, trials).map(RowSet::Fig3),
        ExperimentId::Fig3Middle => experiments::fig3_middle(base, trials).map(RowSet::Fig3),
        ExperimentId::Fig3Right => experiments::fig3_right(base, trials).map(RowSet::Fig3),
        ExperimentId::Fig4 => {
            let widths = if smoke {
                vec![0.05, 0.5]
            } else {
                fig4::default_width_fracs()
            };
            experiments::fig4_selectivity(base, &widths, trials).map(RowSet::Fig4)
        }
        ExperimentId::Fig5 => {
            let intervals = if smoke {
                vec![5, 45]
            } else {
                fig5::default_intervals()
            };
            experiments::fig5_query_interval(base, &intervals, trials).map(RowSet::Fig5)
        }
        ExperimentId::Ablations => {
            experiments::ablation_rows(base, DataSourceKind::Real, trials).map(RowSet::Ablations)
        }
        ExperimentId::SampleInterval => {
            let sources = [
                DataSourceKind::Real,
                DataSourceKind::Random,
                DataSourceKind::Unique,
            ];
            let intervals: &[u64] = if smoke { &[15, 60] } else { &[15, 30, 60, 120] };
            experiments::sample_interval_sweep(base, &sources, intervals, trials)
                .map(RowSet::SampleInterval)
        }
        ExperimentId::Reliability => {
            let policies = [
                StoragePolicy::Scoop,
                StoragePolicy::Local,
                StoragePolicy::Base,
            ];
            experiments::reliability(base, &policies, trials).map(RowSet::Reliability)
        }
        ExperimentId::RootSkew => experiments::root_skew(base, trials).map(RowSet::RootSkew),
        ExperimentId::Scaling => {
            let sizes: Vec<usize> = if smoke {
                vec![8, 16]
            } else if base.num_nodes <= 16 {
                vec![8, 16, 25]
            } else {
                vec![25, 50, 62, 100]
            };
            let sources = [DataSourceKind::Real, DataSourceKind::Random];
            experiments::scaling(base, &sizes, &sources, trials).map(RowSet::Scaling)
        }
        ExperimentId::LinkCalibration => {
            let grid = if smoke {
                experiments::link_calibration::smoke_grid()
            } else {
                experiments::link_calibration::default_grid()
            };
            experiments::link_calibration(base, &grid, trials).map(RowSet::LinkCalibration)
        }
        ExperimentId::Scaling256 => {
            // The large-scale point: a regular grid (the office-floor
            // heuristics were calibrated for ≤ ~100 nodes) at sizes beyond
            // the paper's — including 256, past the old 128-node cap.
            let mut grid_base = base.clone();
            grid_base.topology = scoop_types::TopologySpec {
                kind: scoop_types::TopologyKind::Grid,
                ..grid_base.topology
            };
            let sizes: Vec<usize> = if smoke {
                vec![64, 256]
            } else {
                vec![64, 128, 256]
            };
            let sources = [DataSourceKind::Gaussian];
            experiments::scaling(&grid_base, &sizes, &sources, trials).map(RowSet::Scaling)
        }
        ExperimentId::Scaling4096 | ExperimentId::Scaling32768 => {
            // The engine-scalability stress points. HASH keeps these runs
            // feasible: its storage index is static (no summaries, no remap,
            // no dense cost table at the basestation), so memory and event
            // volume grow with the network, not with its square. Durations
            // are trimmed so the event count stays proportional to node
            // count — the interesting figures are peak RSS and events/s in
            // the provenance block, not the message totals.
            let mut grid_base = base.clone();
            grid_base.topology = scoop_types::TopologySpec {
                kind: scoop_types::TopologyKind::Grid,
                ..grid_base.topology
            };
            let sizes: Vec<usize> = match (id, points) {
                (ExperimentId::Scaling4096, PointSet::Smoke) => vec![512],
                // 512 — the pre-PR-6 MAX_NODES cap — rides along so the
                // committed artifact spans old ceiling → new stress point.
                (ExperimentId::Scaling4096, PointSet::Full) => vec![512, 1024, 4096],
                (_, PointSet::Smoke) => vec![2048],
                // 32,767 sensors + the basestation = 32,768 nodes, the
                // raised MAX_NODES cap exactly.
                (_, PointSet::Full) => vec![32_767],
            };
            if id == ExperimentId::Scaling32768 {
                grid_base.warmup = scoop_types::SimDuration::from_secs(90);
                grid_base.duration = scoop_types::SimDuration::from_secs(210);
            } else {
                grid_base.warmup = scoop_types::SimDuration::from_secs(120);
                grid_base.duration = scoop_types::SimDuration::from_secs(360);
            }
            let sources = [DataSourceKind::Gaussian];
            experiments::scaling_with_policy(
                &grid_base,
                &sizes,
                &sources,
                StoragePolicy::Hash,
                trials,
            )
            .map(RowSet::Scaling)
        }
        ExperimentId::ChaosPartition => {
            experiments::chaos(base, experiments::ChaosScenario::Partition, trials)
                .map(RowSet::Chaos)
        }
        ExperimentId::ChaosSinkFailover => {
            experiments::chaos(base, experiments::ChaosScenario::SinkFailover, trials)
                .map(RowSet::Chaos)
        }
        ExperimentId::ChaosChurn => {
            experiments::chaos(base, experiments::ChaosScenario::Churn, trials).map(RowSet::Chaos)
        }
        ExperimentId::RangeWidth => {
            let widths = if smoke {
                vec![0.05, 0.5]
            } else {
                experiments::workloads::default_range_widths()
            };
            experiments::range_width(base, &widths, trials).map(RowSet::RangeWidth)
        }
        ExperimentId::AggregateOps => {
            let ops = if smoke {
                vec![
                    scoop_types::AggregateOp::Min,
                    scoop_types::AggregateOp::Quantile(0.5),
                ]
            } else {
                experiments::workloads::default_aggregate_ops()
            };
            experiments::aggregate_ops(base, &ops, trials).map(RowSet::Aggregate)
        }
    }
}

/// Runs every experiment in `options`, timing each, and wraps the results as
/// artifacts. `on_done` is called after each experiment (the CLI uses it for
/// progress output); pass `|_| ()` when silence is wanted.
pub fn run_suite(
    options: &SuiteOptions,
    mut on_done: impl FnMut(&Artifact),
) -> Result<Vec<Artifact>, ScoopError> {
    let base = options.base_config()?;
    let mut artifacts = Vec::with_capacity(options.experiments.len());
    for &id in &options.experiments {
        let events_before = scoop_sim::events_dispatched_total();
        let start = Instant::now();
        let rows = run_experiment(id, &base, options.trials, options.points)?;
        let wall_clock = start.elapsed().as_secs_f64();
        // Delta of the process-wide dispatch counter. Exact for a CLI run;
        // in a test binary running suites concurrently the deltas can bleed
        // into each other, which only perturbs this non-deterministic
        // provenance block — never the rows.
        let events = scoop_sim::events_dispatched_total() - events_before;
        let provenance = Provenance::capture(wall_clock, events);
        let artifact = Artifact::new(id, options, &base, rows, provenance);
        on_done(&artifact);
        artifacts.push(artifact);
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_slug(id.slug()), Some(id));
            assert!(seen.insert(id.slug()), "duplicate slug {}", id.slug());
        }
        assert_eq!(ExperimentId::from_slug("fig9"), None);
    }

    #[test]
    fn smoke_suite_runs_and_times_every_experiment() {
        let options = SuiteOptions::quick_smoke();
        let mut seen = Vec::new();
        let artifacts = run_suite(&options, |a| seen.push(a.experiment.clone())).unwrap();
        assert_eq!(artifacts.len(), options.experiments.len());
        assert_eq!(seen.len(), artifacts.len());
        for artifact in &artifacts {
            assert!(
                !artifact.rows.is_empty(),
                "{} is empty",
                artifact.experiment
            );
            assert!(artifact.provenance.wall_clock_secs >= 0.0);
            assert_eq!(artifact.scale, "quick");
        }
    }

    #[test]
    fn base_config_validates_the_resolved_spec() {
        // Parseable but out-of-range values fail at resolution time, before
        // any simulation runs (and before --show-spec prints a bogus spec).
        let mut options = SuiteOptions::quick_smoke();
        options
            .overrides
            .push(("link.loss_floor".to_string(), "1.5".to_string()));
        assert!(options.base_config().is_err());

        let mut options = SuiteOptions::quick_smoke();
        options
            .overrides
            .push(("nodes".to_string(), "100000".to_string()));
        assert!(options.base_config().is_err());
    }

    #[test]
    fn smoke_points_reduce_the_grids() {
        let base = Scale::Quick.base_config();
        let full = run_experiment(ExperimentId::Fig5, &base, 1, PointSet::Full).unwrap();
        let smoke = run_experiment(ExperimentId::Fig5, &base, 1, PointSet::Smoke).unwrap();
        assert!(smoke.len() < full.len());
    }
}
