//! The `scoop-lab` command-line interface.
//!
//! ```text
//! scoop-lab run    [--quick] [--trials=N] [--seed=N] [--results=DIR]
//!                  [--history=FILE] [--json] [experiment...]
//! scoop-lab report [--results=DIR] [--out=FILE]
//! scoop-lab diff   [--results=DIR]
//! scoop-lab check  [--tolerance NAME] [--bless] [--baseline=FILE]
//! scoop-lab calibrate [--smoke] [--trials=N] [--seed=N] [--out=FILE]
//! scoop-lab trace  [policy] [source] [nodes]
//! ```
//!
//! `run` executes experiments and persists one artifact per experiment under
//! the results directory; `report` regenerates `EXPERIMENTS.md` from those
//! artifacts; `diff` classifies the stored artifacts against the paper
//! baselines; `check` is the CI regression gate against the committed smoke
//! baseline; `trace` is the step-by-step diagnostic previously shipped as a
//! separate `scoop-sim` binary. [`run_cli`] is public so
//! `examples/reproduce.rs` can stay a thin wrapper over the same code path.

use crate::artifact::ArtifactStore;
use crate::baselines::{paper_baseline, TolerancePreset};
use crate::calibrate::{run_calibration, save_calibration, CalibrationOptions};
use crate::check::{
    run_chaos_check_with_history, run_check, run_workloads_check_with_history,
    DEFAULT_BASELINE_PATH, DEFAULT_CHAOS_BASELINE_PATH, DEFAULT_WORKLOADS_BASELINE_PATH,
};
use crate::diff::diff_rows;
use crate::history::HistoryRecord;
use crate::rows::RowSet;
use crate::suite::{run_suite, ExperimentId, PointSet, Scale, SuiteOptions};
use scoop_sim::MessageBreakdown;
use scoop_types::{DataSourceKind, ExperimentConfig, SimDuration, SimTime, StoragePolicy};
use std::path::PathBuf;

/// Default directory artifacts are written to / read from.
pub const DEFAULT_RESULTS_DIR: &str = "results";

/// Default path of the regenerated report.
pub const DEFAULT_EXPERIMENTS_MD: &str = "EXPERIMENTS.md";

const USAGE: &str =
    "usage: scoop-lab <run|report|diff|check|calibrate|history|store|trace> [options]
  run    [--quick] [--trials=N] [--seed=N] [--results=DIR] [--history=FILE] [--json]
         [--set key=value]... [--show-spec] [experiment...]
  report [--results=DIR] [--out=FILE]
  diff   [--results=DIR]
  check  [--tolerance NAME] [--bless] [--baseline=FILE] [--chaos|--workloads]
         [--history=FILE]
         (NAME: strict|default|loose; --chaos gates the chaos suite and
          --workloads the range/aggregate workload suite, each against its
          own baseline; with --history each appends one perf record at its
          scale, \"chaos\" or \"workload\")
  calibrate [--smoke] [--trials=N] [--seed=N] [--out=FILE] [--results=DIR]
  history [--file=FILE] [--max-regression=FRAC] [--gate]
  store  <ingest|query|stats> --db DIR [options]   (durable basestation store)
  trace  [scoop|local|base|hash] [real|unique|equal|random|gaussian] [nodes]
experiments: fig3-left fig3-middle fig3-right fig4 fig5 ablations sample-interval
             reliability link-calibration root-skew scaling scaling-256
             scaling-4096 scaling-32768 chaos-partition chaos-failover
             chaos-churn range-width aggregate-ops (default: all)
`--set` (repeatable) overrides one spec axis, e.g. --set topology=grid --set nodes=96
--set link.loss_floor=0.05; an unknown key lists the valid axes. `--show-spec`
prints the resolved base spec as JSON and exits without running. `calibrate`
grid-searches the LinkSpec loss knobs against the paper's reliability targets
and writes results/calibration.json (`--smoke`: tiny grid at quick scale).";

/// Splits `--flag=value` / `--flag value` / bare `--flag` options out of
/// `args`, rejecting anything not in the subcommand's allowlists (a typo'd
/// option must fail loudly, not silently fall back to a default). Returns
/// `(positional, flags, values)`.
#[allow(clippy::type_complexity)]
fn parse(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(Vec<String>, Vec<String>, Vec<(String, String)>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut values = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(rest) = arg.strip_prefix("--") {
            if let Some((name, value)) = rest.split_once('=') {
                if bool_flags.contains(&name) {
                    return Err(format!("--{name} does not take a value"));
                }
                if !value_flags.contains(&name) {
                    return Err(format!("unknown option `--{name}`"));
                }
                values.push((name.to_string(), value.to_string()));
            } else if value_flags.contains(&rest) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{rest} needs a value"))?;
                values.push((rest.to_string(), value.clone()));
            } else if bool_flags.contains(&rest) {
                flags.push(rest.to_string());
            } else {
                return Err(format!("unknown option `--{rest}`"));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags, values))
}

fn lookup<'a>(values: &'a [(String, String)], name: &str) -> Option<&'a str> {
    values
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Every occurrence of a repeatable `--flag`, in order. `--set` overrides
/// apply first-to-last, so later flags win on the same axis.
fn lookup_all<'a>(values: &'a [(String, String)], name: &str) -> Vec<&'a str> {
    values
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .collect()
}

/// Splits one `--set key=value` payload.
fn parse_set(payload: &str) -> Result<(String, String), String> {
    let (key, value) = payload
        .split_once('=')
        .ok_or_else(|| format!("--set needs key=value, got `{payload}`"))?;
    Ok((key.trim().to_string(), value.trim().to_string()))
}

/// Entry point shared by the binary and `examples/reproduce.rs`. Returns the
/// process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("scoop-lab: {message}");
            2
        }
    }
}

fn dispatch(args: &[String]) -> Result<i32, String> {
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "report" => cmd_report(rest),
        "diff" => cmd_diff(rest),
        "check" => cmd_check(rest),
        "calibrate" => cmd_calibrate(rest),
        "history" => cmd_history(rest),
        "store" => crate::store_cli::cmd_store(rest, parse),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn cmd_run(args: &[String]) -> Result<i32, String> {
    let (positional, flags, values) = parse(
        args,
        &["trials", "seed", "results", "history", "set"],
        &["quick", "json", "show-spec"],
    )?;
    let quick = flags.iter().any(|f| f == "quick");
    let json = flags.iter().any(|f| f == "json");
    let show_spec = flags.iter().any(|f| f == "show-spec");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let mut options = SuiteOptions {
        scale,
        trials: if quick { 1 } else { 3 },
        seed: 1,
        points: PointSet::Full,
        experiments: ExperimentId::ALL.to_vec(),
        overrides: Vec::new(),
    };
    if let Some(trials) = lookup(&values, "trials") {
        options.trials = trials
            .parse()
            .map_err(|_| format!("bad --trials value `{trials}`"))?;
    }
    if let Some(seed) = lookup(&values, "seed") {
        options.seed = seed
            .parse()
            .map_err(|_| format!("bad --seed value `{seed}`"))?;
    }
    for payload in lookup_all(&values, "set") {
        options.overrides.push(parse_set(payload)?);
    }
    if !positional.is_empty() && positional.iter().all(|p| p != "all") {
        options.experiments = positional
            .iter()
            .map(|slug| {
                ExperimentId::from_slug(slug).ok_or_else(|| format!("unknown experiment `{slug}`"))
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    // Resolve the base spec up front: an unknown `--set` axis or a malformed
    // value fails here, before any simulation runs, with the axis listing.
    let resolved = options.base_config().map_err(|e| e.to_string())?;
    if show_spec {
        let spec_json = serde_json::to_string_pretty(&resolved)
            .map_err(|e| format!("spec serialization: {e}"))?;
        println!("{spec_json}");
        return Ok(0);
    }

    let store = ArtifactStore::new(PathBuf::from(
        lookup(&values, "results").unwrap_or(DEFAULT_RESULTS_DIR),
    ));
    let artifacts = run_suite(&options, |artifact| {
        if !json {
            let title = artifact
                .experiment_id()
                .map(|id| id.title())
                .unwrap_or("experiment");
            println!("{}", artifact.rows.table(title));
            println!(
                "({} finished in {:.2} s — {} events, {:.0} events/s)\n",
                artifact.experiment,
                artifact.provenance.wall_clock_secs,
                artifact.provenance.events_processed,
                artifact.provenance.events_per_sec
            );
        }
    })
    .map_err(|e| e.to_string())?;

    if json {
        // The historical `reproduce --json` format: one bare JSON array per
        // experiment. A serialization failure fails the whole command.
        for artifact in &artifacts {
            println!("{}", artifact.rows.rows_json().map_err(|e| e.to_string())?);
        }
    }
    for artifact in &artifacts {
        store.save(artifact).map_err(|e| e.to_string())?;
    }
    if !json {
        println!(
            "wrote {} artifact(s) to {}",
            artifacts.len(),
            store.root().display()
        );
    }
    if let Some(history) = lookup(&values, "history") {
        if let Some(record) = HistoryRecord::from_artifacts(&artifacts) {
            record
                .append_to(&PathBuf::from(history))
                .map_err(|e| e.to_string())?;
            if !json {
                println!("appended run record to {history}");
            }
        }
    }
    Ok(0)
}

fn cmd_report(args: &[String]) -> Result<i32, String> {
    let (_, _, values) = parse(args, &["results", "out"], &[])?;
    let store = ArtifactStore::new(PathBuf::from(
        lookup(&values, "results").unwrap_or(DEFAULT_RESULTS_DIR),
    ));
    let artifacts = store
        .load_present(&ExperimentId::ALL)
        .map_err(|e| e.to_string())?;
    // The calibration artifact is optional (a store may predate it), but a
    // present-and-unreadable one is an error, not a silently missing section.
    let calibration_path = store.root().join(crate::calibrate::CALIBRATION_FILE);
    let calibration = if calibration_path.exists() {
        Some(crate::calibrate::load_calibration(&calibration_path).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let markdown = crate::render::render_experiments_md_with(&artifacts, calibration.as_ref())
        .map_err(|e| e.to_string())?;
    let out = lookup(&values, "out").unwrap_or(DEFAULT_EXPERIMENTS_MD);
    std::fs::write(out, markdown).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "regenerated {out} from {} artifact(s) in {}",
        artifacts.len(),
        store.root().display()
    );
    Ok(0)
}

fn cmd_diff(args: &[String]) -> Result<i32, String> {
    let (_, _, values) = parse(args, &["results"], &[])?;
    let store = ArtifactStore::new(PathBuf::from(
        lookup(&values, "results").unwrap_or(DEFAULT_RESULTS_DIR),
    ));
    let artifacts = store
        .load_present(&ExperimentId::ALL)
        .map_err(|e| e.to_string())?;
    if artifacts.is_empty() {
        return Err("no artifacts found; run `scoop-lab run` first".into());
    }
    let mut compared = 0;
    for artifact in &artifacts {
        let Some(id) = artifact.experiment_id() else {
            continue;
        };
        let Some(baseline) = paper_baseline(id) else {
            continue;
        };
        let measured = artifact.rows.measured_rows(id.reference_key());
        let report = diff_rows(&measured, &baseline);
        print!("{}", report.render_text());
        compared += 1;
    }
    println!("compared {compared} experiment(s) against the paper baselines");
    Ok(0)
}

fn cmd_check(args: &[String]) -> Result<i32, String> {
    let (positional, flags, values) = parse(
        args,
        &["tolerance", "baseline", "history"],
        &["bless", "chaos", "workloads"],
    )?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let preset_name = lookup(&values, "tolerance").unwrap_or("default");
    let preset = TolerancePreset::from_name(preset_name)
        .ok_or_else(|| format!("unknown tolerance `{preset_name}` (strict|default|loose)"))?;
    let bless = flags.iter().any(|f| f == "bless");
    let chaos = flags.iter().any(|f| f == "chaos");
    let workloads = flags.iter().any(|f| f == "workloads");
    if chaos && workloads {
        return Err("--chaos and --workloads are mutually exclusive".to_string());
    }
    let history = lookup(&values, "history").map(PathBuf::from);
    if history.is_some() && !chaos && !workloads {
        return Err(
            "--history only applies to `check --chaos` or `check --workloads` \
                    (the classic smoke suite's record is appended by `run --history`)"
                .to_string(),
        );
    }
    let default_path = if chaos {
        DEFAULT_CHAOS_BASELINE_PATH
    } else if workloads {
        DEFAULT_WORKLOADS_BASELINE_PATH
    } else {
        DEFAULT_BASELINE_PATH
    };
    let baseline_path = PathBuf::from(lookup(&values, "baseline").unwrap_or(default_path));
    let outcome = if chaos {
        run_chaos_check_with_history(&baseline_path, preset, bless, history.as_deref())
    } else if workloads {
        run_workloads_check_with_history(&baseline_path, preset, bless, history.as_deref())
    } else {
        run_check(&baseline_path, preset, bless)
    }
    .map_err(|e| e.to_string())?;
    print!("{}", outcome.render_text());
    if bless {
        println!("blessed: wrote {}", baseline_path.display());
    }
    Ok(if outcome.failed() { 1 } else { 0 })
}

/// The link-model calibration grid search. Writes the schema-versioned
/// calibration artifact (default `results/calibration.json`; `--out`
/// overrides the full path, `--results` just the directory) and prints the
/// scored grid plus whether the shipped `LinkSpec::default()` matches the
/// measured argmin. `--smoke` runs the tiny grid at quick scale — the CI
/// form that exercises the calibrate path per commit.
fn cmd_calibrate(args: &[String]) -> Result<i32, String> {
    let (positional, flags, values) =
        parse(args, &["trials", "seed", "out", "results"], &["smoke"])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let smoke = flags.iter().any(|f| f == "smoke");
    let mut options = if smoke {
        CalibrationOptions::smoke()
    } else {
        CalibrationOptions::paper_full()
    };
    if let Some(trials) = lookup(&values, "trials") {
        options.trials = trials
            .parse()
            .ok()
            .filter(|&t: &usize| t >= 1)
            .ok_or_else(|| format!("bad --trials value `{trials}`"))?;
    }
    if let Some(seed) = lookup(&values, "seed") {
        options.seed = seed
            .parse()
            .map_err(|_| format!("bad --seed value `{seed}`"))?;
    }
    let out = match lookup(&values, "out") {
        Some(path) => PathBuf::from(path),
        None => PathBuf::from(lookup(&values, "results").unwrap_or(DEFAULT_RESULTS_DIR))
            .join(crate::calibrate::CALIBRATION_FILE),
    };
    let artifact = run_calibration(&options).map_err(|e| e.to_string())?;
    print!("{}", artifact.render_text());
    save_calibration(&out, &artifact).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} grid points in {:.2} s)",
        out.display(),
        artifact.rows.len(),
        artifact.provenance.wall_clock_secs
    );
    Ok(0)
}

/// The perf-trajectory reader behind the CI throughput gate: prints the last
/// `BENCH_history.jsonl` record (per-experiment wall clock and events/sec)
/// and its wall-clock delta against the most recent comparable record. With
/// `--gate`, a regression beyond `--max-regression` (default 0.25 = +25 %)
/// exits non-zero.
fn cmd_history(args: &[String]) -> Result<i32, String> {
    let (positional, flags, values) = parse(args, &["file", "max-regression"], &["gate"])?;
    if let Some(extra) = positional.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let path = PathBuf::from(lookup(&values, "file").unwrap_or("BENCH_history.jsonl"));
    let max_regression: f64 = match lookup(&values, "max-regression") {
        None => 0.25,
        Some(raw) => raw
            .parse()
            .ok()
            .filter(|v: &f64| *v >= 0.0)
            .ok_or_else(|| format!("bad --max-regression value `{raw}`"))?,
    };
    let gate = flags.iter().any(|f| f == "gate");
    let records = crate::history::load_history(&path).map_err(|e| e.to_string())?;
    let Some(delta) = crate::history::HistoryDelta::from_records(&records) else {
        return Err(format!("{}: no records", path.display()));
    };
    print!("{}", delta.render_text(max_regression));
    if gate && delta.regressed(max_regression) {
        println!(
            "HISTORY GATE FAILED: wall clock regressed more than {:.0} % \
             vs the previous comparable record",
            max_regression * 100.0
        );
        return Ok(1);
    }
    Ok(0)
}

/// The step-by-step diagnostic: runs one experiment in 5-second simulated
/// steps, printing cumulative per-kind transmission counters, and finishes
/// with the standard Figure 3-style breakdown table.
fn cmd_trace(args: &[String]) -> Result<i32, String> {
    let (positional, _, _) = parse(args, &[], &[])?;
    let mut cfg = ExperimentConfig::small_test();
    cfg.policy.kind = match positional.first().map(String::as_str) {
        Some("local") => StoragePolicy::Local,
        Some("base") => StoragePolicy::Base,
        Some("hash") => StoragePolicy::Hash,
        _ => StoragePolicy::Scoop,
    };
    cfg.workload.data_source = match positional.get(1).map(String::as_str) {
        Some("unique") => DataSourceKind::Unique,
        Some("equal") => DataSourceKind::Equal,
        Some("random") => DataSourceKind::Random,
        Some("gaussian") => DataSourceKind::Gaussian,
        _ => DataSourceKind::Real,
    };
    if let Some(n) = positional.get(2).and_then(|s| s.parse().ok()) {
        cfg.num_nodes = n;
    }

    let mut engine = scoop_sim::build_engine(&cfg).map_err(|e| e.to_string())?;
    println!(
        "policy={} source={} nodes={} duration={}",
        cfg.policy.kind, cfg.workload.data_source, cfg.num_nodes, cfg.duration
    );
    let start = std::time::Instant::now();
    let step = SimDuration::from_secs(5);
    let mut now = SimTime::ZERO;
    while now < SimTime::ZERO + cfg.duration {
        now += step;
        engine.run_until(now);
        let tx = engine.stats().total_tx();
        println!(
            "t={:>6}s wall={:>7.1}s events={:<9} pending={:<7} data={:<7} summary={:<6} mapping={:<6} query={:<6} reply={:<6} hb={:<6}",
            now.as_secs(),
            start.elapsed().as_secs_f64(),
            engine.events_processed(),
            engine.pending_events(),
            tx.data,
            tx.summary,
            tx.mapping,
            tx.query,
            tx.reply,
            tx.heartbeat
        );
    }
    // The final cumulative breakdown, through the shared report API.
    let breakdown = MessageBreakdown::from_stats(&engine.stats().total_tx());
    let rows = RowSet::Fig3(vec![scoop_sim::experiments::Fig3Row {
        policy: cfg.policy.kind,
        source: cfg.workload.data_source,
        messages: breakdown,
        total: breakdown.total(),
    }]);
    println!("\n{}", rows.table("cumulative transmissions (whole run)"));
    println!("done in {:.1}s wall", start.elapsed().as_secs_f64());
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_handles_both_flag_styles() {
        let args = s(&["--tolerance", "loose", "--baseline=b.json", "--bless", "x"]);
        let (positional, flags, values) =
            parse(&args, &["tolerance", "baseline"], &["bless"]).unwrap();
        assert_eq!(positional, vec!["x"]);
        assert_eq!(flags, vec!["bless"]);
        assert_eq!(lookup(&values, "tolerance"), Some("loose"));
        assert_eq!(lookup(&values, "baseline"), Some("b.json"));
        assert!(parse(&s(&["--tolerance"]), &["tolerance"], &[]).is_err());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed_options() {
        // Typo'd option names must fail, not silently use a default.
        assert!(parse(&s(&["--result=x"]), &["results"], &[]).is_err());
        assert!(parse(&s(&["--blessed"]), &[], &["bless"]).is_err());
        // A bool flag given a value is an error, not a silent no-op.
        assert!(parse(&s(&["--bless=true"]), &[], &["bless"]).is_err());
        assert_eq!(run_cli(&s(&["run", "--result=/tmp/nope"])), 2);
        assert_eq!(run_cli(&s(&["check", "--bless=true"])), 2);
    }

    #[test]
    fn set_overrides_apply_and_unknown_axes_fail() {
        // --show-spec prints the resolved spec and runs nothing, so this is
        // cheap; a bad key must fail with exit code 2 before any simulation.
        assert_eq!(
            run_cli(&s(&[
                "run",
                "--show-spec",
                "--set",
                "topology=grid",
                "--set",
                "nodes=96",
                "--set",
                "link.loss_floor=0.05",
            ])),
            0
        );
        assert_eq!(run_cli(&s(&["run", "--show-spec", "--set", "warp=9"])), 2);
        assert_eq!(run_cli(&s(&["run", "--show-spec", "--set", "nodes"])), 2);
        assert_eq!(
            run_cli(&s(&["run", "--show-spec", "--set", "policy=ghost"])),
            2
        );
    }

    #[test]
    fn repeated_set_flags_apply_in_order() {
        let payloads = ["nodes=8", "nodes=96"];
        let values: Vec<(String, String)> = payloads
            .iter()
            .map(|p| ("set".to_string(), p.to_string()))
            .collect();
        let all = lookup_all(&values, "set");
        assert_eq!(all, payloads);
        let mut options = SuiteOptions::quick_smoke();
        for payload in all {
            options.overrides.push(parse_set(payload).unwrap());
        }
        assert_eq!(options.base_config().unwrap().num_nodes, 96);
        assert!(parse_set("nodes").is_err());
    }

    #[test]
    fn unknown_command_and_experiment_are_rejected() {
        assert_eq!(run_cli(&s(&["frobnicate"])), 2);
        assert_eq!(run_cli(&s(&["run", "fig9"])), 2);
        assert_eq!(run_cli(&s(&["check", "--tolerance", "yolo"])), 2);
        assert_eq!(run_cli(&s(&[])), 2);
    }

    #[test]
    fn run_report_diff_cycle_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!("scoop-lab-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let results = dir.join("results");
        let out = dir.join("EXPERIMENTS.md");
        let history = dir.join("history.jsonl");
        let code = run_cli(&s(&[
            "run",
            "--quick",
            "--trials=1",
            &format!("--results={}", results.display()),
            &format!("--history={}", history.display()),
            "fig3-middle",
            "fig5",
        ]));
        assert_eq!(code, 0);
        assert!(results.join("fig3-middle.json").exists());
        assert!(results.join("fig5.json").exists());
        assert!(history.exists());

        let code = run_cli(&s(&[
            "report",
            &format!("--results={}", results.display()),
            &format!("--out={}", out.display()),
        ]));
        assert_eq!(code, 0);
        let md = std::fs::read_to_string(&out).unwrap();
        assert!(md.contains("Figure 3 (middle)"));
        assert!(md.contains("vs. paper"));

        let code = run_cli(&s(&["diff", &format!("--results={}", results.display())]));
        assert_eq!(code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
