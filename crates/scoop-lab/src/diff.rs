//! The diff engine: classify measured rows against a baseline with
//! per-metric tolerances.
//!
//! A [`BaselineSet`] holds expected values for (a subset of) an experiment's
//! rows and metrics. [`diff_rows`] compares measured rows against it and
//! classifies every baseline row as [`RowStatus::Match`] (all metrics within
//! tolerance), [`RowStatus::Drift`] (at least one metric out, with the
//! deviations listed), or [`RowStatus::Missing`] (the measured data has no
//! such row). Measured rows with no baseline are ignored — baselines pin
//! down what we *know*, they do not forbid extra measurements.

use crate::rows::MeasuredRow;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How far a measured value may sit from its expectation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Tolerance {
    /// `|measured - expected| <= frac * |expected|`.
    Relative(f64),
    /// `|measured - expected| <= bound`.
    Absolute(f64),
}

impl Tolerance {
    /// The absolute slack this tolerance allows around `expected`.
    pub fn allowed(&self, expected: f64) -> f64 {
        match *self {
            Tolerance::Relative(frac) => frac * expected.abs(),
            Tolerance::Absolute(bound) => bound,
        }
    }

    /// Whether `measured` is acceptable for `expected`.
    pub fn accepts(&self, expected: f64, measured: f64) -> bool {
        (measured - expected).abs() <= self.allowed(expected) + 1e-12
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tolerance::Relative(frac) => write!(f, "±{:.0}%", frac * 100.0),
            Tolerance::Absolute(bound) => write!(f, "±{bound}"),
        }
    }
}

/// One expected metric value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricCheck {
    /// Metric name, matching [`MeasuredRow::metrics`].
    pub metric: String,
    /// Expected value.
    pub expected: f64,
    /// Acceptable deviation.
    pub tolerance: Tolerance,
}

impl MetricCheck {
    /// Builds a check.
    pub fn new(metric: impl Into<String>, expected: f64, tolerance: Tolerance) -> Self {
        MetricCheck {
            metric: metric.into(),
            expected,
            tolerance,
        }
    }
}

/// Expected metrics for one row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Row key, matching [`MeasuredRow::key`].
    pub key: String,
    /// The metric expectations for this row.
    pub checks: Vec<MetricCheck>,
}

/// A full baseline for one experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineSet {
    /// Experiment slug this baseline applies to.
    pub experiment: String,
    /// Where the expected numbers come from (shown in reports), e.g.
    /// `"paper, Section 6 prose"` or `"committed smoke run"`.
    pub source: String,
    /// Per-row expectations.
    pub rows: Vec<BaselineRow>,
}

/// One metric that fell outside its tolerance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricDeviation {
    /// Metric name.
    pub metric: String,
    /// Expected value.
    pub expected: f64,
    /// Measured value (NaN when the metric is absent from the measurement).
    pub measured: f64,
    /// Absolute slack that was allowed.
    pub allowed: f64,
}

impl fmt::Display for MetricDeviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.measured.is_nan() {
            write!(
                f,
                "{}: expected {:.4}, metric absent",
                self.metric, self.expected
            )
        } else {
            write!(
                f,
                "{}: expected {:.4}±{:.4}, measured {:.4}",
                self.metric, self.expected, self.allowed, self.measured
            )
        }
    }
}

/// Classification of one baseline row against the measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RowStatus {
    /// Every checked metric is within tolerance.
    Match,
    /// At least one metric deviates; the offenders are listed.
    Drift(Vec<MetricDeviation>),
    /// No measured row carries this key.
    Missing,
}

impl RowStatus {
    /// Whether this status should fail a regression gate.
    pub fn is_failure(&self) -> bool {
        !matches!(self, RowStatus::Match)
    }

    /// Short badge used in tables.
    pub fn badge(&self) -> &'static str {
        match self {
            RowStatus::Match => "match",
            RowStatus::Drift(_) => "drift",
            RowStatus::Missing => "missing",
        }
    }
}

/// The classification of every baseline row of one experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Experiment slug.
    pub experiment: String,
    /// Baseline source description.
    pub source: String,
    /// `(row key, status)` in baseline order.
    pub rows: Vec<(String, RowStatus)>,
}

impl DiffReport {
    /// Number of rows with each status: `(match, drift, missing)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for (_, status) in &self.rows {
            match status {
                RowStatus::Match => counts.0 += 1,
                RowStatus::Drift(_) => counts.1 += 1,
                RowStatus::Missing => counts.2 += 1,
            }
        }
        counts
    }

    /// Whether any row drifted or went missing.
    pub fn has_failures(&self) -> bool {
        self.rows.iter().any(|(_, s)| s.is_failure())
    }

    /// The status recorded for `key`, if the baseline covers it.
    pub fn status_of(&self, key: &str) -> Option<&RowStatus> {
        self.rows.iter().find(|(k, _)| k == key).map(|(_, s)| s)
    }

    /// Plain-text rendering (one line per row, deviations indented).
    pub fn render_text(&self) -> String {
        let (matches, drifts, missing) = self.counts();
        let mut out = format!(
            "{}: {} match, {} drift, {} missing (baseline: {})\n",
            self.experiment, matches, drifts, missing, self.source
        );
        for (key, status) in &self.rows {
            out.push_str(&format!("  [{:^7}] {key}\n", status.badge()));
            if let RowStatus::Drift(deviations) = status {
                for deviation in deviations {
                    out.push_str(&format!("            {deviation}\n"));
                }
            }
        }
        out
    }
}

/// Classifies measured rows against one baseline set.
pub fn diff_rows(measured: &[MeasuredRow], baseline: &BaselineSet) -> DiffReport {
    let rows = baseline
        .rows
        .iter()
        .map(|expected| {
            let status = match measured.iter().find(|row| row.key == expected.key) {
                None => RowStatus::Missing,
                Some(row) => {
                    let deviations: Vec<MetricDeviation> = expected
                        .checks
                        .iter()
                        .filter_map(|check| {
                            let measured_value = row.metric(&check.metric);
                            let ok = measured_value
                                .map(|v| check.tolerance.accepts(check.expected, v))
                                .unwrap_or(false);
                            if ok {
                                None
                            } else {
                                Some(MetricDeviation {
                                    metric: check.metric.clone(),
                                    expected: check.expected,
                                    measured: measured_value.unwrap_or(f64::NAN),
                                    allowed: check.tolerance.allowed(check.expected),
                                })
                            }
                        })
                        .collect();
                    if deviations.is_empty() {
                        RowStatus::Match
                    } else {
                        RowStatus::Drift(deviations)
                    }
                }
            };
            (expected.key.clone(), status)
        })
        .collect();
    DiffReport {
        experiment: baseline.experiment.clone(),
        source: baseline.source.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured() -> Vec<MeasuredRow> {
        vec![
            MeasuredRow {
                key: "scoop/real".into(),
                metrics: vec![("total_messages".into(), 100.0), ("ratio".into(), 0.75)],
            },
            MeasuredRow {
                key: "base/real".into(),
                metrics: vec![("total_messages".into(), 140.0)],
            },
        ]
    }

    fn baseline(expected_total: f64, tol: Tolerance) -> BaselineSet {
        BaselineSet {
            experiment: "fig3-middle".into(),
            source: "test".into(),
            rows: vec![
                BaselineRow {
                    key: "scoop/real".into(),
                    checks: vec![MetricCheck::new("total_messages", expected_total, tol)],
                },
                BaselineRow {
                    key: "hash/real".into(),
                    checks: vec![MetricCheck::new("total_messages", 1.0, tol)],
                },
            ],
        }
    }

    #[test]
    fn classifies_match_drift_and_missing() {
        let report = diff_rows(&measured(), &baseline(95.0, Tolerance::Relative(0.10)));
        assert_eq!(report.status_of("scoop/real"), Some(&RowStatus::Match));
        assert_eq!(report.status_of("hash/real"), Some(&RowStatus::Missing));
        assert_eq!(report.counts(), (1, 0, 1));
        assert!(report.has_failures());

        let report = diff_rows(&measured(), &baseline(50.0, Tolerance::Relative(0.10)));
        match report.status_of("scoop/real") {
            Some(RowStatus::Drift(deviations)) => {
                assert_eq!(deviations.len(), 1);
                assert_eq!(deviations[0].measured, 100.0);
                assert_eq!(deviations[0].expected, 50.0);
            }
            other => panic!("expected drift, got {other:?}"),
        }
    }

    #[test]
    fn absent_metric_counts_as_drift() {
        let base = BaselineSet {
            experiment: "x".into(),
            source: "test".into(),
            rows: vec![BaselineRow {
                key: "scoop/real".into(),
                checks: vec![MetricCheck::new("no_such", 1.0, Tolerance::Absolute(0.5))],
            }],
        };
        let report = diff_rows(&measured(), &base);
        match report.status_of("scoop/real") {
            Some(RowStatus::Drift(d)) => assert!(d[0].measured.is_nan()),
            other => panic!("expected drift, got {other:?}"),
        }
    }

    #[test]
    fn tolerance_arithmetic() {
        assert!(Tolerance::Relative(0.10).accepts(100.0, 109.9));
        assert!(!Tolerance::Relative(0.10).accepts(100.0, 110.5));
        assert!(Tolerance::Absolute(0.05).accepts(0.93, 0.90));
        assert!(!Tolerance::Absolute(0.05).accepts(0.93, 0.80));
        // Exact comparison survives floating-point noise.
        assert!(Tolerance::Absolute(0.0).accepts(0.3, 0.1 + 0.2));
        assert_eq!(Tolerance::Relative(0.25).to_string(), "±25%");
    }

    #[test]
    fn render_text_lists_deviations() {
        let report = diff_rows(&measured(), &baseline(50.0, Tolerance::Relative(0.10)));
        let text = report.render_text();
        assert!(text.contains("drift"), "{text}");
        assert!(text.contains("total_messages"), "{text}");
        assert!(text.contains("missing"), "{text}");
    }

    #[test]
    fn diff_report_serde_round_trips() {
        let report = diff_rows(&measured(), &baseline(95.0, Tolerance::Relative(0.10)));
        let json = serde_json::to_string(&report).unwrap();
        let back: DiffReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
