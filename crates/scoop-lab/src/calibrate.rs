//! The link-model calibration subsystem behind `scoop-lab calibrate`.
//!
//! The reproduction's largest honest divergence from the paper was the
//! reliability gap: with the legacy loss model the storage/query success
//! rates sat at ~56 %/~38 % against the paper's ~93 %/~78 % prose numbers.
//! The PR-3 `link-calibration` sweep measured that gentler [`LinkSpec`]
//! knobs close most of that gap *while lowering total cost*. This module
//! turns that one-off sweep into a first-class, regression-gated decision:
//!
//! * [`run_calibration`] grid-searches the `LinkSpec` knobs (`loss_floor`,
//!   `edge_delivery`, `distance_exponent`, `asymmetry_noise`), running SCOOP
//!   *and* BASE at every point so the objective can weigh the paper's
//!   Figure 3 cost ratio alongside the reliability prose numbers;
//! * [`Objective`] scores each point as the weighted distance to the paper
//!   targets — storage 93 %, query 78 %, destination accuracy 85 %, and the
//!   Figure 3 (middle) SCOOP/BASE cost ratio of 0.70;
//! * the result is a schema-versioned [`CalibrationArtifact`] committed at
//!   `results/calibration.json`, rendered as the "Calibration" section of
//!   `EXPERIMENTS.md`, and enforced by the calibration-oracle test: the
//!   shipped [`LinkSpec::default()`] must be the argmin of the committed
//!   grid, so the defaults can never silently drift from the evidence.

use crate::artifact::Provenance;
use crate::suite::Scale;
use scoop_sim::{ScenarioSuite, SweepRunner};
use scoop_types::{LinkFamily, LinkSpec, ScoopError, StoragePolicy};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Version of the calibration artifact layout. Bump on any breaking change
/// and teach [`load_calibration`] to migrate (or reject) old files.
pub const CALIBRATION_SCHEMA_VERSION: u32 = 1;

/// File name of the calibration artifact inside the results directory.
pub const CALIBRATION_FILE: &str = "calibration.json";

/// One candidate setting of the four `LinkSpec` calibration knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Loss probability of the best (zero-distance) link.
    pub loss_floor: f64,
    /// Delivery probability at the radio-range edge.
    pub edge_delivery: f64,
    /// Distance-decay shape exponent.
    pub distance_exponent: f64,
    /// Per-direction delivery-noise standard deviation.
    pub asymmetry_noise: f64,
}

impl CalibrationPoint {
    /// The knobs of an existing spec (family is ignored: calibration always
    /// searches the distance-decay family).
    pub fn from_spec(spec: &LinkSpec) -> Self {
        CalibrationPoint {
            loss_floor: spec.loss_floor,
            edge_delivery: spec.edge_delivery,
            distance_exponent: spec.distance_exponent,
            asymmetry_noise: spec.asymmetry_noise,
        }
    }

    /// The distance-decay [`LinkSpec`] this point describes.
    pub fn to_spec(self) -> LinkSpec {
        LinkSpec {
            family: LinkFamily::DistanceDecay,
            loss_floor: self.loss_floor,
            edge_delivery: self.edge_delivery,
            distance_exponent: self.distance_exponent,
            asymmetry_noise: self.asymmetry_noise,
        }
    }

    /// Short label used in sweep scenarios and reports.
    pub fn label(&self) -> String {
        format!(
            "floor-{:.2}/edge-{:.2}/exp-{:.1}/noise-{:.2}",
            self.loss_floor, self.edge_delivery, self.distance_exponent, self.asymmetry_noise
        )
    }

    /// Whether two points describe the same knobs (exact float equality: the
    /// grid uses exact literals, so anything else is a real difference).
    pub fn same_knobs(&self, other: &CalibrationPoint) -> bool {
        self.loss_floor == other.loss_floor
            && self.edge_delivery == other.edge_delivery
            && self.distance_exponent == other.distance_exponent
            && self.asymmetry_noise == other.asymmetry_noise
    }
}

/// The paper numbers the objective steers toward.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveTargets {
    /// Section 6 prose: ~93 % of sampled data is stored somewhere.
    pub storage_success: f64,
    /// Section 6 prose: ~78 % of query results are retrieved.
    pub query_success: f64,
    /// Section 6 prose: ~85 % of readings reach their designated owner.
    pub destination_accuracy: f64,
    /// Figure 3 (middle): SCOOP total cost ≈ 0.70 × BASE on the REAL trace.
    pub cost_ratio: f64,
}

/// Relative importance of each objective term.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight on `|storage_success − target|`.
    pub storage_success: f64,
    /// Weight on `|query_success − target|`.
    pub query_success: f64,
    /// Weight on `|destination_accuracy − target|`.
    pub destination_accuracy: f64,
    /// Weight on `|cost_ratio − target|`.
    pub cost_ratio: f64,
}

/// The calibration objective: weighted L1 distance to the paper targets.
///
/// The reliability prose numbers carry full weight — they are the drift this
/// subsystem exists to close. Destination accuracy and the Figure 3 cost
/// ratio carry half weight: they keep the search honest (a point that fixes
/// reliability by flooding the network would blow up the cost ratio) without
/// letting figure-derived numbers outvote the prose.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// The paper targets.
    pub targets: ObjectiveTargets,
    /// The per-term weights.
    pub weights: ObjectiveWeights,
}

impl Objective {
    /// The paper objective described above.
    pub fn paper() -> Self {
        Objective {
            targets: ObjectiveTargets {
                storage_success: 0.93,
                query_success: 0.78,
                destination_accuracy: 0.85,
                cost_ratio: 0.70,
            },
            weights: ObjectiveWeights {
                storage_success: 1.0,
                query_success: 1.0,
                destination_accuracy: 0.5,
                cost_ratio: 0.5,
            },
        }
    }

    /// The weighted distance of one measured row from the targets (lower is
    /// better).
    pub fn score(&self, row: &CalibrationRow) -> f64 {
        let t = &self.targets;
        let w = &self.weights;
        w.storage_success * (row.storage_success - t.storage_success).abs()
            + w.query_success * (row.query_success - t.query_success).abs()
            + w.destination_accuracy * (row.destination_accuracy - t.destination_accuracy).abs()
            + w.cost_ratio * (row.cost_ratio - t.cost_ratio).abs()
    }
}

impl Default for Objective {
    fn default() -> Self {
        Self::paper()
    }
}

/// One measured grid point: the knobs, the reliability and cost metrics, and
/// the objective score.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CalibrationRow {
    /// The knob setting.
    pub point: CalibrationPoint,
    /// Fraction of sampled readings stored somewhere (SCOOP).
    pub storage_success: f64,
    /// Fraction of expected query replies that reached the basestation.
    pub query_success: f64,
    /// Of the routed readings, the fraction stored on the designated owner.
    pub destination_accuracy: f64,
    /// SCOOP total messages over the measured window.
    pub scoop_messages: u64,
    /// BASE total messages under the same link model (the Figure 3 divisor).
    pub base_messages: u64,
    /// `scoop_messages / base_messages` — the Figure 3 (middle) cost ratio.
    pub cost_ratio: f64,
    /// [`Objective::score`] of this row (recomputed and cross-checked by the
    /// calibration-oracle test).
    pub objective: f64,
}

/// The persisted result of one calibration run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CalibrationArtifact {
    /// Calibration artifact layout version ([`CALIBRATION_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scale name (`"paper"` or `"quick"`).
    pub scale: String,
    /// Base seed of the run (trial `t` used `seed + t`).
    pub seed: u64,
    /// Trials averaged per grid point and policy.
    pub trials: usize,
    /// The objective the grid was scored with.
    pub objective: Objective,
    /// One row per grid point, in grid order.
    pub rows: Vec<CalibrationRow>,
    /// The argmin of `rows` by objective score (first wins ties).
    pub winner: CalibrationPoint,
    /// The knobs of `LinkSpec::default()` in the binary that produced this
    /// artifact — committed so the oracle test can prove the shipped default
    /// *is* the measured argmin.
    pub shipped_default: CalibrationPoint,
    /// Where and how the run happened.
    pub provenance: Provenance,
}

impl CalibrationArtifact {
    /// The row the winner came from.
    pub fn winner_row(&self) -> Option<&CalibrationRow> {
        self.rows.iter().find(|r| r.point.same_knobs(&self.winner))
    }

    /// Pretty JSON as written to disk.
    pub fn to_json(&self) -> Result<String, ScoopError> {
        serde_json::to_string_pretty(self).map_err(|e| ScoopError::Serialization(e.to_string()))
    }

    /// Plain-text table of the grid (the CLI's output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "calibration grid ({} scale, seed {}, {} trial(s) per point/policy)\n",
            self.scale, self.seed, self.trials
        ));
        out.push_str(&format!(
            "{:<8} {:>6} {:>5} {:>6}  {:>8} {:>8} {:>8}  {:>9} {:>9} {:>6}  {:>9}\n",
            "floor",
            "edge",
            "exp",
            "noise",
            "storage",
            "query",
            "dest",
            "scoop",
            "base",
            "ratio",
            "objective"
        ));
        for row in &self.rows {
            let marker = if row.point.same_knobs(&self.winner) {
                " <- winner"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<8.2} {:>6.2} {:>5.1} {:>6.2}  {:>7.1}% {:>7.1}% {:>7.1}%  {:>9} {:>9} {:>6.3}  {:>9.4}{}\n",
                row.point.loss_floor,
                row.point.edge_delivery,
                row.point.distance_exponent,
                row.point.asymmetry_noise,
                row.storage_success * 100.0,
                row.query_success * 100.0,
                row.destination_accuracy * 100.0,
                row.scoop_messages,
                row.base_messages,
                row.cost_ratio,
                row.objective,
                marker
            ));
        }
        out.push_str(&format!("winner: {}\n", self.winner.label()));
        out.push_str(&format!(
            "shipped LinkSpec::default(): {} — {}\n",
            self.shipped_default.label(),
            if self.shipped_default.same_knobs(&self.winner) {
                "matches the grid argmin"
            } else {
                "does NOT match the grid argmin (expected for --smoke grids; \
                 at paper scale the calibration-oracle test enforces the match)"
            }
        ));
        out
    }
}

/// The full calibration grid searched at paper scale: every combination of
/// three loss floors (the legacy 0.22 plus two gentler ones), linear vs.
/// quadratic decay, two edge-delivery levels, and two asymmetry-noise
/// levels — 24 points, each run under SCOOP *and* BASE.
pub fn default_grid() -> Vec<CalibrationPoint> {
    let floors = [0.22, 0.10, 0.05];
    let exponents = [1.0, 2.0];
    let edges = [0.10, 0.20];
    let noises = [0.03, 0.06];
    let mut grid = Vec::new();
    for &loss_floor in &floors {
        for &distance_exponent in &exponents {
            for &edge_delivery in &edges {
                for &asymmetry_noise in &noises {
                    grid.push(CalibrationPoint {
                        loss_floor,
                        edge_delivery,
                        distance_exponent,
                        asymmetry_noise,
                    });
                }
            }
        }
    }
    grid
}

/// A three-point grid for `calibrate --smoke`: the legacy knobs, the
/// calibrated knobs, and one intermediate point — enough to exercise the
/// whole calibrate path (grid run, scoring, artifact serialization) in a CI
/// step without paper-scale cost.
pub fn smoke_grid() -> Vec<CalibrationPoint> {
    vec![
        CalibrationPoint::from_spec(&LinkSpec::legacy()),
        CalibrationPoint {
            loss_floor: 0.05,
            edge_delivery: 0.10,
            distance_exponent: 2.0,
            asymmetry_noise: 0.06,
        },
        CalibrationPoint::from_spec(&LinkSpec::calibrated()),
    ]
}

/// Options for one calibration run.
#[derive(Clone, Debug)]
pub struct CalibrationOptions {
    /// Configuration scale.
    pub scale: Scale,
    /// Trials averaged per grid point and policy.
    pub trials: usize,
    /// Base seed (trial `t` runs with `seed + t`).
    pub seed: u64,
    /// The grid to search.
    pub grid: Vec<CalibrationPoint>,
    /// The objective to score it with.
    pub objective: Objective,
}

impl CalibrationOptions {
    /// The committed configuration: paper scale, 3 trials, the full grid.
    pub fn paper_full() -> Self {
        CalibrationOptions {
            scale: Scale::Paper,
            trials: 3,
            seed: 1,
            grid: default_grid(),
            objective: Objective::paper(),
        }
    }

    /// The CI smoke configuration: quick scale, 1 trial, the tiny grid.
    pub fn smoke() -> Self {
        CalibrationOptions {
            scale: Scale::Quick,
            trials: 1,
            seed: 1,
            grid: smoke_grid(),
            objective: Objective::paper(),
        }
    }
}

/// Runs the calibration grid search: SCOOP and BASE at every grid point
/// (through the parallel sweep runner), scored by the objective. The winner
/// is the first row with the minimal score.
pub fn run_calibration(options: &CalibrationOptions) -> Result<CalibrationArtifact, ScoopError> {
    if options.grid.is_empty() {
        return Err(ScoopError::InvalidConfig(
            "calibration grid must contain at least one point".into(),
        ));
    }
    for point in &options.grid {
        point.to_spec().validate()?;
    }
    let mut base = options.scale.base_config();
    base.seed = options.seed;

    // Each grid point expands to a SCOOP run and a BASE run (the Figure 3
    // divisor) under the same link model.
    let jobs: Vec<(CalibrationPoint, StoragePolicy)> = options
        .grid
        .iter()
        .flat_map(|&point| [(point, StoragePolicy::Scoop), (point, StoragePolicy::Base)])
        .collect();
    let suite = ScenarioSuite::from_grid(
        "calibration",
        options.trials,
        jobs.iter().copied(),
        |(point, policy)| {
            let mut cfg = base.clone();
            cfg.policy.kind = policy;
            cfg.link = point.to_spec();
            (format!("{}/{policy}", point.label()), cfg)
        },
    );
    let events_before = scoop_sim::events_dispatched_total();
    let start = std::time::Instant::now();
    let report = SweepRunner::from_env().run(&suite)?;

    let mut rows = Vec::with_capacity(options.grid.len());
    let mut averaged = report.averaged();
    for &point in &options.grid {
        let scoop = averaged.next().expect("one SCOOP result per grid point");
        let base_run = averaged.next().expect("one BASE result per grid point");
        let scoop_messages = scoop.total_messages();
        let base_messages = base_run.total_messages();
        let mut row = CalibrationRow {
            point,
            storage_success: scoop.storage.storage_success(),
            query_success: scoop.queries.query_success(),
            destination_accuracy: scoop.storage.destination_accuracy(),
            scoop_messages,
            base_messages,
            cost_ratio: if base_messages == 0 {
                f64::INFINITY
            } else {
                scoop_messages as f64 / base_messages as f64
            },
            objective: 0.0,
        };
        row.objective = options.objective.score(&row);
        rows.push(row);
    }

    let winner = rows
        .iter()
        .min_by(|a, b| {
            a.objective
                .partial_cmp(&b.objective)
                .expect("objective scores are finite")
        })
        .expect("grid is non-empty")
        .point;
    let wall_clock = start.elapsed().as_secs_f64();
    let events = scoop_sim::events_dispatched_total() - events_before;
    Ok(CalibrationArtifact {
        schema_version: CALIBRATION_SCHEMA_VERSION,
        scale: options.scale.name().to_string(),
        seed: options.seed,
        trials: options.trials,
        objective: options.objective,
        rows,
        winner,
        shipped_default: CalibrationPoint::from_spec(&LinkSpec::default()),
        provenance: Provenance::capture(wall_clock, events),
    })
}

/// Writes a calibration artifact, creating parent directories as needed.
pub fn save_calibration(path: &Path, artifact: &CalibrationArtifact) -> Result<(), ScoopError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ScoopError::Artifact(format!("{}: {e}", parent.display())))?;
        }
    }
    let mut json = artifact.to_json()?;
    json.push('\n');
    std::fs::write(path, json).map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))
}

/// Loads a committed calibration artifact, rejecting other schema versions
/// with the version message rather than a missing-field error.
pub fn load_calibration(path: &Path) -> Result<CalibrationArtifact, ScoopError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
    let probe: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| ScoopError::Serialization(format!("{}: {e}", path.display())))?;
    let version = match probe.get("schema_version") {
        Some(serde_json::Value::U64(n)) => *n as u32,
        Some(serde_json::Value::I64(n)) => *n as u32,
        _ => 0,
    };
    if version != CALIBRATION_SCHEMA_VERSION {
        return Err(ScoopError::Artifact(format!(
            "{}: calibration schema version {version} (this binary reads \
             {CALIBRATION_SCHEMA_VERSION}; regenerate with `scoop-lab calibrate`)",
            path.display(),
        )));
    }
    serde_json::from_str(&text)
        .map_err(|e| ScoopError::Serialization(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(point: CalibrationPoint) -> CalibrationRow {
        CalibrationRow {
            point,
            storage_success: 0.85,
            query_success: 0.75,
            destination_accuracy: 0.9,
            scoop_messages: 36_000,
            base_messages: 54_000,
            cost_ratio: 36_000.0 / 54_000.0,
            objective: 0.0,
        }
    }

    #[test]
    fn objective_is_zero_exactly_at_the_targets() {
        let objective = Objective::paper();
        let mut row = sample_row(CalibrationPoint::from_spec(&LinkSpec::default()));
        row.storage_success = objective.targets.storage_success;
        row.query_success = objective.targets.query_success;
        row.destination_accuracy = objective.targets.destination_accuracy;
        row.cost_ratio = objective.targets.cost_ratio;
        assert_eq!(objective.score(&row), 0.0);
        // Moving any single term away from its target raises the score.
        row.storage_success += 0.1;
        assert!(objective.score(&row) > 0.0);
    }

    #[test]
    fn objective_weighs_reliability_over_cost_ratio() {
        let objective = Objective::paper();
        let base = sample_row(CalibrationPoint::from_spec(&LinkSpec::default()));
        let mut off_storage = base.clone();
        off_storage.storage_success = objective.targets.storage_success - 0.2;
        let mut off_ratio = base.clone();
        off_ratio.cost_ratio = objective.targets.cost_ratio - 0.2;
        assert!(
            objective.score(&off_storage) - objective.score(&base)
                > objective.score(&off_ratio) - objective.score(&base),
            "an equal miss on storage must cost more than on the cost ratio"
        );
    }

    #[test]
    fn default_grid_covers_every_knob_and_anchors_legacy_and_calibrated() {
        let grid = default_grid();
        assert_eq!(grid.len(), 24);
        let legacy = CalibrationPoint::from_spec(&LinkSpec::legacy());
        let calibrated = CalibrationPoint::from_spec(&LinkSpec::calibrated());
        assert!(
            grid.iter().any(|p| p.same_knobs(&legacy)),
            "the legacy point must anchor the grid"
        );
        assert!(
            grid.iter().any(|p| p.same_knobs(&calibrated)),
            "the shipped default must be a grid point"
        );
        for axis in [
            |p: &CalibrationPoint| p.loss_floor,
            |p: &CalibrationPoint| p.edge_delivery,
            |p: &CalibrationPoint| p.distance_exponent,
            |p: &CalibrationPoint| p.asymmetry_noise,
        ] {
            let first = axis(&grid[0]);
            assert!(
                grid.iter().any(|p| axis(p) != first),
                "every knob must vary across the grid"
            );
        }
        for point in &grid {
            point.to_spec().validate().expect("grid points are valid");
        }
        assert!(smoke_grid().len() < grid.len());
    }

    #[test]
    fn smoke_calibration_runs_and_picks_a_grid_winner() {
        let artifact = run_calibration(&CalibrationOptions::smoke()).unwrap();
        assert_eq!(artifact.schema_version, CALIBRATION_SCHEMA_VERSION);
        assert_eq!(artifact.rows.len(), smoke_grid().len());
        for row in &artifact.rows {
            assert!(row.storage_success > 0.0 && row.storage_success <= 1.0);
            assert!(row.query_success > 0.0 && row.query_success <= 1.0);
            assert!(row.scoop_messages > 0 && row.base_messages > 0);
            assert!(row.cost_ratio.is_finite());
            let recomputed = artifact.objective.score(row);
            assert!(
                (row.objective - recomputed).abs() < 1e-12,
                "stored objective must equal a fresh scoring"
            );
        }
        let min = artifact
            .rows
            .iter()
            .map(|r| r.objective)
            .fold(f64::INFINITY, f64::min);
        let winner_row = artifact.winner_row().expect("winner is a grid row");
        assert_eq!(winner_row.objective, min);
        let text = artifact.render_text();
        assert!(text.contains("<- winner"), "{text}");
    }

    #[test]
    fn calibration_artifact_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("scoop-calibrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("calibration.json");
        let mut options = CalibrationOptions::smoke();
        options.grid.truncate(1);
        let artifact = run_calibration(&options).unwrap();
        save_calibration(&path, &artifact).unwrap();
        let back = load_calibration(&path).unwrap();
        assert_eq!(back.rows.len(), artifact.rows.len());
        assert!(back.winner.same_knobs(&artifact.winner));
        assert_eq!(back.to_json().unwrap(), artifact.to_json().unwrap());
        // A bumped schema version is rejected with the version message.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replacen("\"schema_version\": 1", "\"schema_version\": 9", 1),
        )
        .unwrap();
        let err = load_calibration(&path).unwrap_err().to_string();
        assert!(err.contains("schema version 9"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_invalid_grids_are_rejected() {
        let mut options = CalibrationOptions::smoke();
        options.grid.clear();
        assert!(run_calibration(&options).is_err());
        let mut options = CalibrationOptions::smoke();
        options.grid[0].loss_floor = f64::NAN;
        assert!(matches!(
            run_calibration(&options),
            Err(ScoopError::InvalidConfig(_))
        ));
    }
}
