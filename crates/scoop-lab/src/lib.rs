//! The experiment lab: persistent artifacts, baseline regression checks,
//! and the `EXPERIMENTS.md` regenerator.
//!
//! The paper's claims are quantitative (Figures 3–5, the reliability prose),
//! but one-shot experiment runs that print to stdout cannot back them over
//! time. This crate turns the figure experiments in
//! [`scoop_sim::experiments`] into a self-checking lab:
//!
//! * [`suite`] — one [`suite::ExperimentId`] per paper figure/table; runs
//!   experiments (parallelized inside by `scoop_sim::sweep`) and times them.
//! * [`artifact`] — schema-versioned JSON artifacts (config hash, seed, git
//!   revision, per-experiment wall-clock, typed rows) and the
//!   [`artifact::ArtifactStore`] that persists them under `results/`.
//! * [`rows`] — the typed union of every experiment's rows, plus the
//!   flattened metric view (including the figure-normalized ratios).
//! * [`baselines`] — the paper's expected numbers with per-metric
//!   tolerances, and regression baselines built from committed artifacts.
//! * [`calibrate`] — the `scoop-lab calibrate` grid search over the
//!   `LinkSpec` loss knobs: scores every point against the paper's
//!   reliability prose numbers and Figure 3 cost ratio, persists
//!   `results/calibration.json`, and backs the oracle test proving
//!   `LinkSpec::default()` is the measured argmin.
//! * [`diff`] — the engine classifying measured rows as `Match` / `Drift` /
//!   `Missing` against a baseline.
//! * [`render`] — regenerates `EXPERIMENTS.md` (measured-vs-paper tables
//!   with drift annotations) from the latest artifacts.
//! * [`check`] — the CI regression gate: quick smoke suite vs. the
//!   committed baseline file.
//! * [`history`] — per-commit wall-clock records (`BENCH_history.jsonl`).
//! * [`cli`] — the `scoop-lab` binary's `run | report | diff | check |
//!   calibrate | history | trace` subcommands (also driven by
//!   `examples/reproduce.rs`).

#![warn(missing_docs)]

pub mod artifact;
pub mod baselines;
pub mod calibrate;
pub mod check;
pub mod cli;
pub mod diff;
pub mod history;
pub mod render;
pub mod rows;
mod store_cli;
pub mod suite;

pub use artifact::{Artifact, ArtifactStore, Provenance, SCHEMA_VERSION};
pub use baselines::{paper_baseline, paper_baselines, regression_baseline, TolerancePreset};
pub use calibrate::{
    load_calibration, run_calibration, save_calibration, CalibrationArtifact, CalibrationOptions,
    CalibrationPoint, CalibrationRow, Objective, CALIBRATION_SCHEMA_VERSION,
};
pub use check::{run_chaos_check, run_check, CheckOutcome};
pub use diff::{
    diff_rows, BaselineRow, BaselineSet, DiffReport, MetricCheck, RowStatus, Tolerance,
};
pub use history::{load_history, HistoryDelta, HistoryRecord};
pub use render::render_experiments_md;
pub use rows::{MeasuredRow, RowSet};
pub use suite::{run_experiment, run_suite, ExperimentId, PointSet, Scale, SuiteOptions};
