//! The paper's expected numbers, with per-metric tolerances.
//!
//! Two kinds of baselines live here:
//!
//! * **Paper baselines** ([`paper_baseline`]) — what the Scoop paper reports
//!   for each figure. Absolute message counts do not transfer from the
//!   paper's TinyOS testbed/simulator to this reproduction, so the figure
//!   baselines are encoded as the *ratios* the figures actually argue about
//!   (each bar relative to the panel's BASE/reference bar, each curve point
//!   relative to BASE at the same sweep point), plus the absolute
//!   percentages the Section 6 prose states outright. Values read off a
//!   figure carry generous tolerances; prose numbers carry tight ones. A
//!   `Drift` against a paper baseline is a *finding* to document in
//!   EXPERIMENTS.md, not a build failure.
//!
//! * **Regression baselines** ([`regression_baseline`]) — expectations built
//!   from a previously committed artifact, pinning every metric of every row
//!   at a chosen tolerance. `scoop-lab check` uses these to fail CI when the
//!   smoke suite drifts from the committed numbers.

use crate::artifact::Artifact;
use crate::diff::{BaselineRow, BaselineSet, MetricCheck, Tolerance};
use crate::suite::ExperimentId;

/// Named tolerance presets for `scoop-lab check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TolerancePreset {
    /// Byte-for-byte: any numeric change fails. The simulator is
    /// deterministic, so this is achievable — but every legitimate
    /// behavioral change forces a re-bless.
    Strict,
    /// 2 % relative: absorbs nothing (runs are deterministic) but keeps the
    /// gate meaningful if averaging or float evaluation order ever shifts.
    Default,
    /// 10 % relative: only flags substantial behavioral regressions.
    Loose,
}

impl TolerancePreset {
    /// Parses a preset name as typed on the CLI.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "strict" => Some(TolerancePreset::Strict),
            "default" => Some(TolerancePreset::Default),
            "loose" => Some(TolerancePreset::Loose),
            _ => None,
        }
    }

    /// The tolerance this preset applies to every metric.
    pub fn tolerance(self) -> Tolerance {
        match self {
            TolerancePreset::Strict => Tolerance::Absolute(0.0),
            TolerancePreset::Default => Tolerance::Relative(0.02),
            TolerancePreset::Loose => Tolerance::Relative(0.10),
        }
    }
}

/// Shorthand for a `(key, [(metric, expected, tolerance)])` baseline row.
fn row(key: &str, checks: &[(&str, f64, Tolerance)]) -> BaselineRow {
    BaselineRow {
        key: key.to_string(),
        checks: checks
            .iter()
            .map(|&(metric, expected, tolerance)| MetricCheck::new(metric, expected, tolerance))
            .collect(),
    }
}

/// The paper baseline for one experiment, if the paper pins one down.
///
/// Covered: the three Figure 3 panels, Figure 4, Figure 5, the ablations
/// (from the mechanisms DESIGN.md credits, since the paper has no ablation
/// figure), and the reliability prose numbers.
pub fn paper_baseline(id: ExperimentId) -> Option<BaselineSet> {
    use Tolerance::{Absolute, Relative};
    // The reference bar of a ratio-normalized panel is 1.0 by construction;
    // a tiny absolute tolerance keeps it an explicit, visible row.
    let definitional = Absolute(1e-9);
    let (source, rows): (&str, Vec<BaselineRow>) = match id {
        ExperimentId::Fig3Left => (
            "paper Figure 3 (left), bars normalized to BASE/gaussian (read off the figure)",
            vec![
                row("scoop/unique", &[("total_vs_ref", 0.35, Relative(0.45))]),
                row("scoop/gaussian", &[("total_vs_ref", 0.80, Relative(0.30))]),
                row("local/gaussian", &[("total_vs_ref", 1.10, Relative(0.25))]),
                row("base/gaussian", &[("total_vs_ref", 1.0, definitional)]),
            ],
        ),
        ExperimentId::Fig3Middle => (
            "paper Figure 3 (middle), bars normalized to BASE (read off the figure)",
            vec![
                row("scoop/real", &[("total_vs_ref", 0.70, Relative(0.30))]),
                row("local/real", &[("total_vs_ref", 1.10, Relative(0.25))]),
                row("base/real", &[("total_vs_ref", 1.0, definitional)]),
                row("hash/real", &[("total_vs_ref", 0.95, Relative(0.25))]),
            ],
        ),
        ExperimentId::Fig3Right => (
            "paper Figure 3 (right), bars normalized to SCOOP/REAL (read off the figure)",
            vec![
                row("scoop/unique", &[("total_vs_ref", 0.50, Relative(0.40))]),
                row("scoop/equal", &[("total_vs_ref", 0.55, Relative(0.40))]),
                row("scoop/real", &[("total_vs_ref", 1.0, definitional)]),
                row("scoop/gaussian", &[("total_vs_ref", 1.15, Relative(0.30))]),
                row("scoop/random", &[("total_vs_ref", 1.15, Relative(0.30))]),
            ],
        ),
        ExperimentId::Fig4 => (
            "paper Figure 4: SCOOP grows with selectivity, crossing BASE near 60 % of \
             nodes queried; LOCAL and BASE are flat (curve points normalized to BASE \
             at the same query width)",
            vec![
                row("scoop/width-2%", &[("total_vs_base", 0.35, Relative(0.35))]),
                row(
                    "scoop/width-50%",
                    &[("total_vs_base", 0.90, Relative(0.30))],
                ),
                row(
                    "scoop/width-100%",
                    &[("total_vs_base", 1.30, Relative(0.30))],
                ),
                row("local/width-2%", &[("total_vs_base", 1.10, Relative(0.25))]),
                row(
                    "local/width-100%",
                    &[("total_vs_base", 1.10, Relative(0.25))],
                ),
                row("base/width-2%", &[("total_vs_base", 1.0, definitional)]),
                row("base/width-100%", &[("total_vs_base", 1.0, definitional)]),
            ],
        ),
        ExperimentId::Fig5 => (
            "paper Figure 5: LOCAL dominated by query flooding (steep drop as queries \
             become rare); SCOOP mildly decreasing; BASE flat (curve points normalized \
             to BASE at the same interval)",
            vec![
                row(
                    "scoop/interval-5s",
                    &[("total_vs_base", 1.15, Relative(0.30))],
                ),
                row(
                    "scoop/interval-15s",
                    &[("total_vs_base", 0.75, Relative(0.30))],
                ),
                row(
                    "scoop/interval-50s",
                    &[("total_vs_base", 0.55, Relative(0.30))],
                ),
                row(
                    "local/interval-5s",
                    &[("total_vs_base", 3.00, Relative(0.35))],
                ),
                row(
                    "local/interval-50s",
                    &[("total_vs_base", 0.33, Relative(0.40))],
                ),
                row("base/interval-5s", &[("total_vs_base", 1.0, definitional)]),
                row("base/interval-50s", &[("total_vs_base", 1.0, definitional)]),
            ],
        ),
        ExperimentId::Ablations => (
            "mechanism expectations from DESIGN.md (the paper has no ablation figure); \
             variants normalized to the unmodified baseline",
            vec![
                row("baseline", &[("total_vs_ref", 1.0, definitional)]),
                row("no-batching", &[("total_vs_ref", 1.45, Relative(0.25))]),
                row(
                    "no-index-suppression",
                    &[("total_vs_ref", 1.0, Relative(0.10))],
                ),
                row(
                    "no-neighbor-shortcut",
                    &[("total_vs_ref", 1.10, Relative(0.20))],
                ),
                row(
                    "store-local-fallback",
                    &[("total_vs_ref", 1.0, Relative(0.15))],
                ),
            ],
        ),
        ExperimentId::Reliability => (
            "paper Section 6 prose: ~93 % of data stored, ~78 % of query results \
             retrieved, ~85 % of readings reach their designated owner",
            vec![row(
                "scoop",
                &[
                    ("storage_success", 0.93, Absolute(0.10)),
                    ("query_success", 0.78, Absolute(0.12)),
                    ("destination_accuracy", 0.85, Absolute(0.10)),
                ],
            )],
        ),
        // No quantitative figure to compare against: the sample-interval /
        // root-skew / scaling studies are prose-only in the paper, and the
        // link-calibration + large-scale grid scenarios, the chaos fault
        // family, and the range/aggregate workload grids go beyond it by
        // design.
        ExperimentId::SampleInterval
        | ExperimentId::RootSkew
        | ExperimentId::Scaling
        | ExperimentId::LinkCalibration
        | ExperimentId::Scaling256
        | ExperimentId::Scaling4096
        | ExperimentId::Scaling32768
        | ExperimentId::ChaosPartition
        | ExperimentId::ChaosSinkFailover
        | ExperimentId::ChaosChurn
        | ExperimentId::RangeWidth
        | ExperimentId::AggregateOps => return None,
    };
    Some(BaselineSet {
        experiment: id.slug().to_string(),
        source: source.to_string(),
        rows,
    })
}

/// Every paper baseline, in suite order.
pub fn paper_baselines() -> Vec<BaselineSet> {
    ExperimentId::ALL
        .into_iter()
        .filter_map(paper_baseline)
        .collect()
}

/// Builds a regression baseline from a committed artifact: every metric of
/// every row, pinned at `tolerance`.
pub fn regression_baseline(artifact: &Artifact, tolerance: Tolerance) -> BaselineSet {
    let reference = artifact.experiment_id().and_then(|id| id.reference_key());
    let rows = artifact
        .rows
        .measured_rows(reference)
        .into_iter()
        .map(|measured| BaselineRow {
            key: measured.key,
            checks: measured
                .metrics
                .into_iter()
                .map(|(metric, value)| MetricCheck::new(metric, value, tolerance))
                .collect(),
        })
        .collect();
    BaselineSet {
        experiment: artifact.experiment.clone(),
        source: format!(
            "committed smoke artifact (scale {}, seed {}, {} trials)",
            artifact.scale, artifact.seed, artifact.trials
        ),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Provenance;
    use crate::diff::{diff_rows, RowStatus};
    use crate::suite::{run_experiment, SuiteOptions};

    #[test]
    fn paper_baselines_cover_the_required_figures() {
        let covered: Vec<String> = paper_baselines()
            .into_iter()
            .map(|b| b.experiment)
            .collect();
        for required in [
            "fig3-left",
            "fig3-middle",
            "fig3-right",
            "fig4",
            "fig5",
            "ablations",
            "reliability",
        ] {
            assert!(covered.iter().any(|c| c == required), "missing {required}");
        }
    }

    #[test]
    fn baseline_keys_reference_real_metrics() {
        for baseline in paper_baselines() {
            for brow in &baseline.rows {
                assert!(!brow.checks.is_empty(), "{}: empty row", brow.key);
                for check in &brow.checks {
                    assert!(
                        check.expected.is_finite() && check.expected >= 0.0,
                        "{}: bad expectation",
                        brow.key
                    );
                }
            }
        }
    }

    #[test]
    fn tolerance_presets_parse() {
        assert_eq!(
            TolerancePreset::from_name("default"),
            Some(TolerancePreset::Default)
        );
        assert_eq!(
            TolerancePreset::from_name("strict"),
            Some(TolerancePreset::Strict)
        );
        assert_eq!(
            TolerancePreset::from_name("loose"),
            Some(TolerancePreset::Loose)
        );
        assert_eq!(TolerancePreset::from_name("yolo"), None);
    }

    #[test]
    fn regression_baseline_matches_its_own_artifact() {
        let options = SuiteOptions::quick_smoke();
        let base = options.base_config().unwrap();
        let id = ExperimentId::Fig3Middle;
        let rows = run_experiment(id, &base, options.trials, options.points).unwrap();
        let artifact = Artifact::new(id, &options, &base, rows, Provenance::masked());
        let baseline = regression_baseline(&artifact, TolerancePreset::Strict.tolerance());
        let measured = artifact.rows.measured_rows(id.reference_key());
        let report = diff_rows(&measured, &baseline);
        assert!(!report.has_failures(), "{}", report.render_text());
        assert!(report
            .rows
            .iter()
            .all(|(_, s)| matches!(s, RowStatus::Match)));
    }
}
