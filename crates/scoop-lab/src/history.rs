//! Per-commit performance history (`BENCH_history.jsonl`).
//!
//! Every `scoop-lab run --history <file>` appends one JSON line recording
//! the wall-clock of each experiment in the run, keyed by git revision. CI
//! appends a line per commit, turning the file into a coarse perf
//! trajectory — enough to spot a simulation slowdown without a dedicated
//! benchmarking service. JSONL appends never rewrite history, so the file is
//! merge-friendly.

use crate::artifact::Artifact;
use scoop_types::ScoopError;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One experiment's timing within a history record.
///
/// The throughput fields carry `#[serde(default)]` so records appended
/// before they existed still parse (as zero) when the regression gate walks
/// the file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTiming {
    /// Experiment slug.
    pub experiment: String,
    /// Rows produced.
    pub rows: usize,
    /// Wall-clock seconds.
    pub wall_clock_secs: f64,
    /// Engine events dispatched (0 in pre-throughput records).
    #[serde(default)]
    pub events_processed: u64,
    /// Events per wall-clock second (0 in pre-throughput records).
    #[serde(default)]
    pub events_per_sec: f64,
    /// Process peak RSS in bytes when the experiment finished (0 in
    /// pre-memory records). A monotone high-water mark: within one run it
    /// only grows across experiments.
    #[serde(default)]
    pub peak_rss_bytes: u64,
}

/// One appended line of `BENCH_history.jsonl`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Git revision the suite ran at.
    pub git_rev: String,
    /// Scale name (`"paper"` / `"quick"`).
    pub scale: String,
    /// Trials per scenario.
    pub trials: usize,
    /// Sweep worker threads.
    pub threads: usize,
    /// Sum of per-experiment wall-clocks.
    pub total_wall_clock_secs: f64,
    /// Sum of per-experiment dispatched events (0 in pre-throughput records).
    #[serde(default)]
    pub total_events_processed: u64,
    /// Peak RSS in bytes over the whole run — the maximum of the
    /// per-experiment high-water marks (0 in pre-memory records).
    #[serde(default)]
    pub peak_rss_bytes: u64,
    /// Records ingested into the durable store (only set on `scale:"store"`
    /// records appended by `scoop-lab store ingest --history`; elided as 0
    /// on simulation records so their lines are unchanged).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub store_records: u64,
    /// Durable-store ingest throughput, records per second.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub store_ingest_records_per_sec: f64,
    /// Wall-clock seconds spent building learned indexes during the ingest.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub store_index_build_secs: f64,
    /// Bytes the store occupies on disk after the ingest.
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub store_disk_bytes: u64,
    /// Queries completed by a `scoop-serve bench` run (only set on
    /// `scale:"serve"` records; elided as 0 elsewhere so simulation and
    /// store lines are unchanged).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub serve_queries: u64,
    /// Serving throughput, completed queries per wall-clock second.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub serve_qps: f64,
    /// Median served-request latency, in milliseconds.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub serve_p50_ms: f64,
    /// 99th-percentile served-request latency, in milliseconds.
    #[serde(default, skip_serializing_if = "is_zero_f64")]
    pub serve_p99_ms: f64,
    /// Per-experiment timings, in suite order.
    pub experiments: Vec<ExperimentTiming>,
}

fn is_zero_u64(v: &u64) -> bool {
    *v == 0
}

fn is_zero_f64(v: &f64) -> bool {
    *v == 0.0
}

impl HistoryRecord {
    /// Summarizes one finished suite run.
    pub fn from_artifacts(artifacts: &[Artifact]) -> Option<HistoryRecord> {
        let first = artifacts.first()?;
        let experiments: Vec<ExperimentTiming> = artifacts
            .iter()
            .map(|a| ExperimentTiming {
                experiment: a.experiment.clone(),
                rows: a.rows.len(),
                wall_clock_secs: a.provenance.wall_clock_secs,
                events_processed: a.provenance.events_processed,
                events_per_sec: a.provenance.events_per_sec,
                peak_rss_bytes: a.provenance.peak_rss_bytes,
            })
            .collect();
        Some(HistoryRecord {
            git_rev: first.provenance.git_rev.clone(),
            scale: first.scale.clone(),
            trials: first.trials,
            threads: first.provenance.threads,
            total_wall_clock_secs: experiments.iter().map(|e| e.wall_clock_secs).sum(),
            total_events_processed: experiments.iter().map(|e| e.events_processed).sum(),
            peak_rss_bytes: experiments
                .iter()
                .map(|e| e.peak_rss_bytes)
                .max()
                .unwrap_or(0),
            store_records: 0,
            store_ingest_records_per_sec: 0.0,
            store_index_build_secs: 0.0,
            store_disk_bytes: 0,
            serve_queries: 0,
            serve_qps: 0.0,
            serve_p50_ms: 0.0,
            serve_p99_ms: 0.0,
            experiments,
        })
    }

    /// Summarizes one `scoop-lab store ingest` for the perf trajectory.
    /// `scale` is `"store"`, so the history gate never compares these
    /// records against simulation runs.
    pub fn from_store_ingest(
        report: &scoop_store::IngestReport,
        stats: &scoop_store::StoreStats,
    ) -> HistoryRecord {
        HistoryRecord {
            git_rev: crate::artifact::workspace_git_rev(),
            scale: "store".to_string(),
            trials: 1,
            threads: 1,
            total_wall_clock_secs: report.ingest_secs,
            total_events_processed: 0,
            peak_rss_bytes: crate::artifact::peak_rss_bytes(),
            store_records: report.records,
            store_ingest_records_per_sec: report.records_per_sec,
            store_index_build_secs: stats.index_build_secs,
            store_disk_bytes: stats.disk_bytes,
            serve_queries: 0,
            serve_qps: 0.0,
            serve_p50_ms: 0.0,
            serve_p99_ms: 0.0,
            experiments: Vec::new(),
        }
    }

    /// Summarizes one `scoop-serve bench` run. `scale` is `"serve"` and the
    /// query count participates in comparability, so serving latency is
    /// gated only against runs of the same workload size and concurrency —
    /// never against simulation events/s records.
    pub fn from_serve_bench(
        queries: u64,
        wall_clock_secs: f64,
        qps: f64,
        p50_ms: f64,
        p99_ms: f64,
        concurrency: usize,
    ) -> HistoryRecord {
        HistoryRecord {
            git_rev: crate::artifact::workspace_git_rev(),
            scale: "serve".to_string(),
            trials: 1,
            threads: concurrency,
            total_wall_clock_secs: wall_clock_secs,
            total_events_processed: 0,
            peak_rss_bytes: crate::artifact::peak_rss_bytes(),
            store_records: 0,
            store_ingest_records_per_sec: 0.0,
            store_index_build_secs: 0.0,
            store_disk_bytes: 0,
            serve_queries: queries,
            serve_qps: qps,
            serve_p50_ms: p50_ms,
            serve_p99_ms: p99_ms,
            experiments: Vec::new(),
        }
    }

    /// Aggregate events per second over the whole run.
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_clock_secs > 0.0 {
            self.total_events_processed as f64 / self.total_wall_clock_secs
        } else {
            0.0
        }
    }

    /// Appends this record as one line of `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> Result<(), ScoopError> {
        let line =
            serde_json::to_string(self).map_err(|e| ScoopError::Serialization(e.to_string()))?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
        writeln!(file, "{line}")
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))
    }
}

/// Loads every record of a `BENCH_history.jsonl` file, in append order.
/// Blank lines are skipped; a malformed line is an error (a truncated write
/// should fail the gate, not silently vanish).
pub fn load_history(path: &Path) -> Result<Vec<HistoryRecord>, ScoopError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            serde_json::from_str(line)
                .map_err(|e| ScoopError::Serialization(format!("{}: {e}", path.display())))
        })
        .collect()
}

/// The latest history record measured against the most recent *comparable*
/// earlier one (same scale, trials, sweep threads, and experiment count — a
/// quick CI run must never be judged against a committed paper-scale run,
/// nor a 4-thread run against a 1-thread wall clock).
#[derive(Clone, Debug)]
pub struct HistoryDelta {
    /// The newest record (this commit's run).
    pub latest: HistoryRecord,
    /// The record it is compared against, if any exists.
    pub previous: Option<HistoryRecord>,
}

impl HistoryDelta {
    /// Splits the newest record off `records` and finds its comparison
    /// partner. `None` if the file is empty.
    pub fn from_records(records: &[HistoryRecord]) -> Option<HistoryDelta> {
        let latest = records.last()?.clone();
        let previous = records[..records.len() - 1]
            .iter()
            .rev()
            .find(|r| {
                r.scale == latest.scale
                    && r.trials == latest.trials
                    && r.threads == latest.threads
                    && r.experiments.len() == latest.experiments.len()
                    // Serving records additionally match on workload size, so
                    // a smoke-sized serve run is never judged against the
                    // million-query bench (0 == 0 keeps every older record
                    // kind comparable exactly as before).
                    && r.serve_queries == latest.serve_queries
            })
            .cloned();
        Some(HistoryDelta { latest, previous })
    }

    /// Wall-clock ratio `latest / previous` (`> 1` is a slowdown), if a
    /// comparable previous record exists and both totals are positive.
    pub fn wall_clock_ratio(&self) -> Option<f64> {
        let previous = self.previous.as_ref()?;
        if previous.total_wall_clock_secs <= 0.0 || self.latest.total_wall_clock_secs <= 0.0 {
            return None;
        }
        Some(self.latest.total_wall_clock_secs / previous.total_wall_clock_secs)
    }

    /// Tail-latency ratio `latest / previous` of served-request p99
    /// (`> 1` is a slowdown), if both records are serve records with
    /// positive p99s.
    pub fn serve_p99_ratio(&self) -> Option<f64> {
        let previous = self.previous.as_ref()?;
        if previous.serve_p99_ms <= 0.0 || self.latest.serve_p99_ms <= 0.0 {
            return None;
        }
        Some(self.latest.serve_p99_ms / previous.serve_p99_ms)
    }

    /// Whether the latest run regressed by more than `max_regression`
    /// (e.g. `0.25` fails anything over 1.25× the previous wall clock).
    /// Serve records are additionally gated on p99 latency — a serving-tier
    /// tail-latency regression fails even when total wall clock hides it.
    pub fn regressed(&self, max_regression: f64) -> bool {
        let over = |ratio: Option<f64>| matches!(ratio, Some(r) if r > 1.0 + max_regression);
        over(self.wall_clock_ratio()) || over(self.serve_p99_ratio())
    }

    /// Human-readable summary: per-experiment wall clock and events/sec of
    /// the latest record, plus the delta against the previous comparable run.
    pub fn render_text(&self, max_regression: f64) -> String {
        let mut out = String::new();
        let latest = &self.latest;
        out.push_str(&format!(
            "latest record: rev `{}` scale={} trials={} — {:.2} s total, \
             {} events ({:.0} events/s)",
            latest.git_rev,
            latest.scale,
            latest.trials,
            latest.total_wall_clock_secs,
            latest.total_events_processed,
            latest.events_per_sec(),
        ));
        if latest.peak_rss_bytes > 0 {
            out.push_str(&format!(
                ", peak RSS {:.1} MiB",
                latest.peak_rss_bytes as f64 / (1024.0 * 1024.0)
            ));
        }
        out.push('\n');
        if latest.serve_queries > 0 {
            out.push_str(&format!(
                "  serving: {} queries at {:.0} q/s, p50 {:.3} ms, p99 {:.3} ms\n",
                latest.serve_queries, latest.serve_qps, latest.serve_p50_ms, latest.serve_p99_ms
            ));
        }
        if latest.store_records > 0 {
            out.push_str(&format!(
                "  durable store: {} record(s) at {:.0} records/s, \
                 index built in {:.4} s, {} bytes on disk\n",
                latest.store_records,
                latest.store_ingest_records_per_sec,
                latest.store_index_build_secs,
                latest.store_disk_bytes
            ));
        }
        for e in &latest.experiments {
            out.push_str(&format!(
                "  {:<18} {:>7.2} s  {:>10} events  {:>10.0} events/s\n",
                e.experiment, e.wall_clock_secs, e.events_processed, e.events_per_sec
            ));
        }
        match (&self.previous, self.wall_clock_ratio()) {
            (Some(previous), Some(ratio)) => {
                out.push_str(&format!(
                    "previous comparable record: rev `{}` — {:.2} s total\n\
                     wall-clock delta: {:+.1} % ({})\n",
                    previous.git_rev,
                    previous.total_wall_clock_secs,
                    (ratio - 1.0) * 100.0,
                    if self.regressed(max_regression) {
                        "REGRESSION over threshold"
                    } else if ratio < 1.0 {
                        "faster"
                    } else {
                        "within threshold"
                    },
                ));
                if let Some(p99_ratio) = self.serve_p99_ratio() {
                    out.push_str(&format!(
                        "serve p99 delta: {:+.1} % ({:.3} ms -> {:.3} ms)\n",
                        (p99_ratio - 1.0) * 100.0,
                        previous.serve_p99_ms,
                        self.latest.serve_p99_ms
                    ));
                }
            }
            _ => out.push_str(
                "no comparable previous record (same scale/trials/threads/experiments) — \
                 nothing to gate against\n",
            ),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_suite, SuiteOptions};

    #[test]
    fn record_summarizes_and_appends_jsonl() {
        let mut options = SuiteOptions::quick_smoke();
        options.experiments.truncate(2);
        let artifacts = run_suite(&options, |_| ()).unwrap();
        let record = HistoryRecord::from_artifacts(&artifacts).unwrap();
        assert_eq!(record.experiments.len(), 2);
        assert!(record.total_wall_clock_secs >= 0.0);
        assert_eq!(record.scale, "quick");

        let path =
            std::env::temp_dir().join(format!("scoop-lab-history-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        record.append_to(&path).unwrap();
        record.append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back: HistoryRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(back, record);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_run_yields_no_record() {
        assert!(HistoryRecord::from_artifacts(&[]).is_none());
    }

    fn record(scale: &str, trials: usize, wall: f64, experiments: usize) -> HistoryRecord {
        HistoryRecord {
            git_rev: format!("rev-{wall}"),
            scale: scale.to_string(),
            trials,
            threads: 1,
            total_wall_clock_secs: wall,
            total_events_processed: (wall * 1_000_000.0) as u64,
            peak_rss_bytes: 64 * 1024 * 1024,
            store_records: 0,
            store_ingest_records_per_sec: 0.0,
            store_index_build_secs: 0.0,
            store_disk_bytes: 0,
            serve_queries: 0,
            serve_qps: 0.0,
            serve_p50_ms: 0.0,
            serve_p99_ms: 0.0,
            experiments: (0..experiments)
                .map(|i| ExperimentTiming {
                    experiment: format!("exp-{i}"),
                    rows: 3,
                    wall_clock_secs: wall / experiments as f64,
                    events_processed: 1000,
                    events_per_sec: 1000.0,
                    peak_rss_bytes: 64 * 1024 * 1024,
                })
                .collect(),
        }
    }

    #[test]
    fn delta_compares_only_same_shape_runs() {
        // quick records must not be judged against the paper-scale one, and
        // a run on different sweep threads is not comparable either.
        let mut other_threads = record("quick", 1, 1.0, 2);
        other_threads.threads = 4;
        let records = vec![
            record("paper", 3, 37.0, 2),
            record("quick", 1, 2.0, 2),
            other_threads,
            record("quick", 1, 2.2, 2),
        ];
        let delta = HistoryDelta::from_records(&records).unwrap();
        assert_eq!(delta.previous.as_ref().unwrap().total_wall_clock_secs, 2.0);
        let ratio = delta.wall_clock_ratio().unwrap();
        assert!((ratio - 1.1).abs() < 1e-9, "{ratio}");
        assert!(!delta.regressed(0.25));
        assert!(delta.regressed(0.05));
        let text = delta.render_text(0.25);
        assert!(text.contains("within threshold"), "{text}");

        let only = vec![record("paper", 3, 37.0, 2)];
        let delta = HistoryDelta::from_records(&only).unwrap();
        assert!(delta.previous.is_none());
        assert!(!delta.regressed(0.0), "no baseline, nothing to fail");
        assert!(delta.render_text(0.25).contains("no comparable previous"));
        assert!(HistoryDelta::from_records(&[]).is_none());
    }

    #[test]
    fn chaos_records_compare_only_against_chaos_records() {
        // The chaos gate's record carries the same experiment count (3) as a
        // hypothetical trimmed quick run could; only the scale override
        // keeps the two trajectories apart. A chaos record must reach past
        // quick, paper, and same-shaped foreign records to the previous
        // chaos one — and a quick record must never see a chaos baseline.
        let records = vec![
            record("chaos", 1, 4.0, 3),
            record("quick", 1, 2.0, 3),
            record("chaos", 1, 4.4, 3),
        ];
        let delta = HistoryDelta::from_records(&records).unwrap();
        let previous = delta.previous.as_ref().unwrap();
        assert_eq!(previous.scale, "chaos");
        assert_eq!(previous.total_wall_clock_secs, 4.0);
        let ratio = delta.wall_clock_ratio().unwrap();
        assert!((ratio - 1.1).abs() < 1e-9, "{ratio}");

        let records = vec![record("chaos", 1, 4.0, 3), record("quick", 1, 2.0, 3)];
        let delta = HistoryDelta::from_records(&records).unwrap();
        assert!(delta.previous.is_none(), "quick never gates against chaos");
    }

    fn serve_record(queries: u64, wall: f64, p99_ms: f64) -> HistoryRecord {
        let mut r = HistoryRecord::from_serve_bench(
            queries,
            wall,
            queries as f64 / wall,
            p99_ms / 2.0,
            p99_ms,
            32,
        );
        r.git_rev = format!("serve-{wall}-{p99_ms}");
        r
    }

    #[test]
    fn serve_records_compare_only_against_same_sized_serve_runs() {
        // A serve record must skip simulation and store records, and also a
        // serve run of a different query count, when picking its baseline.
        let records = vec![
            record("quick", 1, 2.0, 2),
            serve_record(1_000_000, 10.0, 4.0),
            serve_record(5_000, 0.1, 3.0),
            serve_record(1_000_000, 11.0, 4.2),
        ];
        let delta = HistoryDelta::from_records(&records).unwrap();
        let previous = delta.previous.as_ref().unwrap();
        assert_eq!(previous.serve_queries, 1_000_000);
        assert_eq!(previous.total_wall_clock_secs, 10.0);
        let p99 = delta.serve_p99_ratio().unwrap();
        assert!((p99 - 1.05).abs() < 1e-9, "{p99}");
        assert!(!delta.regressed(0.25));
        let text = delta.render_text(0.25);
        assert!(text.contains("serving: 1000000 queries"), "{text}");
        assert!(text.contains("serve p99 delta"), "{text}");

        // A simulation record never grows a serve baseline, and vice versa.
        let records = vec![serve_record(5_000, 0.1, 3.0), record("quick", 1, 2.0, 2)];
        let delta = HistoryDelta::from_records(&records).unwrap();
        assert!(delta.previous.is_none());
        assert!(delta.serve_p99_ratio().is_none());
    }

    #[test]
    fn serve_p99_regression_gates_even_when_wall_clock_is_flat() {
        let records = vec![
            serve_record(1_000_000, 10.0, 4.0),
            serve_record(1_000_000, 10.0, 9.0),
        ];
        let delta = HistoryDelta::from_records(&records).unwrap();
        assert_eq!(delta.wall_clock_ratio(), Some(1.0), "wall clock is flat");
        assert!(delta.regressed(1.0), "p99 more than doubled");
        assert!(!delta.regressed(1.5), "within a generous threshold");
        assert!(
            delta.render_text(1.0).contains("REGRESSION"),
            "{}",
            delta.render_text(1.0)
        );
    }

    #[test]
    fn pre_throughput_history_lines_still_parse() {
        // A line appended before the events fields existed: defaults kick in.
        let line = r#"{"git_rev":"a0a1151933a9","scale":"paper","trials":3,"threads":1,
            "total_wall_clock_secs":37.2,"experiments":[
            {"experiment":"fig5","rows":18,"wall_clock_secs":8.5}]}"#
            .replace('\n', "");
        let back: HistoryRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.total_events_processed, 0);
        assert_eq!(back.peak_rss_bytes, 0);
        assert_eq!(back.experiments[0].events_processed, 0);
        assert_eq!(back.experiments[0].events_per_sec, 0.0);
        assert_eq!(back.experiments[0].peak_rss_bytes, 0);
    }

    #[test]
    fn record_carries_the_run_peak_and_renders_it() {
        let mut options = SuiteOptions::quick_smoke();
        options.experiments.truncate(1);
        let artifacts = run_suite(&options, |_| ()).unwrap();
        let record = HistoryRecord::from_artifacts(&artifacts).unwrap();
        assert_eq!(
            record.peak_rss_bytes, artifacts[0].provenance.peak_rss_bytes,
            "run peak is the max over per-experiment high-water marks"
        );
        assert!(record.peak_rss_bytes > 0, "VmHWM is readable on Linux");
        let delta = HistoryDelta {
            latest: record,
            previous: None,
        };
        assert!(delta.render_text(0.25).contains("peak RSS"));
    }

    #[test]
    fn load_history_reads_appended_lines_and_rejects_garbage() {
        let path =
            std::env::temp_dir().join(format!("scoop-lab-loadhist-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        record("quick", 1, 1.0, 1).append_to(&path).unwrap();
        record("quick", 1, 1.5, 1).append_to(&path).unwrap();
        let records = load_history(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::write(&path, "not json\n").unwrap();
        assert!(load_history(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
