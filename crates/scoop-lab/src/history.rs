//! Per-commit performance history (`BENCH_history.jsonl`).
//!
//! Every `scoop-lab run --history <file>` appends one JSON line recording
//! the wall-clock of each experiment in the run, keyed by git revision. CI
//! appends a line per commit, turning the file into a coarse perf
//! trajectory — enough to spot a simulation slowdown without a dedicated
//! benchmarking service. JSONL appends never rewrite history, so the file is
//! merge-friendly.

use crate::artifact::Artifact;
use scoop_types::ScoopError;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One experiment's timing within a history record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTiming {
    /// Experiment slug.
    pub experiment: String,
    /// Rows produced.
    pub rows: usize,
    /// Wall-clock seconds.
    pub wall_clock_secs: f64,
}

/// One appended line of `BENCH_history.jsonl`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Git revision the suite ran at.
    pub git_rev: String,
    /// Scale name (`"paper"` / `"quick"`).
    pub scale: String,
    /// Trials per scenario.
    pub trials: usize,
    /// Sweep worker threads.
    pub threads: usize,
    /// Sum of per-experiment wall-clocks.
    pub total_wall_clock_secs: f64,
    /// Per-experiment timings, in suite order.
    pub experiments: Vec<ExperimentTiming>,
}

impl HistoryRecord {
    /// Summarizes one finished suite run.
    pub fn from_artifacts(artifacts: &[Artifact]) -> Option<HistoryRecord> {
        let first = artifacts.first()?;
        let experiments: Vec<ExperimentTiming> = artifacts
            .iter()
            .map(|a| ExperimentTiming {
                experiment: a.experiment.clone(),
                rows: a.rows.len(),
                wall_clock_secs: a.provenance.wall_clock_secs,
            })
            .collect();
        Some(HistoryRecord {
            git_rev: first.provenance.git_rev.clone(),
            scale: first.scale.clone(),
            trials: first.trials,
            threads: first.provenance.threads,
            total_wall_clock_secs: experiments.iter().map(|e| e.wall_clock_secs).sum(),
            experiments,
        })
    }

    /// Appends this record as one line of `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> Result<(), ScoopError> {
        let line =
            serde_json::to_string(self).map_err(|e| ScoopError::Serialization(e.to_string()))?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))?;
        writeln!(file, "{line}")
            .map_err(|e| ScoopError::Artifact(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_suite, SuiteOptions};

    #[test]
    fn record_summarizes_and_appends_jsonl() {
        let mut options = SuiteOptions::quick_smoke();
        options.experiments.truncate(2);
        let artifacts = run_suite(&options, |_| ()).unwrap();
        let record = HistoryRecord::from_artifacts(&artifacts).unwrap();
        assert_eq!(record.experiments.len(), 2);
        assert!(record.total_wall_clock_secs >= 0.0);
        assert_eq!(record.scale, "quick");

        let path =
            std::env::temp_dir().join(format!("scoop-lab-history-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        record.append_to(&path).unwrap();
        record.append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back: HistoryRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(back, record);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_run_yields_no_record() {
        assert!(HistoryRecord::from_artifacts(&[]).is_none());
    }
}
