//! The circular flash data buffer holding readings a node owns.
//!
//! "If o == n, store data locally on n: write data to the circular data
//! buffer. (Notice that the data buffer is separate from the recent readings
//! buffer...)" (Section 5.4). Queries scan this buffer linearly for tuples
//! matching a time range and value range (Section 5.5).

use scoop_types::{Reading, SimTime, StorageIndexId, Value, ValueRange};
use serde::{Deserialize, Serialize};

/// A reading as stored in the owner's flash, tagged with the storage-index
/// epoch under which it was stored (used when answering historical queries
/// that span multiple index epochs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredReading {
    /// The reading itself (producer, attribute, value, sample timestamp).
    pub reading: Reading,
    /// When the owner stored it.
    pub stored_at: SimTime,
    /// The storage index epoch that routed the reading here.
    pub index_epoch: StorageIndexId,
}

/// A circular buffer of stored readings with flash-style semantics: when it
/// fills up, the oldest readings are overwritten.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataBuffer {
    capacity: usize,
    slots: Vec<StoredReading>,
    next: usize,
    /// Total number of readings ever written (monotone, used for flash energy
    /// accounting and the storage-success metric).
    writes: u64,
    /// Number of writes that overwrote a still-live older reading.
    overwrites: u64,
}

impl DataBuffer {
    /// Creates a buffer holding at most `capacity` readings.
    pub fn new(capacity: usize) -> Self {
        DataBuffer {
            capacity: capacity.max(1),
            slots: Vec::new(),
            next: 0,
            writes: 0,
            overwrites: 0,
        }
    }

    /// Capacity in readings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of readings currently stored.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of readings ever written to this buffer.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Number of writes that displaced an older stored reading.
    pub fn total_overwrites(&self) -> u64 {
        self.overwrites
    }

    /// Stores a reading.
    pub fn store(&mut self, reading: Reading, stored_at: SimTime, index_epoch: StorageIndexId) {
        self.writes += 1;
        let entry = StoredReading {
            reading,
            stored_at,
            index_epoch,
        };
        if self.slots.len() < self.capacity {
            self.slots.push(entry);
            self.next = self.slots.len() % self.capacity;
        } else {
            self.overwrites += 1;
            self.slots[self.next] = entry;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Linearly scans the buffer for readings whose value lies in
    /// `value_range` and whose *sample* timestamp lies in `[time_lo, time_hi]`
    /// — exactly what a node does when it receives a query addressed to it.
    pub fn scan(
        &self,
        value_range: &ValueRange,
        time_lo: SimTime,
        time_hi: SimTime,
    ) -> Vec<Reading> {
        self.slots
            .iter()
            .filter(|s| {
                value_range.contains(s.reading.value)
                    && s.reading.timestamp >= time_lo
                    && s.reading.timestamp <= time_hi
            })
            .map(|s| s.reading)
            .collect()
    }

    /// Scans for readings produced by any of the listed values regardless of
    /// time (convenience for tests).
    pub fn scan_values(&self, values: &[Value]) -> Vec<Reading> {
        self.slots
            .iter()
            .filter(|s| values.contains(&s.reading.value))
            .map(|s| s.reading)
            .collect()
    }

    /// Iterates over everything currently stored.
    pub fn iter(&self) -> impl Iterator<Item = &StoredReading> {
        self.slots.iter()
    }

    /// Copies every reading written after the point captured by `cursor` — a
    /// value previously returned by this method, or `0` for "from the
    /// beginning" — into `out`, in write order, and returns the new cursor.
    ///
    /// This is how an external consumer (the serving tier feeding its query
    /// index, or a persistence drain) follows the buffer incrementally
    /// without rescanning it: keep the returned cursor, call again later.
    /// The buffer is circular, so if more than `capacity` writes happened
    /// since the cursor was taken the overwritten readings are gone — only
    /// the surviving newest ones are copied, and the shortfall
    /// `(writes - cursor) - copied` counts the misses.
    pub fn read_new_since(&self, cursor: u64, out: &mut Vec<StoredReading>) -> u64 {
        // Write number `w` (0-based) lives in slot `w % capacity`: during the
        // fill phase `w < len <= capacity` so the modulo is the identity, and
        // once full the overwrite pointer advances exactly one slot per
        // write. Only the last `len` writes are still present.
        let start = cursor.max(self.writes.saturating_sub(self.slots.len() as u64));
        for w in start..self.writes {
            out.push(self.slots[(w % self.capacity as u64) as usize]);
        }
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{Attribute, NodeId};

    fn reading(producer: u16, v: Value, t: u64) -> Reading {
        Reading::new(NodeId(producer), Attribute::Light, v, SimTime::from_secs(t))
    }

    #[test]
    fn store_and_scan_by_value_and_time() {
        let mut buf = DataBuffer::new(100);
        for t in 0..20 {
            buf.store(
                reading(2, (t % 10) as Value, t),
                SimTime::from_secs(t + 1),
                StorageIndexId(1),
            );
        }
        let hits = buf.scan(
            &ValueRange::new(3, 5),
            SimTime::from_secs(0),
            SimTime::from_secs(100),
        );
        assert_eq!(hits.len(), 6); // values 3,4,5 appear twice each
        assert!(hits.iter().all(|r| (3..=5).contains(&r.value)));

        let narrow = buf.scan(
            &ValueRange::new(3, 5),
            SimTime::from_secs(0),
            SimTime::from_secs(9),
        );
        assert_eq!(narrow.len(), 3, "time filter halves the matches");
    }

    #[test]
    fn circular_overwrite_keeps_most_recent() {
        let mut buf = DataBuffer::new(5);
        for t in 0..12 {
            buf.store(
                reading(1, t as Value, t),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.total_writes(), 12);
        assert_eq!(buf.total_overwrites(), 7);
        let all = buf.scan(
            &ValueRange::new(0, 100),
            SimTime::ZERO,
            SimTime::from_secs(100),
        );
        let mut vals: Vec<Value> = all.iter().map(|r| r.value).collect();
        vals.sort();
        assert_eq!(vals, vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn empty_scan() {
        let buf = DataBuffer::new(10);
        assert!(buf
            .scan(
                &ValueRange::new(0, 100),
                SimTime::ZERO,
                SimTime::from_secs(10)
            )
            .is_empty());
        assert!(buf.is_empty());
    }

    #[test]
    fn epoch_tags_are_preserved() {
        let mut buf = DataBuffer::new(10);
        buf.store(reading(3, 7, 1), SimTime::from_secs(2), StorageIndexId(4));
        let stored: Vec<&StoredReading> = buf.iter().collect();
        assert_eq!(stored.len(), 1);
        assert_eq!(stored[0].index_epoch, StorageIndexId(4));
        assert_eq!(stored[0].stored_at, SimTime::from_secs(2));
    }

    #[test]
    fn cursor_follows_writes_incrementally() {
        let mut buf = DataBuffer::new(100);
        let mut out = Vec::new();
        assert_eq!(buf.read_new_since(0, &mut out), 0);
        assert!(out.is_empty());

        for t in 0..4 {
            buf.store(
                reading(1, t as Value, t),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        let cursor = buf.read_new_since(0, &mut out);
        assert_eq!(cursor, 4);
        assert_eq!(
            out.iter().map(|s| s.reading.value).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "write order"
        );

        // Nothing new: the cursor is a fixed point.
        out.clear();
        assert_eq!(buf.read_new_since(cursor, &mut out), 4);
        assert!(out.is_empty());

        // Two more writes: only those are returned.
        for t in 4..6 {
            buf.store(
                reading(1, t as Value, t),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        let cursor = buf.read_new_since(cursor, &mut out);
        assert_eq!(cursor, 6);
        assert_eq!(
            out.iter().map(|s| s.reading.value).collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn cursor_skips_readings_lost_to_circular_overwrite() {
        let mut buf = DataBuffer::new(5);
        for t in 0..12 {
            buf.store(
                reading(1, t as Value, t),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        // Cursor 2 is 10 writes behind on a 5-slot buffer: writes 2..7 were
        // overwritten, only the surviving last 5 come back, still in order.
        let mut out = Vec::new();
        let cursor = buf.read_new_since(2, &mut out);
        assert_eq!(cursor, 12);
        assert_eq!(
            out.iter().map(|s| s.reading.value).collect::<Vec<_>>(),
            vec![7, 8, 9, 10, 11]
        );
        let missed = (12 - 2) - out.len() as u64;
        assert_eq!(missed, 5);
    }

    #[test]
    fn scan_values_convenience() {
        let mut buf = DataBuffer::new(10);
        buf.store(reading(1, 5, 1), SimTime::from_secs(1), StorageIndexId(1));
        buf.store(reading(1, 9, 2), SimTime::from_secs(2), StorageIndexId(1));
        assert_eq!(buf.scan_values(&[9]).len(), 1);
        assert_eq!(buf.scan_values(&[1, 2]).len(), 0);
    }
}
