//! Node-local storage: the recent-readings ring buffer, the circular flash
//! data buffer, and a flash capacity/energy model.
//!
//! Two separate buffers exist on every node, exactly as in Sections 5.2 and
//! 5.4 of the paper:
//!
//! * the **recent-readings buffer** (capacity 30) holds the node's *own* most
//!   recent samples and is only used to build the summary histogram;
//! * the **data buffer** is the circular buffer in flash holding the readings
//!   the node *owns* according to the storage index (which may come from any
//!   producer in the network). Queries scan this buffer linearly.
//!
//! The flash model reproduces the sizing arithmetic from Section 5.5: "With a
//! megabyte of Flash memory, a Scoop node can store about 670,000 12-bit
//! sensor readings."

#![warn(missing_docs)]

pub mod data_buffer;
pub mod flash;
pub mod persist;
pub mod ring;

pub use data_buffer::{DataBuffer, StoredReading};
pub use flash::{FlashLedger, FlashModel};
pub use persist::{FailpointBackend, FlashPersistence, InMemoryBackend, PersistenceBackend};
pub use ring::RecentReadings;
