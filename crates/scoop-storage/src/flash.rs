//! Flash sizing and energy model.
//!
//! Section 2.1 and Section 5.5 give the calibration points: a 12-bit reading,
//! about 670,000 readings per megabyte of flash (i.e. readings are stored
//! with a little framing overhead), 28 nJ per bit written, and reads
//! "substantially cheaper". At a 10 Hz sample rate a megabyte therefore holds
//! about 1,000 minutes of history.

use scoop_types::NodeId;
use serde::{Deserialize, Serialize};

/// Capacity and energy model of a node's flash chip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlashModel {
    /// Flash size in bytes (default 1 MiB, as in the paper's arithmetic).
    pub bytes: u64,
    /// Bits of raw sensor data per reading (paper: 12).
    pub bits_per_reading: u64,
    /// Effective storage cost per reading in bits, including framing
    /// (timestamp, producer id). Chosen so that 1 MB ≈ 670,000 readings.
    pub stored_bits_per_reading: u64,
    /// Energy to write one bit, in nanojoules (paper: ~28 nJ).
    pub write_nj_per_bit: f64,
    /// Energy to read one bit, in nanojoules.
    pub read_nj_per_bit: f64,
}

impl Default for FlashModel {
    fn default() -> Self {
        FlashModel {
            bytes: 1 << 20,
            bits_per_reading: 12,
            // 2^23 bits / 670,000 readings ≈ 12.5 bits per stored reading.
            stored_bits_per_reading: 12,
            write_nj_per_bit: 28.0,
            read_nj_per_bit: 7.0,
        }
    }
}

impl FlashModel {
    /// A model for a flash chip of `megabytes` MiB.
    pub fn with_megabytes(megabytes: u64) -> Self {
        FlashModel {
            bytes: megabytes << 20,
            ..Self::default()
        }
    }

    /// How many readings fit in the chip.
    pub fn capacity_readings(&self) -> u64 {
        (self.bytes * 8) / self.stored_bits_per_reading.max(1)
    }

    /// How many seconds of history fit at the given sample rate (Hz).
    pub fn history_seconds(&self, sample_hz: f64) -> f64 {
        if sample_hz <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_readings() as f64 / sample_hz
    }

    /// Energy in joules to write `readings` readings.
    pub fn write_energy_joules(&self, readings: u64) -> f64 {
        readings as f64 * self.stored_bits_per_reading as f64 * self.write_nj_per_bit * 1e-9
    }

    /// Energy in joules to read (scan) `readings` readings.
    pub fn read_energy_joules(&self, readings: u64) -> f64 {
        readings as f64 * self.stored_bits_per_reading as f64 * self.read_nj_per_bit * 1e-9
    }
}

/// Per-node flash write accounting against one shared [`FlashModel`] — the
/// piece that connects the paper's energy arithmetic to the persistence seam.
///
/// Every batch a node drains toward a [`PersistenceBackend`] is charged to
/// that node's chip here: total writes, write energy in joules, and whether
/// the chip has wrapped (more lifetime writes than `capacity_readings()`,
/// i.e. the circular buffer is overwriting history). The ledger is pure
/// bookkeeping — it never refuses a write, exactly like the simulated
/// [`DataBuffer`](crate::DataBuffer) it mirrors.
///
/// [`PersistenceBackend`]: crate::PersistenceBackend
#[derive(Clone, Debug)]
pub struct FlashLedger {
    model: FlashModel,
    writes: Vec<u64>,
}

impl FlashLedger {
    /// A ledger for `nodes` nodes (including the basestation), all sharing
    /// the same chip model. Charging a node beyond the initial count grows
    /// the ledger on demand.
    pub fn new(model: FlashModel, nodes: usize) -> Self {
        FlashLedger {
            model,
            writes: vec![0; nodes],
        }
    }

    /// The chip model the charges are priced against.
    pub fn model(&self) -> &FlashModel {
        &self.model
    }

    /// Charges `readings` flash writes to `node`'s chip.
    pub fn charge_writes(&mut self, node: NodeId, readings: u64) {
        let i = node.index();
        if i >= self.writes.len() {
            self.writes.resize(i + 1, 0);
        }
        self.writes[i] += readings;
    }

    /// Lifetime readings written to `node`'s chip.
    pub fn writes(&self, node: NodeId) -> u64 {
        self.writes.get(node.index()).copied().unwrap_or(0)
    }

    /// Energy `node` has spent writing flash, in joules.
    pub fn write_energy_joules(&self, node: NodeId) -> f64 {
        self.model.write_energy_joules(self.writes(node))
    }

    /// Lifetime readings written across every node.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total flash write energy across every node, in joules.
    pub fn total_write_energy_joules(&self) -> f64 {
        self.model.write_energy_joules(self.total_writes())
    }

    /// Nodes whose lifetime writes exceed the chip capacity — their circular
    /// buffers have started overwriting history.
    pub fn wrapped_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let cap = self.model.capacity_readings();
        self.writes
            .iter()
            .enumerate()
            .filter(move |(_, &w)| w > cap)
            .map(|(i, _)| NodeId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_holds_roughly_670k_readings() {
        let f = FlashModel::default();
        let cap = f.capacity_readings();
        assert!(
            (600_000..=750_000).contains(&cap),
            "paper says ~670,000 12-bit readings per MB, got {cap}"
        );
    }

    #[test]
    fn ten_hz_gives_about_a_thousand_minutes_of_history() {
        let f = FlashModel::default();
        let minutes = f.history_seconds(10.0) / 60.0;
        assert!(
            (900.0..=1_300.0).contains(&minutes),
            "paper says ~1,000 minutes at 10 Hz, got {minutes}"
        );
    }

    #[test]
    fn bigger_chips_hold_more() {
        let f1 = FlashModel::with_megabytes(1);
        let f4 = FlashModel::with_megabytes(4);
        let ratio = f4.capacity_readings() as f64 / f1.capacity_readings() as f64;
        assert!((ratio - 4.0).abs() < 0.001, "ratio {ratio}");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let f = FlashModel::default();
        assert!(f.write_energy_joules(1000) > f.read_energy_joules(1000));
        assert!(f.write_energy_joules(0) == 0.0);
    }

    #[test]
    fn zero_sample_rate_means_unbounded_history() {
        let f = FlashModel::default();
        assert!(f.history_seconds(0.0).is_infinite());
    }

    #[test]
    fn ledger_charges_per_node_and_prices_energy() {
        let mut ledger = FlashLedger::new(FlashModel::default(), 3);
        ledger.charge_writes(NodeId(1), 1_000);
        ledger.charge_writes(NodeId(2), 500);
        ledger.charge_writes(NodeId(1), 1);
        assert_eq!(ledger.writes(NodeId(1)), 1_001);
        assert_eq!(ledger.writes(NodeId(2)), 500);
        assert_eq!(ledger.writes(NodeId(0)), 0);
        assert_eq!(ledger.total_writes(), 1_501);
        assert_eq!(
            ledger.write_energy_joules(NodeId(1)),
            ledger.model().write_energy_joules(1_001)
        );
        assert_eq!(
            ledger.total_write_energy_joules(),
            ledger.model().write_energy_joules(1_501)
        );
        // Charging past the initial node count grows the ledger on demand.
        ledger.charge_writes(NodeId(9), 7);
        assert_eq!(ledger.writes(NodeId(9)), 7);
        assert_eq!(ledger.writes(NodeId(20)), 0, "unknown nodes read as zero");
    }

    #[test]
    fn wrapped_nodes_are_the_ones_past_chip_capacity() {
        // A tiny 16-byte chip: capacity_readings = 128 bits / 12 ≈ 10.
        let model = FlashModel {
            bytes: 16,
            ..FlashModel::default()
        };
        let cap = model.capacity_readings();
        let mut ledger = FlashLedger::new(model, 3);
        ledger.charge_writes(NodeId(1), cap);
        ledger.charge_writes(NodeId(2), cap + 1);
        let wrapped: Vec<NodeId> = ledger.wrapped_nodes().collect();
        assert_eq!(wrapped, vec![NodeId(2)], "exactly-full is not wrapped");
    }
}
