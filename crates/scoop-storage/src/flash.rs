//! Flash sizing and energy model.
//!
//! Section 2.1 and Section 5.5 give the calibration points: a 12-bit reading,
//! about 670,000 readings per megabyte of flash (i.e. readings are stored
//! with a little framing overhead), 28 nJ per bit written, and reads
//! "substantially cheaper". At a 10 Hz sample rate a megabyte therefore holds
//! about 1,000 minutes of history.

use serde::{Deserialize, Serialize};

/// Capacity and energy model of a node's flash chip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlashModel {
    /// Flash size in bytes (default 1 MiB, as in the paper's arithmetic).
    pub bytes: u64,
    /// Bits of raw sensor data per reading (paper: 12).
    pub bits_per_reading: u64,
    /// Effective storage cost per reading in bits, including framing
    /// (timestamp, producer id). Chosen so that 1 MB ≈ 670,000 readings.
    pub stored_bits_per_reading: u64,
    /// Energy to write one bit, in nanojoules (paper: ~28 nJ).
    pub write_nj_per_bit: f64,
    /// Energy to read one bit, in nanojoules.
    pub read_nj_per_bit: f64,
}

impl Default for FlashModel {
    fn default() -> Self {
        FlashModel {
            bytes: 1 << 20,
            bits_per_reading: 12,
            // 2^23 bits / 670,000 readings ≈ 12.5 bits per stored reading.
            stored_bits_per_reading: 12,
            write_nj_per_bit: 28.0,
            read_nj_per_bit: 7.0,
        }
    }
}

impl FlashModel {
    /// A model for a flash chip of `megabytes` MiB.
    pub fn with_megabytes(megabytes: u64) -> Self {
        FlashModel {
            bytes: megabytes << 20,
            ..Self::default()
        }
    }

    /// How many readings fit in the chip.
    pub fn capacity_readings(&self) -> u64 {
        (self.bytes * 8) / self.stored_bits_per_reading.max(1)
    }

    /// How many seconds of history fit at the given sample rate (Hz).
    pub fn history_seconds(&self, sample_hz: f64) -> f64 {
        if sample_hz <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_readings() as f64 / sample_hz
    }

    /// Energy in joules to write `readings` readings.
    pub fn write_energy_joules(&self, readings: u64) -> f64 {
        readings as f64 * self.stored_bits_per_reading as f64 * self.write_nj_per_bit * 1e-9
    }

    /// Energy in joules to read (scan) `readings` readings.
    pub fn read_energy_joules(&self, readings: u64) -> f64 {
        readings as f64 * self.stored_bits_per_reading as f64 * self.read_nj_per_bit * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_holds_roughly_670k_readings() {
        let f = FlashModel::default();
        let cap = f.capacity_readings();
        assert!(
            (600_000..=750_000).contains(&cap),
            "paper says ~670,000 12-bit readings per MB, got {cap}"
        );
    }

    #[test]
    fn ten_hz_gives_about_a_thousand_minutes_of_history() {
        let f = FlashModel::default();
        let minutes = f.history_seconds(10.0) / 60.0;
        assert!(
            (900.0..=1_300.0).contains(&minutes),
            "paper says ~1,000 minutes at 10 Hz, got {minutes}"
        );
    }

    #[test]
    fn bigger_chips_hold_more() {
        let f1 = FlashModel::with_megabytes(1);
        let f4 = FlashModel::with_megabytes(4);
        let ratio = f4.capacity_readings() as f64 / f1.capacity_readings() as f64;
        assert!((ratio - 4.0).abs() < 0.001, "ratio {ratio}");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let f = FlashModel::default();
        assert!(f.write_energy_joules(1000) > f.read_energy_joules(1000));
        assert!(f.write_energy_joules(0) == 0.0);
    }

    #[test]
    fn zero_sample_rate_means_unbounded_history() {
        let f = FlashModel::default();
        assert!(f.history_seconds(0.0).is_infinite());
    }
}
