//! Pluggable persistence behind the basestation store.
//!
//! Everything the simulator stores lives in in-memory [`DataBuffer`]s and
//! dies with the process. [`PersistenceBackend`] is the seam that changes
//! that *without touching the simulation*: a backend receives batches of
//! [`StoredReading`]s after (or outside) a run and makes them durable. The
//! in-memory default, [`InMemoryBackend`], reproduces today's behavior
//! exactly — readings are held in RAM and lost on drop — so attaching a
//! backend is strictly opt-in and the simulation's byte-identity is
//! untouched. The disk implementation lives in the `scoop-store` crate
//! (crash-safe segment log + learned time index).
//!
//! [`DataBuffer`]: crate::DataBuffer

use crate::data_buffer::StoredReading;
use scoop_types::ScoopError;

/// A sink that makes basestation readings durable.
///
/// Implementations must tolerate empty batches and must make `sync` a
/// commit point: after `sync` returns `Ok`, every previously appended
/// reading survives a crash of the process (for backends that persist at
/// all — the in-memory default trivially "commits" to RAM).
pub trait PersistenceBackend {
    /// Appends a batch of readings. Batches arrive in the order the caller
    /// drains them; time-ordering requirements (if any) are the backend's
    /// own contract.
    fn append_batch(&mut self, batch: &[StoredReading]) -> Result<(), ScoopError>;

    /// Commits everything appended so far.
    fn sync(&mut self) -> Result<(), ScoopError>;

    /// Total readings accepted by `append_batch` over this backend's life.
    fn records_persisted(&self) -> u64;
}

/// The default backend: readings stay in memory, exactly as before this
/// trait existed. Useful as a test double and as the explicit statement
/// that persistence is opt-in.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    readings: Vec<StoredReading>,
}

impl InMemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        InMemoryBackend::default()
    }

    /// Everything appended so far, in arrival order.
    pub fn readings(&self) -> &[StoredReading] {
        &self.readings
    }
}

impl PersistenceBackend for InMemoryBackend {
    fn append_batch(&mut self, batch: &[StoredReading]) -> Result<(), ScoopError> {
        self.readings.extend_from_slice(batch);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), ScoopError> {
        Ok(())
    }

    fn records_persisted(&self) -> u64 {
        self.readings.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataBuffer;
    use scoop_types::{Attribute, NodeId, Reading, SimTime, StorageIndexId};

    #[test]
    fn in_memory_backend_accumulates_and_counts() {
        let mut buf = DataBuffer::new(8);
        for t in 0..5u64 {
            buf.store(
                Reading::new(NodeId(1), Attribute::Light, t as i32, SimTime::from_secs(t)),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        let batch: Vec<StoredReading> = buf.iter().copied().collect();

        let mut backend = InMemoryBackend::new();
        backend.append_batch(&[]).unwrap();
        backend.append_batch(&batch).unwrap();
        backend.sync().unwrap();
        assert_eq!(backend.records_persisted(), 5);
        assert_eq!(backend.readings().len(), 5);
        assert_eq!(backend.readings()[0].reading.value, 0);
    }
}
