//! Pluggable persistence behind the basestation store.
//!
//! Everything the simulator stores lives in in-memory [`DataBuffer`]s and
//! dies with the process. [`PersistenceBackend`] is the seam that changes
//! that *without touching the simulation*: a backend receives batches of
//! [`StoredReading`]s after (or outside) a run and makes them durable. The
//! in-memory default, [`InMemoryBackend`], reproduces today's behavior
//! exactly — readings are held in RAM and lost on drop — so attaching a
//! backend is strictly opt-in and the simulation's byte-identity is
//! untouched. The disk implementation lives in the `scoop-store` crate
//! (crash-safe segment log + learned time index).
//!
//! [`DataBuffer`]: crate::DataBuffer

use crate::data_buffer::StoredReading;
use crate::flash::{FlashLedger, FlashModel};
use scoop_types::{NodeId, ScoopError};

/// A sink that makes basestation readings durable.
///
/// Implementations must tolerate empty batches and must make `sync` a
/// commit point: after `sync` returns `Ok`, every previously appended
/// reading survives a crash of the process (for backends that persist at
/// all — the in-memory default trivially "commits" to RAM).
pub trait PersistenceBackend {
    /// Appends a batch of readings. Batches arrive in the order the caller
    /// drains them; time-ordering requirements (if any) are the backend's
    /// own contract.
    fn append_batch(&mut self, batch: &[StoredReading]) -> Result<(), ScoopError>;

    /// Commits everything appended so far.
    fn sync(&mut self) -> Result<(), ScoopError>;

    /// Total readings accepted by `append_batch` over this backend's life.
    fn records_persisted(&self) -> u64;
}

/// The default backend: readings stay in memory, exactly as before this
/// trait existed. Useful as a test double and as the explicit statement
/// that persistence is opt-in.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    readings: Vec<StoredReading>,
}

impl InMemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        InMemoryBackend::default()
    }

    /// Everything appended so far, in arrival order.
    pub fn readings(&self) -> &[StoredReading] {
        &self.readings
    }
}

impl PersistenceBackend for InMemoryBackend {
    fn append_batch(&mut self, batch: &[StoredReading]) -> Result<(), ScoopError> {
        self.readings.extend_from_slice(batch);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), ScoopError> {
        Ok(())
    }

    fn records_persisted(&self) -> u64 {
        self.readings.len() as u64
    }
}

/// A fault-injecting [`PersistenceBackend`] wrapper: scripted IO failures
/// and torn writes at the seam.
///
/// The script is a set of call indices (0-based, counted per method): when
/// `append_batch` call `i` is scripted to fail, the first
/// [`torn_write_keep`](Self::torn_write_keep) records of that batch still
/// reach the inner backend — a torn write, the prefix is durable and the
/// rest is gone — and the call returns a typed [`ScoopError::Store`].
/// Scripted `sync` failures reject the commit point the same way. Calls not
/// in the script pass through untouched, so a `FailpointBackend` with an
/// empty script is behaviorally the inner backend.
///
/// This exists to prove the *callers* degrade correctly: `scoop-serve
/// --persist` must turn a dying disk into a typed error and keep serving
/// from memory, never panic or silently drop queries.
#[derive(Debug)]
pub struct FailpointBackend<B> {
    inner: B,
    fail_appends: Vec<u64>,
    fail_syncs: Vec<u64>,
    torn_keep: usize,
    appends_seen: u64,
    syncs_seen: u64,
    injected: u64,
}

impl<B: PersistenceBackend> FailpointBackend<B> {
    /// Wraps `inner` with an empty failure script.
    pub fn new(inner: B) -> Self {
        FailpointBackend {
            inner,
            fail_appends: Vec::new(),
            fail_syncs: Vec::new(),
            torn_keep: 0,
            appends_seen: 0,
            syncs_seen: 0,
            injected: 0,
        }
    }

    /// Scripts the `index`-th `append_batch` call (0-based) to fail.
    pub fn fail_append_at(mut self, index: u64) -> Self {
        self.fail_appends.push(index);
        self
    }

    /// Scripts the `index`-th `sync` call (0-based) to fail.
    pub fn fail_sync_at(mut self, index: u64) -> Self {
        self.fail_syncs.push(index);
        self
    }

    /// Records of a failing batch that still land before the error — the
    /// torn-write prefix. Defaults to 0 (the whole batch is lost).
    pub fn torn_write_keep(mut self, records: usize) -> Self {
        self.torn_keep = records;
        self
    }

    /// Failures injected so far.
    pub fn failures_injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps into the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: PersistenceBackend> PersistenceBackend for FailpointBackend<B> {
    fn append_batch(&mut self, batch: &[StoredReading]) -> Result<(), ScoopError> {
        let call = self.appends_seen;
        self.appends_seen += 1;
        if self.fail_appends.contains(&call) {
            self.injected += 1;
            let kept = self.torn_keep.min(batch.len());
            self.inner.append_batch(&batch[..kept])?;
            return Err(ScoopError::Store(format!(
                "failpoint: injected append failure at call {call} \
                 (torn write kept {kept} of {} records)",
                batch.len()
            )));
        }
        self.inner.append_batch(batch)
    }

    fn sync(&mut self) -> Result<(), ScoopError> {
        let call = self.syncs_seen;
        self.syncs_seen += 1;
        if self.fail_syncs.contains(&call) {
            self.injected += 1;
            return Err(ScoopError::Store(format!(
                "failpoint: injected sync failure at call {call}"
            )));
        }
        self.inner.sync()
    }

    fn records_persisted(&self) -> u64 {
        self.inner.records_persisted()
    }
}

/// The per-node flash models wired to the persistence seam.
///
/// A [`FlashPersistence`] wraps any [`PersistenceBackend`] and charges every
/// batch drained from a node's data buffer to that node's entry in a
/// [`FlashLedger`] before forwarding the bytes to the inner backend. The
/// owner is explicit — [`append_node_batch`](FlashPersistence::append_node_batch)
/// — because flash is spent on the chip of the node that *stores* a reading,
/// which under Scoop's index routing is usually not its producer.
///
/// The wrapper adds accounting only: the inner backend sees exactly the
/// batches it would have seen without it.
pub struct FlashPersistence<B> {
    backend: B,
    ledger: FlashLedger,
}

impl<B: PersistenceBackend> FlashPersistence<B> {
    /// Wraps `backend`, modelling `nodes` chips of the given `model`.
    pub fn new(backend: B, model: FlashModel, nodes: usize) -> Self {
        FlashPersistence {
            backend,
            ledger: FlashLedger::new(model, nodes),
        }
    }

    /// Appends a batch drained from `owner`'s data buffer: charges the
    /// owner's flash model for the writes, then forwards to the backend.
    pub fn append_node_batch(
        &mut self,
        owner: NodeId,
        batch: &[StoredReading],
    ) -> Result<(), ScoopError> {
        self.ledger.charge_writes(owner, batch.len() as u64);
        self.backend.append_batch(batch)
    }

    /// Commits everything appended so far (see
    /// [`PersistenceBackend::sync`]).
    pub fn sync(&mut self) -> Result<(), ScoopError> {
        self.backend.sync()
    }

    /// Total readings forwarded to the inner backend.
    pub fn records_persisted(&self) -> u64 {
        self.backend.records_persisted()
    }

    /// The per-node flash accounting accumulated so far.
    pub fn ledger(&self) -> &FlashLedger {
        &self.ledger
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Unwraps into the inner backend, dropping the ledger.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataBuffer;
    use scoop_types::{Attribute, Reading, SimTime, StorageIndexId};

    #[test]
    fn in_memory_backend_accumulates_and_counts() {
        let mut buf = DataBuffer::new(8);
        for t in 0..5u64 {
            buf.store(
                Reading::new(NodeId(1), Attribute::Light, t as i32, SimTime::from_secs(t)),
                SimTime::from_secs(t),
                StorageIndexId(1),
            );
        }
        let batch: Vec<StoredReading> = buf.iter().copied().collect();

        let mut backend = InMemoryBackend::new();
        backend.append_batch(&[]).unwrap();
        backend.append_batch(&batch).unwrap();
        backend.sync().unwrap();
        assert_eq!(backend.records_persisted(), 5);
        assert_eq!(backend.readings().len(), 5);
        assert_eq!(backend.readings()[0].reading.value, 0);
    }

    #[test]
    fn failpoints_fire_at_their_scripted_calls_and_tear_writes() {
        let stored = |t: u64| StoredReading {
            reading: Reading::new(NodeId(1), Attribute::Light, t as i32, SimTime::from_secs(t)),
            stored_at: SimTime::from_secs(t),
            index_epoch: StorageIndexId(1),
        };
        let batch: Vec<StoredReading> = (0..4).map(stored).collect();
        let mut backend = FailpointBackend::new(InMemoryBackend::new())
            .fail_append_at(1)
            .fail_sync_at(0)
            .torn_write_keep(3);

        // Call 0 passes through untouched.
        backend.append_batch(&batch).unwrap();
        assert_eq!(backend.records_persisted(), 4);

        // Call 1 tears: the 3-record prefix lands, then the typed error.
        let err = backend.append_batch(&batch).expect_err("scripted failure");
        let shown = err.to_string();
        assert!(shown.contains("torn write kept 3 of 4"), "{shown}");
        assert!(matches!(err, ScoopError::Store(_)), "typed as Store");
        assert_eq!(backend.records_persisted(), 7, "prefix is durable");
        assert_eq!(backend.inner().readings()[4].reading.value, 0);

        // Call 2 is past the script: clean again.
        backend.append_batch(&batch).unwrap();
        assert_eq!(backend.records_persisted(), 11);

        // The first commit point is scripted away; the second works.
        let err = backend.sync().expect_err("scripted sync failure");
        assert!(matches!(err, ScoopError::Store(_)));
        backend.sync().unwrap();
        assert_eq!(backend.failures_injected(), 2);
        assert_eq!(backend.into_inner().readings().len(), 11);
    }

    #[test]
    fn flash_persistence_charges_the_owner_and_forwards_batches() {
        let stored = |producer: u16, t: u64| StoredReading {
            reading: Reading::new(
                NodeId(producer),
                Attribute::Light,
                t as i32,
                SimTime::from_secs(t),
            ),
            stored_at: SimTime::from_secs(t),
            index_epoch: StorageIndexId(1),
        };
        let mut persist = FlashPersistence::new(InMemoryBackend::new(), FlashModel::default(), 4);

        // Node 3 owns readings produced by node 1: the *owner*'s chip pays.
        let batch: Vec<StoredReading> = (0..6).map(|t| stored(1, t)).collect();
        persist.append_node_batch(NodeId(3), &batch).unwrap();
        persist.append_node_batch(NodeId(2), &batch[..2]).unwrap();
        persist.append_node_batch(NodeId(3), &[]).unwrap();
        persist.sync().unwrap();

        assert_eq!(persist.ledger().writes(NodeId(3)), 6);
        assert_eq!(persist.ledger().writes(NodeId(2)), 2);
        assert_eq!(
            persist.ledger().writes(NodeId(1)),
            0,
            "producer pays nothing"
        );
        assert!(persist.ledger().write_energy_joules(NodeId(3)) > 0.0);
        assert_eq!(persist.records_persisted(), 8);
        assert_eq!(persist.backend().readings().len(), 8);
        assert_eq!(persist.into_backend().readings().len(), 8);
    }
}
