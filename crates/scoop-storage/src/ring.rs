//! The recent-readings ring buffer.
//!
//! "A node needs its own recent readings to build this histogram and,
//! therefore, writes its own readings in round-robin fashion to a fixed-size
//! recent-readings buffer (size 30, in our experiments). This ensures that
//! summary messages always contain histograms over the node's most recent
//! data." (Section 5.2)

use scoop_types::{Reading, Value};
use serde::{Deserialize, Serialize};

/// A fixed-capacity ring buffer of the node's own most recent readings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecentReadings {
    capacity: usize,
    slots: Vec<Reading>,
    /// Index of the slot the next reading will overwrite.
    next: usize,
    /// Total readings ever pushed (may exceed capacity).
    pushed: u64,
}

impl RecentReadings {
    /// Creates a ring holding at most `capacity` readings (30 in the paper).
    pub fn new(capacity: usize) -> Self {
        RecentReadings {
            capacity: capacity.max(1),
            slots: Vec::new(),
            next: 0,
            pushed: 0,
        }
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of readings currently held (at most `capacity`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of readings ever recorded.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records a reading, overwriting the oldest one if the ring is full.
    pub fn push(&mut self, reading: Reading) {
        self.pushed += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(reading);
            self.next = self.slots.len() % self.capacity;
        } else {
            self.slots[self.next] = reading;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Iterates over the currently held readings (order unspecified — the
    /// histogram does not care).
    pub fn iter(&self) -> impl Iterator<Item = &Reading> {
        self.slots.iter()
    }

    /// The held readings' values.
    pub fn values(&self) -> Vec<Value> {
        self.slots.iter().map(|r| r.value).collect()
    }

    /// The smallest value currently held.
    pub fn min_value(&self) -> Option<Value> {
        self.slots.iter().map(|r| r.value).min()
    }

    /// The largest value currently held.
    pub fn max_value(&self) -> Option<Value> {
        self.slots.iter().map(|r| r.value).max()
    }

    /// The sum of the values currently held (the summary reports it).
    pub fn sum(&self) -> i64 {
        self.slots.iter().map(|r| r.value as i64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{Attribute, NodeId, SimTime};

    fn reading(v: Value, t: u64) -> Reading {
        Reading::new(NodeId(1), Attribute::Light, v, SimTime::from_secs(t))
    }

    #[test]
    fn fills_up_to_capacity() {
        let mut ring = RecentReadings::new(5);
        for i in 0..3 {
            ring.push(reading(i, i as u64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 3);
        assert_eq!(ring.min_value(), Some(0));
        assert_eq!(ring.max_value(), Some(2));
        assert_eq!(ring.sum(), 3);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = RecentReadings::new(3);
        for i in 0..10 {
            ring.push(reading(i, i as u64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 10);
        let mut vals = ring.values();
        vals.sort();
        assert_eq!(vals, vec![7, 8, 9], "only the most recent readings remain");
    }

    #[test]
    fn empty_ring_statistics() {
        let ring = RecentReadings::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.min_value(), None);
        assert_eq!(ring.max_value(), None);
        assert_eq!(ring.sum(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = RecentReadings::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(reading(5, 0));
        ring.push(reading(6, 1));
        assert_eq!(ring.values(), vec![6]);
    }

    #[test]
    fn paper_default_capacity_is_thirty() {
        let mut ring = RecentReadings::new(30);
        for i in 0..100 {
            ring.push(reading(i % 7, i as u64));
        }
        assert_eq!(ring.len(), 30);
    }
}
