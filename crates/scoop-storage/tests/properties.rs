//! Property-based tests for the storage buffers.

use proptest::prelude::*;
use scoop_storage::{DataBuffer, RecentReadings};
use scoop_types::{Attribute, NodeId, Reading, SimTime, StorageIndexId, Value, ValueRange};

fn reading(v: Value, t: u64) -> Reading {
    Reading::new(NodeId(1), Attribute::Light, v, SimTime::from_secs(t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The recent-readings ring never exceeds its capacity and always holds
    /// exactly the most recent readings.
    #[test]
    fn ring_holds_most_recent_readings(
        capacity in 1usize..40,
        values in proptest::collection::vec(-200i32..200, 1..120),
    ) {
        let mut ring = RecentReadings::new(capacity);
        for (t, &v) in values.iter().enumerate() {
            ring.push(reading(v, t as u64));
        }
        prop_assert!(ring.len() <= capacity);
        prop_assert_eq!(ring.len(), values.len().min(capacity));
        prop_assert_eq!(ring.total_pushed(), values.len() as u64);
        let expected: Vec<Value> = values[values.len().saturating_sub(capacity)..].to_vec();
        let mut got = ring.values();
        let mut want = expected.clone();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
        // min / max / sum agree with the retained window.
        prop_assert_eq!(ring.min_value(), expected.iter().min().copied());
        prop_assert_eq!(ring.max_value(), expected.iter().max().copied());
        prop_assert_eq!(ring.sum(), expected.iter().map(|&v| v as i64).sum::<i64>());
    }

    /// Scanning the data buffer returns exactly the stored readings matching
    /// both the value range and the time range, and never more than were
    /// stored.
    #[test]
    fn data_buffer_scan_matches_filter(
        capacity in 4usize..200,
        entries in proptest::collection::vec((0i32..100, 0u64..500), 1..150),
        vlo in 0i32..100, vwidth in 0i32..60,
        tlo in 0u64..400, twidth in 0u64..200,
    ) {
        let mut buf = DataBuffer::new(capacity);
        for &(v, t) in &entries {
            buf.store(reading(v, t), SimTime::from_secs(t), StorageIndexId(1));
        }
        prop_assert!(buf.len() <= capacity);
        prop_assert_eq!(buf.total_writes(), entries.len() as u64);

        let vrange = ValueRange::new(vlo, vlo + vwidth);
        let t_lo = SimTime::from_secs(tlo);
        let t_hi = SimTime::from_secs(tlo + twidth);
        let hits = buf.scan(&vrange, t_lo, t_hi);
        // Every hit satisfies the predicate.
        for r in &hits {
            prop_assert!(vrange.contains(r.value));
            prop_assert!(r.timestamp >= t_lo && r.timestamp <= t_hi);
        }
        // The buffer only "forgets" by overwriting oldest entries, so the hit
        // count can never exceed the number of matching entries overall.
        let matching_total = entries
            .iter()
            .filter(|&&(v, t)| vrange.contains(v) && t >= tlo && t <= tlo + twidth)
            .count();
        prop_assert!(hits.len() <= matching_total);
        // And with enough capacity it returns them all.
        if entries.len() <= capacity {
            prop_assert_eq!(hits.len(), matching_total);
        }
    }
}
