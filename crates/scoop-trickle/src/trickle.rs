//! The Trickle timer / suppression state machine.
//!
//! This is a faithful, event-driven implementation of the algorithm from
//! Levis et al.: the caller owns the clock and asks the state machine what to
//! do next. The state machine is generic over the *version* being gossiped
//! (Scoop uses the storage-index id); payload transport is the caller's job.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Trickle timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrickleConfig {
    /// Minimum round length τ_min.
    pub tau_min: SimDuration,
    /// Maximum round length τ_max.
    pub tau_max: SimDuration,
    /// Redundancy constant k: suppress our broadcast if we heard at least
    /// this many consistent transmissions in the current round.
    pub redundancy: u32,
}

impl Default for TrickleConfig {
    fn default() -> Self {
        TrickleConfig {
            tau_min: SimDuration::from_millis(1_000),
            tau_max: SimDuration::from_secs(60),
            redundancy: 2,
        }
    }
}

/// What the caller should do after feeding an event into the state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrickleAction {
    /// Do nothing for now.
    None,
    /// Broadcast our current version/payload now.
    Broadcast,
    /// Re-arm a timer to call [`TrickleState::on_timer`] at the given time.
    SetTimer(SimTime),
}

/// Per-node Trickle state for one disseminated object.
#[derive(Clone, Debug)]
pub struct TrickleState {
    config: TrickleConfig,
    /// Current round length.
    tau: SimDuration,
    /// Start of the current round.
    round_start: SimTime,
    /// The instant within the current round at which we will consider
    /// broadcasting.
    fire_at: SimTime,
    /// Whether the fire instant for this round has already passed.
    fired_this_round: bool,
    /// Consistent transmissions heard this round.
    heard: u32,
    /// The version of the object we currently hold.
    version: u64,
    rng: StdRng,
}

impl TrickleState {
    /// Creates Trickle state holding `version`, seeded for determinism.
    pub fn new(config: TrickleConfig, version: u64, seed: u64, now: SimTime) -> Self {
        let mut st = TrickleState {
            config,
            tau: config.tau_min,
            round_start: now,
            fire_at: now,
            fired_this_round: false,
            heard: 0,
            version,
            rng: StdRng::seed_from_u64(seed ^ TRICKLE_SEED_SALT),
        };
        st.schedule_round(now);
        st
    }

    /// The version this node currently holds.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The current round length (exposed for tests and diagnostics).
    pub fn tau(&self) -> SimDuration {
        self.tau
    }

    /// Starts a new round at `now`, drawing the fire instant uniformly from
    /// the second half of the round.
    fn schedule_round(&mut self, now: SimTime) {
        self.round_start = now;
        self.heard = 0;
        self.fired_this_round = false;
        let half = self.tau.as_millis() / 2;
        let offset = half + self.rng.gen_range(0..=half.max(1));
        self.fire_at = now + SimDuration::from_millis(offset);
    }

    /// The caller should arm its next timer for this instant.
    pub fn next_timer(&self) -> SimTime {
        if self.fired_this_round {
            self.round_start + self.tau
        } else {
            self.fire_at
        }
    }

    /// Locally installs a newer version (e.g. the basestation produced a new
    /// storage index). Resets the round length so the news propagates fast.
    pub fn set_version(&mut self, version: u64, now: SimTime) -> TrickleAction {
        if version > self.version {
            self.version = version;
            self.tau = self.config.tau_min;
            self.schedule_round(now);
            TrickleAction::SetTimer(self.next_timer())
        } else {
            TrickleAction::None
        }
    }

    /// Processes an overheard advertisement of `version` from a neighbor.
    ///
    /// * same version  → counts toward suppression,
    /// * older version → the neighbor is behind; reset τ so we re-advertise
    ///   quickly (and the caller may want to re-send data to help it),
    /// * newer version → adopt it (the caller is responsible for fetching /
    ///   assembling the payload) and reset τ.
    ///
    /// Returns the action the caller should take.
    pub fn on_heard(&mut self, version: u64, now: SimTime) -> TrickleAction {
        use std::cmp::Ordering;
        match version.cmp(&self.version) {
            Ordering::Equal => {
                self.heard += 1;
                TrickleAction::None
            }
            Ordering::Less => {
                // Inconsistency: someone is behind. Reset to spread the word.
                self.tau = self.config.tau_min;
                self.schedule_round(now);
                TrickleAction::SetTimer(self.next_timer())
            }
            Ordering::Greater => {
                self.version = version;
                self.tau = self.config.tau_min;
                self.schedule_round(now);
                TrickleAction::SetTimer(self.next_timer())
            }
        }
    }

    /// Called when the caller's timer fires. Returns [`TrickleAction::Broadcast`]
    /// if the node should transmit its advertisement now; in all cases the
    /// caller should then re-arm using [`TrickleState::next_timer`].
    pub fn on_timer(&mut self, now: SimTime) -> TrickleAction {
        if !self.fired_this_round && now >= self.fire_at {
            self.fired_this_round = true;
            if self.heard < self.config.redundancy {
                return TrickleAction::Broadcast;
            }
            return TrickleAction::None;
        }
        if now >= self.round_start + self.tau {
            // Round over: double τ (capped) and start the next round.
            let doubled = self.tau.as_millis().saturating_mul(2);
            self.tau = SimDuration::from_millis(doubled.min(self.config.tau_max.as_millis()));
            self.schedule_round(now);
        }
        TrickleAction::None
    }
}

/// Salt keeping Trickle's RNG stream independent from other per-seed streams.
const TRICKLE_SEED_SALT: u64 = 0x7416_c1e5;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrickleConfig {
        TrickleConfig {
            tau_min: SimDuration::from_secs(1),
            tau_max: SimDuration::from_secs(16),
            redundancy: 2,
        }
    }

    fn drive_until_broadcast(st: &mut TrickleState, limit: SimTime) -> Option<SimTime> {
        loop {
            let now = st.next_timer();
            if now > limit {
                return None;
            }
            if st.on_timer(now) == TrickleAction::Broadcast {
                return Some(now);
            }
        }
    }

    #[test]
    fn quiet_node_eventually_broadcasts() {
        let mut st = TrickleState::new(cfg(), 1, 42, SimTime::ZERO);
        let t = drive_until_broadcast(&mut st, SimTime::from_secs(10));
        assert!(t.is_some());
        let t = t.unwrap();
        assert!(
            t >= SimTime::from_millis(500),
            "fires in the second half of the round"
        );
        assert!(t <= SimTime::from_secs(1));
    }

    #[test]
    fn suppression_when_enough_consistent_traffic_heard() {
        let mut st = TrickleState::new(cfg(), 1, 42, SimTime::ZERO);
        st.on_heard(1, SimTime::from_millis(100));
        st.on_heard(1, SimTime::from_millis(200));
        // With redundancy 2 already satisfied, the fire instant produces no
        // broadcast this round.
        let action = st.on_timer(st.next_timer());
        assert_eq!(action, TrickleAction::None);
    }

    #[test]
    fn tau_doubles_when_consistent_and_resets_on_news() {
        let mut st = TrickleState::new(cfg(), 1, 7, SimTime::ZERO);
        // Run several full rounds with no inconsistency.
        let mut now = SimTime::ZERO;
        for _ in 0..12 {
            now = st.next_timer();
            st.on_timer(now);
        }
        assert!(
            st.tau() > SimDuration::from_secs(1),
            "tau should have grown"
        );
        // A newer version resets tau to the minimum.
        let action = st.on_heard(2, now);
        assert!(matches!(action, TrickleAction::SetTimer(_)));
        assert_eq!(st.version(), 2);
        assert_eq!(st.tau(), SimDuration::from_secs(1));
    }

    #[test]
    fn hearing_an_older_version_resets_tau_but_keeps_ours() {
        let mut st = TrickleState::new(cfg(), 5, 7, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..8 {
            now = st.next_timer();
            st.on_timer(now);
        }
        let before = st.version();
        st.on_heard(3, now);
        assert_eq!(st.version(), before);
        assert_eq!(st.tau(), SimDuration::from_secs(1));
    }

    #[test]
    fn set_version_only_moves_forward() {
        let mut st = TrickleState::new(cfg(), 5, 7, SimTime::ZERO);
        assert_eq!(
            st.set_version(4, SimTime::from_secs(1)),
            TrickleAction::None
        );
        assert_eq!(st.version(), 5);
        assert!(matches!(
            st.set_version(9, SimTime::from_secs(1)),
            TrickleAction::SetTimer(_)
        ));
        assert_eq!(st.version(), 9);
    }

    #[test]
    fn tau_never_exceeds_max() {
        let mut st = TrickleState::new(cfg(), 1, 3, SimTime::ZERO);
        for _ in 0..100 {
            let t = st.next_timer();
            st.on_timer(t);
        }
        assert!(st.tau() <= SimDuration::from_secs(16));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TrickleState::new(cfg(), 1, 9, SimTime::ZERO);
        let mut b = TrickleState::new(cfg(), 1, 9, SimTime::ZERO);
        for _ in 0..20 {
            let ta = a.next_timer();
            let tb = b.next_timer();
            assert_eq!(ta, tb);
            assert_eq!(a.on_timer(ta), b.on_timer(tb));
        }
    }
}
