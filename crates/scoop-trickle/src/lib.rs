//! Trickle-style dissemination.
//!
//! Scoop uses Trickle (Levis et al. [13]) twice:
//!
//! * to disseminate **storage index chunks** ("mapping messages") from the
//!   basestation to every node, and
//! * in a modified form to disseminate **query packets**, where a node only
//!   re-broadcasts a query if doing so can still help: its own bit is set in
//!   the query's node bitmap, or one of its neighbors or descendants is
//!   targeted (Section 5.5).
//!
//! Trickle's core idea is polite gossip: each node divides time into rounds
//! of length τ, picks a random instant in the second half of each round to
//! broadcast its current version, and suppresses that broadcast if it has
//! already heard `k` consistent transmissions this round. When a node hears
//! a *newer* version than its own it resets τ to the minimum so news spreads
//! quickly; when the network is consistent τ doubles up to a maximum so
//! steady-state traffic decays.

#![warn(missing_docs)]

pub mod chunker;
pub mod trickle;

pub use chunker::{Chunk, ChunkAssembler, Chunker};
pub use trickle::{TrickleAction, TrickleConfig, TrickleState};
