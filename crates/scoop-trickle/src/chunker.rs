//! Splitting large disseminated objects into packet-sized chunks and
//! reassembling them.
//!
//! "After generating a storage index, the basestation splits it into
//! different mapping messages since it is unlikely to fit in a single network
//! packet. ... When a node has received all chunks for one storage index, it
//! starts using that storage index, discarding the older index."
//! (Section 5.3). Chunks may arrive out of order, duplicated, or not at all;
//! a node only switches to a version it has assembled completely and
//! otherwise keeps using its previous complete version.

use serde::{Deserialize, Serialize};

/// One packet-sized piece of a disseminated object of some version.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk<T> {
    /// Version of the object this chunk belongs to.
    pub version: u64,
    /// Index of this chunk within the object.
    pub index: u32,
    /// Total number of chunks the object was split into.
    pub total: u32,
    /// The items carried by this chunk.
    pub items: Vec<T>,
}

/// Splits a list of items into chunks of at most `items_per_chunk`.
#[derive(Clone, Copy, Debug)]
pub struct Chunker {
    items_per_chunk: usize,
}

impl Chunker {
    /// Creates a chunker. `items_per_chunk` is clamped to at least 1.
    pub fn new(items_per_chunk: usize) -> Self {
        Chunker {
            items_per_chunk: items_per_chunk.max(1),
        }
    }

    /// Splits `items` into chunks labelled with `version`.
    ///
    /// An empty item list still produces a single (empty) chunk so that the
    /// version can be disseminated and assembled.
    pub fn split<T: Clone>(&self, version: u64, items: &[T]) -> Vec<Chunk<T>> {
        if items.is_empty() {
            return vec![Chunk {
                version,
                index: 0,
                total: 1,
                items: Vec::new(),
            }];
        }
        let total = items.len().div_ceil(self.items_per_chunk) as u32;
        items
            .chunks(self.items_per_chunk)
            .enumerate()
            .map(|(i, slice)| Chunk {
                version,
                index: i as u32,
                total,
                items: slice.to_vec(),
            })
            .collect()
    }
}

/// Reassembles chunks of the newest version seen so far.
///
/// The assembler only tracks one version at a time: when it sees a chunk of a
/// newer version it abandons the partial older assembly (matching the paper's
/// behaviour of nodes that keep using their last *complete* index while a new
/// one trickles in).
#[derive(Clone, Debug, Default)]
pub struct ChunkAssembler<T> {
    version: u64,
    total: u32,
    received: Vec<Option<Vec<T>>>,
}

impl<T: Clone> ChunkAssembler<T> {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        ChunkAssembler {
            version: 0,
            total: 0,
            received: Vec::new(),
        }
    }

    /// The version currently being assembled (0 if none yet).
    pub fn assembling_version(&self) -> u64 {
        self.version
    }

    /// Number of chunks still missing for the version being assembled.
    pub fn missing(&self) -> u32 {
        if self.total == 0 {
            return 0;
        }
        self.total - self.received.iter().filter(|c| c.is_some()).count() as u32
    }

    /// Feeds one received chunk. Returns `Some(items)` with the fully
    /// reassembled object the moment the last missing chunk of the current
    /// version arrives; otherwise `None`.
    pub fn accept(&mut self, chunk: &Chunk<T>) -> Option<Vec<T>> {
        if chunk.total == 0 || chunk.index >= chunk.total {
            return None;
        }
        if chunk.version < self.version {
            // A stale chunk from an older dissemination: ignore.
            return None;
        }
        if chunk.version > self.version || self.received.len() != chunk.total as usize {
            // Start assembling the newer version from scratch.
            self.version = chunk.version;
            self.total = chunk.total;
            self.received = vec![None; chunk.total as usize];
        }
        let slot = &mut self.received[chunk.index as usize];
        if slot.is_none() {
            *slot = Some(chunk.items.clone());
        }
        if self.received.iter().all(|c| c.is_some()) {
            let assembled = self
                .received
                .iter()
                .flat_map(|c| c.as_ref().unwrap().iter().cloned())
                .collect();
            Some(assembled)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes_and_counts() {
        let chunker = Chunker::new(3);
        let items: Vec<u32> = (0..8).collect();
        let chunks = chunker.split(5, &items);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.total == 3 && c.version == 5));
        assert_eq!(chunks[0].items, vec![0, 1, 2]);
        assert_eq!(chunks[2].items, vec![6, 7]);
    }

    #[test]
    fn empty_object_still_produces_one_chunk() {
        let chunker = Chunker::new(4);
        let chunks = chunker.split::<u32>(9, &[]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].total, 1);
        let mut asm = ChunkAssembler::new();
        assert_eq!(asm.accept(&chunks[0]), Some(vec![]));
    }

    #[test]
    fn in_order_reassembly() {
        let chunker = Chunker::new(2);
        let items: Vec<u32> = (0..7).collect();
        let chunks = chunker.split(1, &items);
        let mut asm = ChunkAssembler::new();
        let mut result = None;
        for c in &chunks {
            result = asm.accept(c);
        }
        assert_eq!(result, Some(items));
    }

    #[test]
    fn out_of_order_and_duplicate_chunks() {
        let chunker = Chunker::new(2);
        let items: Vec<u32> = (0..6).collect();
        let mut chunks = chunker.split(1, &items);
        chunks.reverse();
        let mut asm = ChunkAssembler::new();
        assert_eq!(asm.accept(&chunks[0]), None);
        assert_eq!(asm.accept(&chunks[0]), None, "duplicates are harmless");
        assert_eq!(asm.accept(&chunks[1]), None);
        assert_eq!(asm.missing(), 1);
        assert_eq!(asm.accept(&chunks[2]), Some(items));
    }

    #[test]
    fn newer_version_preempts_partial_older_one() {
        let chunker = Chunker::new(2);
        let old = chunker.split(1, &(0..6).collect::<Vec<u32>>());
        let new_items: Vec<u32> = (100..104).collect();
        let new = chunker.split(2, &new_items);
        let mut asm = ChunkAssembler::new();
        asm.accept(&old[0]);
        asm.accept(&new[0]);
        assert_eq!(asm.assembling_version(), 2);
        // Old chunks are now ignored entirely.
        assert_eq!(asm.accept(&old[1]), None);
        assert_eq!(asm.accept(&old[2]), None);
        assert_eq!(asm.accept(&new[1]), Some(new_items));
    }

    #[test]
    fn malformed_chunks_are_rejected() {
        let mut asm: ChunkAssembler<u32> = ChunkAssembler::new();
        assert_eq!(
            asm.accept(&Chunk {
                version: 1,
                index: 5,
                total: 2,
                items: vec![]
            }),
            None
        );
        assert_eq!(
            asm.accept(&Chunk {
                version: 1,
                index: 0,
                total: 0,
                items: vec![]
            }),
            None
        );
        assert_eq!(asm.assembling_version(), 0);
    }

    #[test]
    fn single_item_chunking() {
        let chunker = Chunker::new(1);
        let chunks = chunker.split(3, &[10u32, 20, 30]);
        assert_eq!(chunks.len(), 3);
        let mut asm = ChunkAssembler::new();
        let mut out = None;
        for c in &chunks {
            out = asm.accept(c);
        }
        assert_eq!(out, Some(vec![10, 20, 30]));
    }
}
