//! Property-based tests for the Scoop core: the statistics store's path
//! estimates, the cost model's structural properties (P1-P3 from Section 4),
//! and the index builder's output invariants.

use proptest::prelude::*;
use scoop_core::histogram::SummaryHistogram;
use scoop_core::index::{IndexBuilder, IndexBuilderConfig, IndexDecision};
use scoop_core::summary::{ReportedNeighbor, SummaryMessage};
use scoop_core::{CostModel, CostParams, StatsStore};
use scoop_types::{NodeId, SimTime, StorageIndexId, Value, ValueRange};

/// Builds a stats store for `n` sensors arranged in a chain with the given
/// per-node value centres.
fn chain_store(centres: &[Value], domain: ValueRange) -> StatsStore {
    let n = centres.len();
    let mut st = StatsStore::new(n + 1, domain);
    for (i, &centre) in centres.iter().enumerate() {
        let id = i + 1;
        let values: Vec<Value> = (0..20)
            .map(|k| (centre + (k % 3) - 1).clamp(domain.lo, domain.hi))
            .collect();
        let mut neighbors = vec![ReportedNeighbor {
            node: NodeId((id - 1) as u16),
            quality: 0.9,
        }];
        if id < n {
            neighbors.push(ReportedNeighbor {
                node: NodeId((id + 1) as u16),
                quality: 0.9,
            });
        }
        st.record_summary(SummaryMessage {
            node: NodeId(id as u16),
            histogram: SummaryHistogram::build(&values, 10),
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            sum: values.iter().map(|&v| v as i64).sum(),
            count: values.len() as u32,
            data_rate_hz: 1.0 / 15.0,
            neighbors,
            parent: Some(NodeId((id - 1) as u16)),
            newest_complete_index: StorageIndexId(1),
            generated_at: SimTime::from_secs(60),
        });
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// xmits() is a pseudometric on the known part of the network: zero on
    /// the diagonal, symmetric, and satisfying the triangle inequality.
    #[test]
    fn xmits_is_a_pseudometric(
        centres in proptest::collection::vec(0i32..100, 2..10),
    ) {
        let domain = ValueRange::new(0, 99);
        let mut st = chain_store(&centres, domain);
        let n = st.total_nodes();
        for a in 0..n {
            for b in 0..n {
                let ab = st.xmits(NodeId(a as u16), NodeId(b as u16));
                let ba = st.xmits(NodeId(b as u16), NodeId(a as u16));
                prop_assert!((ab - ba).abs() < 1e-9, "xmits not symmetric: {ab} vs {ba}");
                if a == b {
                    prop_assert_eq!(ab, 0.0);
                } else {
                    prop_assert!(ab >= 1.0, "one hop costs at least one transmission, got {ab}");
                }
                for c in 0..n {
                    let ac = st.xmits(NodeId(a as u16), NodeId(c as u16));
                    let cb = st.xmits(NodeId(c as u16), NodeId(b as u16));
                    prop_assert!(ab <= ac + cb + 1e-9, "triangle violated");
                }
            }
        }
    }

    /// The cost model's placement cost is non-negative and monotone in the
    /// query rate (P2): raising the query rate never makes a far-from-root
    /// placement cheaper relative to the root.
    #[test]
    fn query_rate_monotonically_penalizes_distant_owners(
        centres in proptest::collection::vec(0i32..100, 3..8),
        value in 0i32..100,
        rate_a in 0.0f64..0.2,
        rate_extra in 0.001f64..2.0,
    ) {
        let domain = ValueRange::new(0, 99);
        let st = chain_store(&centres, domain);
        let far = NodeId(centres.len() as u16); // end of the chain
        let slow = CostModel::new(&st, CostParams::with_query_rate(rate_a));
        let fast = CostModel::new(&st, CostParams::with_query_rate(rate_a + rate_extra));
        let margin_slow = slow.placement_cost(far, value) - slow.placement_cost(NodeId::BASESTATION, value);
        let margin_fast = fast.placement_cost(far, value) - fast.placement_cost(NodeId::BASESTATION, value);
        prop_assert!(slow.placement_cost(far, value) >= 0.0);
        prop_assert!(
            margin_fast >= margin_slow - 1e-9,
            "more querying should penalize the distant owner at least as much"
        );
    }

    /// The index builder always produces a complete index over the domain
    /// whose owners are valid node ids, regardless of the data distribution
    /// or query rate.
    #[test]
    fn index_builder_output_is_well_formed(
        centres in proptest::collection::vec(0i32..100, 2..10),
        query_rate in 0.0f64..2.0,
    ) {
        let domain = ValueRange::new(0, 99);
        let st = chain_store(&centres, domain);
        let builder = IndexBuilder::new(IndexBuilderConfig::default());
        let decision = builder.build(
            &st,
            CostParams::with_query_rate(query_rate),
            StorageIndexId(7),
            SimTime::from_secs(300),
        );
        let index = match decision {
            IndexDecision::UseIndex(i) => i,
            IndexDecision::StoreLocal { index, .. } => index,
        };
        prop_assert!(index.is_complete());
        prop_assert_eq!(index.id(), StorageIndexId(7));
        let n = st.total_nodes();
        for entry in index.entries() {
            prop_assert!(entry.owner.index() < n, "owner {} out of range", entry.owner);
            prop_assert!(domain.covers(&entry.range));
        }
        // Entries are sorted and contiguous.
        prop_assert_eq!(index.entries().first().map(|e| e.range.lo), Some(domain.lo));
        prop_assert_eq!(index.entries().last().map(|e| e.range.hi), Some(domain.hi));
    }

    /// With zero query rate, placing a value at a node that produces it is
    /// never more expensive than placing it anywhere else (P1/P3).
    #[test]
    fn producers_are_optimal_owners_without_queries(
        centres in proptest::collection::vec(5i32..95, 2..8),
        which in 0usize..8,
    ) {
        let domain = ValueRange::new(0, 99);
        let st = chain_store(&centres, domain);
        let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
        let idx = which % centres.len();
        let producer = NodeId((idx + 1) as u16);
        let value = centres[idx];
        let at_producer = model.placement_cost(producer, value);
        for candidate in st.candidate_owners() {
            prop_assert!(
                at_producer <= model.placement_cost(candidate, value) + 1e-9,
                "placing {value} away from its producer should not be cheaper"
            );
        }
    }
}
