//! Summary messages.
//!
//! "A summary message contains a coarse histogram over recent data, some
//! network topology information, as well as the lowest, highest, and sum of
//! all values over recent data, as well as the ID of the last complete
//! storage index it has received from the basestation." (Section 5.2)

use crate::histogram::SummaryHistogram;
use scoop_types::{NodeId, SimTime, StorageIndexId, Value};
use serde::{Deserialize, Serialize};

/// One neighbor as reported in a summary's topology section.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportedNeighbor {
    /// The neighbor's id.
    pub node: NodeId,
    /// The reporting node's estimate of how well it hears this neighbor
    /// (delivery probability in `[0, 1]`).
    pub quality: f64,
}

/// The periodic per-node statistics report sent up the tree to the
/// basestation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryMessage {
    /// The reporting node.
    pub node: NodeId,
    /// Histogram over the node's recent-readings buffer (absent if the node
    /// has not sampled anything yet).
    pub histogram: Option<SummaryHistogram>,
    /// Smallest recent value.
    pub min: Option<Value>,
    /// Largest recent value.
    pub max: Option<Value>,
    /// Sum of recent values (lets the basestation answer aggregate queries
    /// without touching the network).
    pub sum: i64,
    /// Number of readings in the recent window.
    pub count: u32,
    /// The node's current data production rate in readings per second.
    pub data_rate_hz: f64,
    /// The node's best-connected neighbors (at most 12), sorted by quality.
    pub neighbors: Vec<ReportedNeighbor>,
    /// The node's current routing-tree parent.
    pub parent: Option<NodeId>,
    /// The newest storage index the node has assembled completely.
    pub newest_complete_index: StorageIndexId,
    /// When the summary was generated at the node.
    pub generated_at: SimTime,
}

impl SummaryMessage {
    /// The paper's `P(p → v)` for this node, i.e. the probability the node's
    /// next reading equals `v`. Zero when the node has no histogram.
    pub fn probability_of(&self, v: Value) -> f64 {
        self.histogram
            .as_ref()
            .map(|h| h.probability_of(v))
            .unwrap_or(0.0)
    }

    /// Returns `true` if the node has produced any data recently.
    pub fn has_data(&self) -> bool {
        self.count > 0 && self.histogram.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(values: &[Value]) -> SummaryMessage {
        let histogram = SummaryHistogram::build(values, 10);
        SummaryMessage {
            node: NodeId(4),
            histogram,
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            sum: values.iter().map(|&v| v as i64).sum(),
            count: values.len() as u32,
            data_rate_hz: 1.0 / 15.0,
            neighbors: vec![ReportedNeighbor {
                node: NodeId(2),
                quality: 0.8,
            }],
            parent: Some(NodeId(2)),
            newest_complete_index: StorageIndexId(3),
            generated_at: SimTime::from_secs(100),
        }
    }

    #[test]
    fn probability_passthrough() {
        let s = summary(&[10, 10, 10, 20]);
        assert!(s.probability_of(10) > s.probability_of(20));
        assert_eq!(s.probability_of(99), 0.0);
        assert!(s.has_data());
    }

    #[test]
    fn empty_summary_has_no_data() {
        let s = summary(&[]);
        assert!(!s.has_data());
        assert_eq!(s.probability_of(5), 0.0);
        assert_eq!(s.min, None);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = summary(&[1, 2, 3, 4, 5]);
        let json = serde_json::to_string(&s).unwrap();
        let back: SummaryMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
