//! The basestation's query planner.
//!
//! "The basestation determines the set of nodes to be contacted for this
//! query by consulting the storage index(es) for the specified attribute(s)
//! and time-range(s). (Unlike nodes, the basestation never discards old
//! storage indices.) ... Since different storage indices may have been active
//! at the query time on different nodes, a particular value may be stored at
//! different network locations, rather than just one. For that reason, the
//! basestation examines all storage indices active at that time ... to
//! establish the overlapping set of all possible nodes that may have the
//! queried values." (Section 5.5)

use crate::index::StorageIndex;
use scoop_types::{NodeBitmap, NodeId, SimTime, StorageIndexId, ValueRange};

/// The outcome of planning one query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPlan {
    /// Every node that may hold matching readings and must be contacted.
    pub targets: NodeBitmap,
    /// The storage indices consulted to build the target set.
    pub indices_consulted: Vec<StorageIndexId>,
    /// `true` if the basestation itself may hold matching readings (it always
    /// checks its own buffer for free, and data that could not be routed ends
    /// up there).
    pub check_basestation: bool,
}

impl QueryPlan {
    /// Number of sensor nodes that must be contacted over the network.
    pub fn network_targets(&self) -> usize {
        self.targets.iter().filter(|n| !n.is_basestation()).count()
    }
}

/// Keeps every storage index ever created and plans queries against them.
#[derive(Clone, Debug, Default)]
pub struct QueryPlanner {
    /// Indices in creation order (ids strictly increasing).
    history: Vec<StorageIndex>,
}

impl QueryPlanner {
    /// An empty planner.
    pub fn new() -> Self {
        QueryPlanner {
            history: Vec::new(),
        }
    }

    /// Records a newly created storage index. Ignores ids that do not move
    /// forward (the basestation only ever creates increasing ids).
    pub fn record_index(&mut self, index: StorageIndex) {
        if self
            .history
            .last()
            .map(|last| index.id() > last.id())
            .unwrap_or(true)
        {
            self.history.push(index);
        }
    }

    /// Number of indices recorded.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no index has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The most recent index, if any.
    pub fn latest(&self) -> Option<&StorageIndex> {
        self.history.last()
    }

    /// The index with a specific id.
    pub fn get(&self, id: StorageIndexId) -> Option<&StorageIndex> {
        self.history.iter().find(|i| i.id() == id)
    }

    /// Plans a query over `values` for samples taken in `[time_lo, time_hi]`.
    ///
    /// `min_live_index` is the oldest index that may still be in use by some
    /// node (the minimum "newest complete index" across the latest summaries,
    /// [`crate::StatsStore::min_live_index`]): even if that index was not
    /// active during the queried time window, data produced *recently* by a
    /// lagging node may have been placed according to it, so its owners are
    /// included too.
    pub fn plan(
        &self,
        values: &ValueRange,
        time_lo: SimTime,
        time_hi: SimTime,
        min_live_index: StorageIndexId,
    ) -> QueryPlan {
        let mut targets = NodeBitmap::empty();
        let mut consulted = Vec::new();

        if self.history.is_empty() {
            // No index has ever been disseminated: every node stores locally,
            // so every node must be asked. The caller knows the node count;
            // we signal "flood" by returning an empty target set with
            // `check_basestation` and no consulted indices — the harness
            // treats an empty plan with no indices as "ask everyone".
            return QueryPlan {
                targets,
                indices_consulted: consulted,
                check_basestation: true,
            };
        }

        for (pos, index) in self.history.iter().enumerate() {
            let active_from = index.created_at();
            let active_until = self
                .history
                .get(pos + 1)
                .map(|next| next.created_at())
                .unwrap_or(SimTime(u64::MAX));
            // Relevant if the index was the active one during any part of the
            // queried time window, or if some lagging node may still be
            // placing data according to it (its id is at or above the oldest
            // "newest complete index" reported in summaries) and the window
            // extends past its creation.
            let was_active = active_from <= time_hi && time_lo < active_until;
            let may_still_be_used = (index.id() >= min_live_index
                || min_live_index == StorageIndexId::NONE)
                && time_hi >= active_from;
            if !(was_active || may_still_be_used) {
                continue;
            }
            consulted.push(index.id());
            for owner in index.owners_for_range(values) {
                targets.insert(owner);
            }
        }

        let check_basestation = targets.contains(NodeId::BASESTATION) || !consulted.is_empty();
        targets.remove(NodeId::BASESTATION);
        QueryPlan {
            targets,
            indices_consulted: consulted,
            check_basestation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::Value;

    fn index(id: u32, created_secs: u64, owner_low: NodeId, owner_high: NodeId) -> StorageIndex {
        // Values 0..=49 owned by `owner_low`, 50..=99 by `owner_high`.
        let domain = ValueRange::new(0, 99);
        let owners: Vec<NodeId> = (0..100)
            .map(|v| if v < 50 { owner_low } else { owner_high })
            .collect();
        StorageIndex::from_owners(
            StorageIndexId(id),
            domain,
            &owners,
            SimTime::from_secs(created_secs),
        )
        .unwrap()
    }

    #[test]
    fn empty_planner_floods() {
        let p = QueryPlanner::new();
        let plan = p.plan(
            &ValueRange::new(0, 9),
            SimTime::ZERO,
            SimTime::from_secs(100),
            StorageIndexId::NONE,
        );
        assert!(plan.targets.is_empty());
        assert!(plan.indices_consulted.is_empty());
        assert!(plan.check_basestation);
    }

    #[test]
    fn single_index_selects_owner_of_value_range() {
        let mut p = QueryPlanner::new();
        p.record_index(index(1, 600, NodeId(3), NodeId(7)));
        let plan = p.plan(
            &ValueRange::new(10, 20),
            SimTime::from_secs(700),
            SimTime::from_secs(800),
            StorageIndexId(1),
        );
        assert_eq!(plan.targets.iter().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(plan.indices_consulted, vec![StorageIndexId(1)]);
        // A range straddling both halves needs both owners.
        let plan = p.plan(
            &ValueRange::new(40, 60),
            SimTime::from_secs(700),
            SimTime::from_secs(800),
            StorageIndexId(1),
        );
        assert_eq!(plan.network_targets(), 2);
    }

    #[test]
    fn time_range_spanning_two_epochs_consults_both() {
        let mut p = QueryPlanner::new();
        p.record_index(index(1, 600, NodeId(3), NodeId(7)));
        p.record_index(index(2, 840, NodeId(4), NodeId(7)));
        // Query window covers both epochs; all nodes report index 2 as their
        // newest so only epoch overlap matters — both owners 3 and 4 appear.
        let plan = p.plan(
            &ValueRange::new(0, 9),
            SimTime::from_secs(700),
            SimTime::from_secs(900),
            StorageIndexId(2),
        );
        let targets: Vec<NodeId> = plan.targets.iter().collect();
        assert!(targets.contains(&NodeId(3)));
        assert!(targets.contains(&NodeId(4)));
        assert_eq!(plan.indices_consulted.len(), 2);
    }

    #[test]
    fn lagging_nodes_keep_old_indices_alive() {
        let mut p = QueryPlanner::new();
        p.record_index(index(1, 600, NodeId(3), NodeId(7)));
        p.record_index(index(2, 840, NodeId(4), NodeId(7)));
        // The query only covers the *newest* epoch's activation window, but
        // some node still reports index 1 as its newest complete index, so
        // owner 3 must also be contacted.
        let plan = p.plan(
            &ValueRange::new(0, 9),
            SimTime::from_secs(850),
            SimTime::from_secs(900),
            StorageIndexId(1),
        );
        let targets: Vec<NodeId> = plan.targets.iter().collect();
        assert!(
            targets.contains(&NodeId(3)),
            "old index still live somewhere"
        );
        assert!(targets.contains(&NodeId(4)));
    }

    #[test]
    fn basestation_owner_is_not_a_network_target() {
        let mut p = QueryPlanner::new();
        p.record_index(index(1, 600, NodeId::BASESTATION, NodeId(7)));
        let plan = p.plan(
            &ValueRange::new(0, 9),
            SimTime::from_secs(700),
            SimTime::from_secs(800),
            StorageIndexId(1),
        );
        assert_eq!(plan.network_targets(), 0);
        assert!(plan.check_basestation);
    }

    #[test]
    fn out_of_order_index_ids_are_rejected() {
        let mut p = QueryPlanner::new();
        p.record_index(index(5, 600, NodeId(1), NodeId(2)));
        p.record_index(index(3, 700, NodeId(8), NodeId(9)));
        assert_eq!(p.len(), 1);
        assert_eq!(p.latest().unwrap().id(), StorageIndexId(5));
        assert!(p.get(StorageIndexId(3)).is_none());
    }

    #[test]
    fn narrow_value_query_touches_few_nodes() {
        // Mimics the paper's observation that small query widths touch a
        // small subset of nodes: with one owner per 10-value stripe, a
        // 5-value query touches at most two owners.
        let domain = ValueRange::new(0, 99);
        let owners: Vec<NodeId> = (0..100)
            .map(|v: Value| NodeId((v / 10 + 1) as u16))
            .collect();
        let idx =
            StorageIndex::from_owners(StorageIndexId(1), domain, &owners, SimTime::from_secs(600))
                .unwrap();
        let mut p = QueryPlanner::new();
        p.record_index(idx);
        let plan = p.plan(
            &ValueRange::new(42, 46),
            SimTime::from_secs(700),
            SimTime::from_secs(710),
            StorageIndexId(1),
        );
        assert_eq!(plan.network_targets(), 1);
        let plan = p.plan(
            &ValueRange::new(0, 99),
            SimTime::from_secs(700),
            SimTime::from_secs(710),
            StorageIndexId(1),
        );
        assert_eq!(
            plan.network_targets(),
            10,
            "a full-domain query touches every owner"
        );
    }
}
