//! Placement extensions sketched in Section 4: owner sets and
//! range-granularity placement.
//!
//! * **Owner sets** — "pick multiple owners, i.e., an owner set, per value,
//!   thus allowing nodes to pick one nearby node from multiple owner
//!   candidates to store their data. ... Naively considering all possible
//!   owner sets makes the algorithm's time-complexity exponential in n.
//!   Hence, a more feasible approach is to consider only small owner sets."
//!   We implement the feasible variant: a greedy algorithm that keeps adding
//!   owners to a value's set while doing so lowers expected cost, up to a
//!   caller-supplied bound.
//! * **Range placement** — "modify the outer loop of the placement algorithm
//!   to consider a fixed set of ranges rather than a fixed set of values",
//!   trading index size and per-range query fan-out against per-value
//!   optimality.

use crate::cost::CostModel;
use crate::index::{IndexEntry, StorageIndex};
use crate::stats_store::StatsStore;
use scoop_types::{NodeId, SimTime, StorageIndexId, Value, ValueRange};
use serde::{Deserialize, Serialize};

/// A storage index in which each value range may have several owners;
/// producers send their data to the cheapest owner in the set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiOwnerIndex {
    /// The index epoch.
    pub id: StorageIndexId,
    /// The covered domain.
    pub domain: ValueRange,
    /// Per-value owner sets: entry `i` owns value `domain.lo + i`.
    pub owner_sets: Vec<Vec<NodeId>>,
}

impl MultiOwnerIndex {
    /// The owner set for value `v`.
    pub fn owners_of(&self, v: Value) -> &[NodeId] {
        let idx = (v - self.domain.lo) as usize;
        self.owner_sets.get(idx).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of `(value, owner)` pairs — proportional to the size of
    /// the disseminated representation.
    pub fn total_entries(&self) -> usize {
        self.owner_sets.iter().map(Vec::len).sum()
    }

    /// Number of nodes a query over `range` would have to contact.
    pub fn query_fanout(&self, range: &ValueRange) -> usize {
        let mut owners: Vec<NodeId> = range
            .values()
            .flat_map(|v| self.owners_of(v).iter().copied())
            .collect();
        owners.sort();
        owners.dedup();
        owners.len()
    }
}

/// Greedy owner-set construction: for every value, start from the single best
/// owner and keep adding the owner that most reduces the producers' expected
/// shipping cost, stopping when no addition helps or `max_owners` is reached.
///
/// The cost of a set is: every producer ships to its *cheapest* member, and
/// the basestation must query *every* member.
pub fn build_owner_sets(
    stats: &StatsStore,
    cost: &CostModel<'_>,
    id: StorageIndexId,
    max_owners: usize,
) -> MultiOwnerIndex {
    let domain = stats.domain();
    let candidates = stats.candidate_owners();
    let producers: Vec<(NodeId, f64)> = candidates
        .iter()
        .map(|&p| (p, stats.data_rate(p)))
        .filter(|&(_, r)| r > 0.0)
        .collect();
    let query_rate = cost.params().query_rate_hz;

    let set_cost = |v: Value, set: &[NodeId]| -> f64 {
        if set.is_empty() {
            return f64::INFINITY;
        }
        let mut total = 0.0;
        for &(p, rate) in &producers {
            let prob = stats.p_produces(p, v);
            if prob <= 0.0 {
                continue;
            }
            let cheapest = set
                .iter()
                .map(|&o| cost.xmits(p, o))
                .fold(f64::INFINITY, f64::min);
            total += prob * rate * cheapest;
        }
        let query_cost: f64 = set
            .iter()
            .map(|&o| 2.0 * cost.xmits(NodeId::BASESTATION, o))
            .sum();
        total + stats.p_queries(v) * query_rate * query_cost
    };

    let mut owner_sets = Vec::with_capacity(domain.width() as usize);
    for v in domain.values() {
        let (first, _) = cost.best_owner(v, &candidates);
        let mut set = vec![first];
        let mut current = set_cost(v, &set);
        while set.len() < max_owners.max(1) {
            let mut best_addition: Option<(NodeId, f64)> = None;
            for &cand in &candidates {
                if set.contains(&cand) {
                    continue;
                }
                let mut trial = set.clone();
                trial.push(cand);
                let c = set_cost(v, &trial);
                if c + 1e-9 < current && best_addition.map(|(_, bc)| c < bc).unwrap_or(true) {
                    best_addition = Some((cand, c));
                }
            }
            match best_addition {
                Some((cand, c)) => {
                    set.push(cand);
                    current = c;
                }
                None => break,
            }
        }
        set.sort();
        owner_sets.push(set);
    }
    MultiOwnerIndex {
        id,
        domain,
        owner_sets,
    }
}

/// Range-granularity placement: the domain is cut into fixed segments of
/// `segment_width` values and each whole segment is assigned the owner that
/// minimizes the summed per-value cost.
pub fn build_range_index(
    stats: &StatsStore,
    cost: &CostModel<'_>,
    id: StorageIndexId,
    segment_width: u32,
    now: SimTime,
) -> StorageIndex {
    let domain = stats.domain();
    let candidates = stats.candidate_owners();
    let width = segment_width.max(1) as Value;
    let mut entries = Vec::new();
    let mut lo = domain.lo;
    while lo <= domain.hi {
        let hi = (lo + width - 1).min(domain.hi);
        let segment = ValueRange::new(lo, hi);
        let mut best = (NodeId::BASESTATION, f64::INFINITY);
        for &o in &candidates {
            let c: f64 = segment.values().map(|v| cost.placement_cost(o, v)).sum();
            if c + 1e-12 < best.1 {
                best = (o, c);
            }
        }
        entries.push(IndexEntry {
            range: segment,
            owner: best.0,
        });
        lo = hi + 1;
    }
    StorageIndex::from_entries(id, domain, entries, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostParams;
    use crate::histogram::SummaryHistogram;
    use crate::summary::{ReportedNeighbor, SummaryMessage};

    /// Two clusters: nodes 1-2 produce low values, nodes 3-4 produce high
    /// values; 1-2 and 3-4 are far from each other (chain 0-1-2-3-4).
    fn clustered_store() -> StatsStore {
        let domain = ValueRange::new(0, 39);
        let mut st = StatsStore::new(5, domain);
        for i in 1..5u16 {
            let center: Value = if i <= 2 { 10 } else { 30 };
            let values: Vec<Value> = (0..20).map(|k| center + (k % 3) - 1).collect();
            let mut neighbors = vec![ReportedNeighbor {
                node: NodeId(i - 1),
                quality: 1.0,
            }];
            if i < 4 {
                neighbors.push(ReportedNeighbor {
                    node: NodeId(i + 1),
                    quality: 1.0,
                });
            }
            st.record_summary(SummaryMessage {
                node: NodeId(i),
                histogram: SummaryHistogram::build(&values, 10),
                min: values.iter().min().copied(),
                max: values.iter().max().copied(),
                sum: values.iter().map(|&v| v as i64).sum(),
                count: values.len() as u32,
                data_rate_hz: 1.0 / 15.0,
                neighbors,
                parent: Some(NodeId(i - 1)),
                newest_complete_index: StorageIndexId(1),
                generated_at: SimTime::from_secs(100),
            });
        }
        st
    }

    #[test]
    fn owner_sets_never_exceed_the_bound_and_cover_the_domain() {
        let st = clustered_store();
        let cost = CostModel::new(&st, CostParams::with_query_rate(1.0 / 60.0));
        let multi = build_owner_sets(&st, &cost, StorageIndexId(2), 2);
        assert_eq!(multi.owner_sets.len(), st.domain().width() as usize);
        assert!(multi
            .owner_sets
            .iter()
            .all(|s| !s.is_empty() && s.len() <= 2));
        assert!(multi.total_entries() >= st.domain().width() as usize);
    }

    #[test]
    fn owner_sets_with_bound_one_match_single_owner_choice() {
        let st = clustered_store();
        let cost = CostModel::new(&st, CostParams::with_query_rate(1.0 / 60.0));
        let multi = build_owner_sets(&st, &cost, StorageIndexId(2), 1);
        for (i, set) in multi.owner_sets.iter().enumerate() {
            let v = st.domain().lo + i as Value;
            let (single, _) = cost.best_owner(v, &st.candidate_owners());
            assert_eq!(set.as_slice(), &[single], "value {v}");
        }
    }

    #[test]
    fn query_fanout_grows_with_owner_set_size() {
        let st = clustered_store();
        let cost = CostModel::new(&st, CostParams::with_query_rate(1.0 / 600.0));
        let single = build_owner_sets(&st, &cost, StorageIndexId(2), 1);
        let multi = build_owner_sets(&st, &cost, StorageIndexId(2), 3);
        let range = st.domain();
        assert!(multi.query_fanout(&range) >= single.query_fanout(&range));
    }

    #[test]
    fn range_index_covers_domain_and_respects_segments() {
        let st = clustered_store();
        let cost = CostModel::new(&st, CostParams::with_query_rate(1.0 / 60.0));
        let idx = build_range_index(&st, &cost, StorageIndexId(3), 10, SimTime::ZERO);
        assert!(idx.is_complete());
        // 40-value domain in 10-value segments → at most 4 entries.
        assert!(idx.entries().len() <= 4);
        // Low segment should live near the low-value cluster, high segment
        // near the high-value cluster.
        let low_owner = idx.lookup(10).unwrap();
        let high_owner = idx.lookup(30).unwrap();
        assert!(
            low_owner.index() <= 2,
            "low values owned near nodes 1-2, got {low_owner}"
        );
        assert!(
            high_owner.index() >= 3,
            "high values owned near nodes 3-4, got {high_owner}"
        );
    }

    #[test]
    fn range_index_with_huge_segment_is_single_entry() {
        let st = clustered_store();
        let cost = CostModel::new(&st, CostParams::with_query_rate(1.0 / 60.0));
        let idx = build_range_index(&st, &cost, StorageIndexId(3), 1000, SimTime::ZERO);
        assert_eq!(idx.entries().len(), 1);
        assert!(idx.is_complete());
    }
}
