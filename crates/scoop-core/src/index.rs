//! The storage index: representation, compaction, lookup, diffing, and the
//! `O(V · n²)` construction algorithm of Figure 2.
//!
//! A storage index is "a value to node ID mapping" (Figure 1): every value in
//! the attribute's domain is owned by exactly one node, and consecutive
//! values owned by the same node are coalesced into a single range entry to
//! keep the disseminated representation small (Section 5.3).

use crate::cost::{CostModel, CostParams};
use crate::stats_store::StatsStore;
use scoop_types::{NodeId, ScoopError, SimTime, StorageIndexId, Value, ValueRange};
use serde::{Deserialize, Serialize};

/// One range entry of a storage index: every value in `range` is stored on
/// `owner`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The covered value range.
    pub range: ValueRange,
    /// The node that stores readings with these values.
    pub owner: NodeId,
}

/// A complete storage index for one attribute and one time period.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageIndex {
    id: StorageIndexId,
    domain: ValueRange,
    /// Sorted, non-overlapping, contiguous entries covering `domain`.
    entries: Vec<IndexEntry>,
    created_at: SimTime,
}

impl StorageIndex {
    /// Builds an index from a per-value owner assignment. `owners[i]` is the
    /// owner of value `domain.lo + i`; consecutive values with the same owner
    /// are coalesced.
    pub fn from_owners(
        id: StorageIndexId,
        domain: ValueRange,
        owners: &[NodeId],
        created_at: SimTime,
    ) -> Result<Self, ScoopError> {
        if owners.len() as u64 != domain.width() {
            return Err(ScoopError::InvalidConfig(format!(
                "owner vector has {} entries but the domain holds {} values",
                owners.len(),
                domain.width()
            )));
        }
        let mut entries: Vec<IndexEntry> = Vec::new();
        for (i, &owner) in owners.iter().enumerate() {
            let v = domain.lo + i as Value;
            match entries.last_mut() {
                Some(last) if last.owner == owner && last.range.hi + 1 == v => {
                    last.range.hi = v;
                }
                _ => entries.push(IndexEntry {
                    range: ValueRange::point(v),
                    owner,
                }),
            }
        }
        Ok(StorageIndex {
            id,
            domain,
            entries,
            created_at,
        })
    }

    /// Builds an index directly from (already coalesced) entries. Used when a
    /// node reassembles a disseminated index from mapping chunks. Entries
    /// must be sorted and non-overlapping; gaps are tolerated (lookups in a
    /// gap return `None`, and the node falls back to local storage).
    pub fn from_entries(
        id: StorageIndexId,
        domain: ValueRange,
        entries: Vec<IndexEntry>,
        created_at: SimTime,
    ) -> Self {
        StorageIndex {
            id,
            domain,
            entries,
            created_at,
        }
    }

    /// The "send everything to the basestation" index (what the algorithm
    /// degenerates to when query rates dominate).
    pub fn send_to_base(id: StorageIndexId, domain: ValueRange, created_at: SimTime) -> Self {
        StorageIndex {
            id,
            domain,
            entries: vec![IndexEntry {
                range: domain,
                owner: NodeId::BASESTATION,
            }],
            created_at,
        }
    }

    /// This index's epoch id.
    pub fn id(&self) -> StorageIndexId {
        self.id
    }

    /// The attribute domain the index covers.
    pub fn domain(&self) -> ValueRange {
        self.domain
    }

    /// When the basestation created the index.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// The coalesced range entries.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The owner of value `v`, or `None` if `v` falls outside every entry.
    pub fn lookup(&self, v: Value) -> Option<NodeId> {
        // Entries are sorted by range start; binary search for the candidate.
        let idx = self.entries.partition_point(|e| e.range.hi < v);
        self.entries.get(idx).and_then(|e| {
            if e.range.contains(v) {
                Some(e.owner)
            } else {
                None
            }
        })
    }

    /// Every distinct owner of any value in `range`, deduplicated.
    pub fn owners_for_range(&self, range: &ValueRange) -> Vec<NodeId> {
        let mut owners: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|e| e.range.overlaps(range))
            .map(|e| e.owner)
            .collect();
        owners.sort();
        owners.dedup();
        owners
    }

    /// All distinct owners in the index.
    pub fn owners(&self) -> Vec<NodeId> {
        let mut owners: Vec<NodeId> = self.entries.iter().map(|e| e.owner).collect();
        owners.sort();
        owners.dedup();
        owners
    }

    /// Fraction of domain values whose owner differs between `self` and
    /// `other` (values unassigned in either count as different). The
    /// basestation uses this to suppress dissemination of near-identical
    /// indices (Section 5.3).
    pub fn difference_fraction(&self, other: &StorageIndex) -> f64 {
        let domain = if self.domain.width() >= other.domain.width() {
            self.domain
        } else {
            other.domain
        };
        let total = domain.width() as f64;
        let mut differing = 0u64;
        for v in domain.values() {
            if self.lookup(v) != other.lookup(v) {
                differing += 1;
            }
        }
        differing as f64 / total
    }

    /// Returns `true` if every value of the domain is assigned an owner.
    pub fn is_complete(&self) -> bool {
        self.domain.values().all(|v| self.lookup(v).is_some())
    }

    /// Returns `true` if the index maps every value to the basestation.
    pub fn is_send_to_base(&self) -> bool {
        self.entries.iter().all(|e| e.owner.is_basestation())
    }
}

/// Configuration of the index construction algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexBuilderConfig {
    /// If `true`, the basestation also evaluates the expected cost of a
    /// "store-local" policy and, when it is cheaper than the best index, the
    /// builder reports that (Section 4). Disabled in the paper's SCOOP
    /// experiments and by default here.
    pub allow_store_local_fallback: bool,
}

/// What the builder decided.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexDecision {
    /// Use the constructed storage index.
    UseIndex(StorageIndex),
    /// The store-local policy is expected to be cheaper than any index
    /// (only possible when the fallback is enabled).
    StoreLocal {
        /// The index that would have been used.
        index: StorageIndex,
        /// Expected cost of that index.
        index_cost: f64,
        /// Expected cost of store-local.
        store_local_cost: f64,
    },
}

/// Builds storage indices from the basestation's statistics.
#[derive(Clone, Debug, Default)]
pub struct IndexBuilder {
    config: IndexBuilderConfig,
}

impl IndexBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: IndexBuilderConfig) -> Self {
        IndexBuilder { config }
    }

    /// Runs the algorithm of Figure 2: for every value in the domain, try
    /// every node as owner and keep the one minimizing the expected number of
    /// messages. Complexity is `O(V · n²)` because each cost evaluation sums
    /// over all producers.
    pub fn build(
        &self,
        stats: &StatsStore,
        params: CostParams,
        id: StorageIndexId,
        now: SimTime,
    ) -> IndexDecision {
        let domain = stats.domain();
        let cost_model = CostModel::new(stats, params);
        let candidates = stats.candidate_owners();
        let mut owners = Vec::with_capacity(domain.width() as usize);
        let mut total_cost = 0.0;
        for v in domain.values() {
            let (owner, cost) = cost_model.best_owner(v, &candidates);
            owners.push(owner);
            total_cost += cost;
        }
        let index = StorageIndex::from_owners(id, domain, &owners, now)
            .expect("owner vector sized from the domain");

        if self.config.allow_store_local_fallback {
            let store_local = cost_model.store_local_cost();
            if store_local < total_cost {
                return IndexDecision::StoreLocal {
                    index,
                    index_cost: total_cost,
                    store_local_cost: store_local,
                };
            }
        }
        IndexDecision::UseIndex(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_domain() -> ValueRange {
        ValueRange::new(0, 9)
    }

    #[test]
    fn from_owners_coalesces_consecutive_runs() {
        let owners = vec![
            NodeId(1),
            NodeId(1),
            NodeId(2),
            NodeId(2),
            NodeId(2),
            NodeId(1),
            NodeId(3),
            NodeId(3),
            NodeId(3),
            NodeId(3),
        ];
        let idx =
            StorageIndex::from_owners(StorageIndexId(1), base_domain(), &owners, SimTime::ZERO)
                .unwrap();
        assert_eq!(idx.entries().len(), 4);
        assert_eq!(
            idx.entries()[0],
            IndexEntry {
                range: ValueRange::new(0, 1),
                owner: NodeId(1)
            }
        );
        assert_eq!(
            idx.entries()[1],
            IndexEntry {
                range: ValueRange::new(2, 4),
                owner: NodeId(2)
            }
        );
        assert_eq!(
            idx.entries()[2],
            IndexEntry {
                range: ValueRange::new(5, 5),
                owner: NodeId(1)
            }
        );
        assert_eq!(
            idx.entries()[3],
            IndexEntry {
                range: ValueRange::new(6, 9),
                owner: NodeId(3)
            }
        );
        assert!(idx.is_complete());
    }

    #[test]
    fn from_owners_rejects_wrong_length() {
        assert!(StorageIndex::from_owners(
            StorageIndexId(1),
            base_domain(),
            &[NodeId(1); 3],
            SimTime::ZERO
        )
        .is_err());
    }

    #[test]
    fn lookup_matches_assignment() {
        let owners: Vec<NodeId> = (0..10).map(|i| NodeId((i % 3 + 1) as u16)).collect();
        let idx =
            StorageIndex::from_owners(StorageIndexId(1), base_domain(), &owners, SimTime::ZERO)
                .unwrap();
        for (i, &expected) in owners.iter().enumerate() {
            assert_eq!(idx.lookup(i as Value), Some(expected), "value {i}");
        }
        assert_eq!(idx.lookup(-1), None);
        assert_eq!(idx.lookup(10), None);
    }

    #[test]
    fn owners_for_range_deduplicates() {
        let owners = vec![
            NodeId(1),
            NodeId(1),
            NodeId(2),
            NodeId(2),
            NodeId(1),
            NodeId(1),
            NodeId(1),
            NodeId(1),
            NodeId(1),
            NodeId(1),
        ];
        let idx =
            StorageIndex::from_owners(StorageIndexId(1), base_domain(), &owners, SimTime::ZERO)
                .unwrap();
        assert_eq!(
            idx.owners_for_range(&ValueRange::new(0, 4)),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(
            idx.owners_for_range(&ValueRange::new(6, 9)),
            vec![NodeId(1)]
        );
        assert_eq!(idx.owners(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn send_to_base_index() {
        let idx = StorageIndex::send_to_base(StorageIndexId(2), base_domain(), SimTime::ZERO);
        assert!(idx.is_send_to_base());
        assert!(idx.is_complete());
        assert_eq!(idx.lookup(5), Some(NodeId::BASESTATION));
        assert_eq!(idx.entries().len(), 1);
    }

    #[test]
    fn difference_fraction() {
        let a = StorageIndex::from_owners(
            StorageIndexId(1),
            base_domain(),
            &[NodeId(1); 10],
            SimTime::ZERO,
        )
        .unwrap();
        let mut owners = vec![NodeId(1); 10];
        owners[0] = NodeId(2);
        owners[1] = NodeId(2);
        let b = StorageIndex::from_owners(StorageIndexId(2), base_domain(), &owners, SimTime::ZERO)
            .unwrap();
        assert!((a.difference_fraction(&b) - 0.2).abs() < 1e-9);
        assert_eq!(a.difference_fraction(&a), 0.0);
    }

    #[test]
    fn incomplete_index_from_entries() {
        let idx = StorageIndex::from_entries(
            StorageIndexId(1),
            base_domain(),
            vec![IndexEntry {
                range: ValueRange::new(0, 4),
                owner: NodeId(2),
            }],
            SimTime::ZERO,
        );
        assert!(!idx.is_complete());
        assert_eq!(idx.lookup(3), Some(NodeId(2)));
        assert_eq!(idx.lookup(7), None);
    }
}
