//! The basestation's statistics store.
//!
//! The basestation "always saves the last histogram it receives from each
//! node, thus allowing it to reason about a node even if newer summary
//! messages are lost" (Section 5.2); it also never discards *any* summary so
//! that historical and aggregate queries can be answered from summaries alone
//! (Section 5.5). Topology knowledge comes from two places: the neighbor
//! lists in summaries and the `origin → origin's parent` pairs carried in
//! every Scoop packet header. From these the store can estimate the expected
//! number of transmissions between any two nodes (`xmits(x → y)` in Figure 2)
//! and the probabilities the indexing algorithm needs.

use crate::summary::SummaryMessage;
use scoop_types::{NodeId, SimTime, StorageIndexId, Value, ValueRange};
use std::collections::BinaryHeap;

/// Expected transmissions charged when the store has no topology information
/// connecting two nodes (e.g. right after startup). Large enough to steer the
/// optimizer away from unknown placements, small enough to stay finite.
const UNKNOWN_PATH_XMITS: f64 = 25.0;

/// Prior probability that a user query covers any particular value, used
/// before any query has been observed (the paper's default workload queries
/// 1–5 % of the domain, so ~3 % is a neutral prior).
const QUERY_PRIOR: f64 = 0.03;

/// The basestation-side statistics store.
#[derive(Clone, Debug)]
pub struct StatsStore {
    n: usize,
    domain: ValueRange,
    /// Last summary per node (index = node id).
    latest: Vec<Option<SummaryMessage>>,
    /// Every summary ever received (never discarded).
    history: Vec<SummaryMessage>,
    /// Routing-tree parent learned from packet headers.
    parent_of: Vec<Option<NodeId>>,
    /// Undirected link-quality knowledge as a sparse adjacency: `adj[a]`
    /// holds `(b, q)` pairs sorted by ascending `b`, where `q` is the best
    /// delivery probability reported for the pair in *either* direction.
    /// Only the two-direction maximum is ever consumed (the xmits graph is
    /// made undirected by taking the better direction), so max-merging at
    /// ingest loses nothing — and the store is O(known links) instead of the
    /// dense `n × n` matrix, which was 8.6 GB at 32k nodes and was allocated
    /// on the basestation under every storage policy.
    adj: Vec<Vec<(u32, f64)>>,
    /// Per-value count of observed queries covering that value.
    query_value_counts: Vec<u64>,
    /// Total queries observed.
    query_count: u64,
    /// When the first / last query was observed.
    first_query: Option<SimTime>,
    last_query: Option<SimTime>,
    /// Cached per-source xmits rows, computed lazily on first use of each
    /// source (`None` = invalidated by new topology knowledge). The dense
    /// era ran Dijkstra from *every* source eagerly; most callers only ever
    /// ask about a handful of sources (the basestation, query owners).
    xmits_cache: Option<std::collections::HashMap<usize, Vec<f64>>>,
}

impl StatsStore {
    /// Creates a store for a network of `total_nodes` nodes (including the
    /// basestation) over the given attribute domain.
    pub fn new(total_nodes: usize, domain: ValueRange) -> Self {
        StatsStore {
            n: total_nodes,
            domain,
            latest: vec![None; total_nodes],
            history: Vec::new(),
            parent_of: vec![None; total_nodes],
            adj: vec![Vec::new(); total_nodes],
            query_value_counts: vec![0; domain.width() as usize],
            query_count: 0,
            first_query: None,
            last_query: None,
            xmits_cache: None,
        }
    }

    /// Number of nodes (including the basestation).
    pub fn total_nodes(&self) -> usize {
        self.n
    }

    /// The attribute domain.
    pub fn domain(&self) -> ValueRange {
        self.domain
    }

    // ---------------------------------------------------------------------
    // Ingest
    // ---------------------------------------------------------------------

    /// Records a summary message received from a node.
    pub fn record_summary(&mut self, summary: SummaryMessage) {
        let idx = summary.node.index();
        if idx >= self.n {
            return;
        }
        // Topology: the reporter hears each listed neighbor with the given
        // quality, i.e. a directed link neighbor → reporter. Stored
        // undirected (max over both directions) — the only consumer of this
        // knowledge, the xmits graph, takes exactly that maximum.
        for nb in &summary.neighbors {
            if nb.node.index() < self.n {
                let q = nb.quality.clamp(0.0, 1.0);
                self.merge_link_quality(nb.node.index(), idx, q);
            }
        }
        if let Some(parent) = summary.parent {
            self.note_parent(summary.node, parent);
        }
        self.latest[idx] = Some(summary.clone());
        self.history.push(summary);
        self.xmits_cache = None;
    }

    /// Records the `origin → origin's parent` pair carried in a Scoop packet
    /// header.
    pub fn note_parent(&mut self, origin: NodeId, parent: NodeId) {
        if origin.index() >= self.n || parent.index() >= self.n || origin == parent {
            return;
        }
        if self.parent_of[origin.index()] != Some(parent) {
            self.parent_of[origin.index()] = Some(parent);
            self.xmits_cache = None;
        }
        // A tree edge implies a usable link in both directions; assume a
        // conservative quality if we have nothing better from summaries.
        self.merge_link_quality(origin.index(), parent.index(), 0.5);
    }

    /// Raises the undirected link quality of the pair `{a, b}` to at least
    /// `q`, keeping both adjacency rows sorted by ascending neighbor id.
    /// Zero-quality reports are not links and are never stored.
    fn merge_link_quality(&mut self, a: usize, b: usize, q: f64) {
        if a == b || q <= 0.0 {
            return;
        }
        for (x, y) in [(a, b), (b, a)] {
            let row = &mut self.adj[x];
            match row.binary_search_by_key(&(y as u32), |&(id, _)| id) {
                Ok(i) => {
                    if q > row[i].1 {
                        row[i].1 = q;
                    }
                }
                Err(i) => row.insert(i, (y as u32, q)),
            }
        }
    }

    /// Records a user query over `values` issued at `now` (used to estimate
    /// `P(user queries v)` and the query rate).
    pub fn record_query(&mut self, values: &ValueRange, now: SimTime) {
        self.query_count += 1;
        if self.first_query.is_none() {
            self.first_query = Some(now);
        }
        self.last_query = Some(now);
        for v in values.values() {
            if let Some(slot) = self
                .query_value_counts
                .get_mut((v - self.domain.lo) as usize)
            {
                *slot += 1;
            }
        }
    }

    // ---------------------------------------------------------------------
    // Estimates used by the indexing algorithm
    // ---------------------------------------------------------------------

    /// All nodes the algorithm should consider as potential owners: every
    /// node id, basestation first.
    pub fn candidate_owners(&self) -> Vec<NodeId> {
        (0..self.n).map(|i| NodeId(i as u16)).collect()
    }

    /// The paper's `P(p produces v)` for node `p`, from its latest histogram.
    pub fn p_produces(&self, p: NodeId, v: Value) -> f64 {
        self.latest
            .get(p.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.probability_of(v))
            .unwrap_or(0.0)
    }

    /// The data production rate of node `p` in readings per second.
    pub fn data_rate(&self, p: NodeId) -> f64 {
        self.latest
            .get(p.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.data_rate_hz)
            .unwrap_or(0.0)
    }

    /// `P(user queries v)`: the fraction of observed queries whose value range
    /// contains `v`, or a neutral prior before any query has been seen.
    pub fn p_queries(&self, v: Value) -> f64 {
        if self.query_count == 0 {
            return QUERY_PRIOR;
        }
        let idx = (v - self.domain.lo) as usize;
        self.query_value_counts
            .get(idx)
            .map(|&c| c as f64 / self.query_count as f64)
            .unwrap_or(0.0)
    }

    /// The observed query rate in queries per second, measured over the span
    /// between the first and last query (plus one nominal interval so a
    /// single query does not imply an infinite rate). Zero if no query has
    /// been observed.
    pub fn query_rate_hz(&self) -> f64 {
        match (self.first_query, self.last_query) {
            (Some(first), Some(last)) if self.query_count > 0 => {
                let span = (last - first).as_secs_f64();
                if span <= 0.0 {
                    // A single query (or several in one instant): assume one
                    // per paper-default interval.
                    1.0 / 15.0
                } else {
                    // `query_count` queries over `span` seconds; the open
                    // interval after the last query is not yet known.
                    (self.query_count.saturating_sub(1)) as f64 / span
                }
            }
            _ => 0.0,
        }
    }

    /// Latest reported "newest complete storage index" across all sensor
    /// nodes; the minimum such id is the oldest index that may still be in
    /// active use somewhere in the network.
    pub fn min_live_index(&self) -> StorageIndexId {
        self.latest
            .iter()
            .skip(1) // the basestation itself
            .filter_map(|s| s.as_ref())
            .map(|s| s.newest_complete_index)
            .min()
            .unwrap_or(StorageIndexId::NONE)
    }

    /// The newest complete index reported by a specific node.
    pub fn newest_complete_index(&self, node: NodeId) -> StorageIndexId {
        self.latest
            .get(node.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.newest_complete_index)
            .unwrap_or(StorageIndexId::NONE)
    }

    /// The latest summary from `node`, if any.
    pub fn latest_summary(&self, node: NodeId) -> Option<&SummaryMessage> {
        self.latest.get(node.index()).and_then(|s| s.as_ref())
    }

    /// Every summary ever received (the basestation never discards them).
    pub fn summary_history(&self) -> &[SummaryMessage] {
        &self.history
    }

    /// Number of sensor nodes that have reported at least one summary.
    pub fn nodes_reporting(&self) -> usize {
        self.latest.iter().skip(1).filter(|s| s.is_some()).count()
    }

    /// The maximum value reported by any node's summary — the "answer MAX
    /// from summaries without touching the network" shortcut (Section 5.5).
    pub fn max_from_summaries(&self) -> Option<Value> {
        self.latest
            .iter()
            .filter_map(|s| s.as_ref())
            .filter_map(|s| s.max)
            .max()
    }

    /// The minimum value reported by any node's summary.
    pub fn min_from_summaries(&self) -> Option<Value> {
        self.latest
            .iter()
            .filter_map(|s| s.as_ref())
            .filter_map(|s| s.min)
            .min()
    }

    // ---------------------------------------------------------------------
    // xmits(x → y)
    // ---------------------------------------------------------------------

    /// The expected number of transmissions to move a packet from `a` to `b`,
    /// estimated from the link-quality graph assembled out of summaries and
    /// packet headers. Symmetric by construction (the underlying graph is
    /// made undirected by taking the better direction of each link). Nodes
    /// with no known connectivity get a large finite penalty.
    pub fn xmits(&mut self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        if a.index() >= self.n || b.index() >= self.n {
            return UNKNOWN_PATH_XMITS;
        }
        let dst = b.index();
        self.xmits_row(a.index())[dst]
    }

    /// Round-trip estimate `xmits(base → o → base)` from Figure 2.
    pub fn xmits_roundtrip_base(&mut self, o: NodeId) -> f64 {
        2.0 * self.xmits(NodeId::BASESTATION, o)
    }

    /// How many per-source xmits rows are currently cached. Lets callers
    /// (and the [`crate::cost::CostModel`] lazy-construction guard test)
    /// verify that nothing quadratic was materialized behind their back.
    pub fn xmits_rows_cached(&self) -> usize {
        self.xmits_cache.as_ref().map_or(0, |c| c.len())
    }

    /// The cached xmits row for one source, running Dijkstra on first use.
    ///
    /// Per-source lazy caching replaces the dense era's eager all-pairs
    /// `Vec<Vec<f64>>` (another n² table): each row is the *identical*
    /// Dijkstra the dense code ran — the sparse adjacency stores neighbors
    /// in ascending id order with the same `1 / max(quality)` weights, so
    /// relaxations happen in the same order with the same float operands and
    /// every distance is bit-identical.
    fn xmits_row(&mut self, src: usize) -> &[f64] {
        let cache = self
            .xmits_cache
            .get_or_insert_with(std::collections::HashMap::new);
        cache.entry(src).or_insert_with(|| {
            dijkstra(&self.adj, src)
                .into_iter()
                .map(|d| if d.is_finite() { d } else { UNKNOWN_PATH_XMITS })
                .collect()
        })
    }
}

/// Simple binary-heap Dijkstra over the sparse undirected ETX adjacency
/// (`weight = 1 / quality`, neighbors ascending).
fn dijkstra(adj: &[Vec<(u32, f64)>], src: usize) -> Vec<f64> {
    let n = adj.len();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    // BinaryHeap is a max-heap over ordered keys; store negated distances as
    // sortable integers (micro-units) to avoid a float Ord wrapper.
    let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::new();
    heap.push((0, src));
    while let Some((neg_d, u)) = heap.pop() {
        let d = -(neg_d as f64) / 1e6;
        if d > dist[u] + 1e-9 {
            continue;
        }
        for &(v, q) in &adj[u] {
            let v = v as usize;
            let nd = dist[u] + 1.0 / q;
            if nd + 1e-12 < dist[v] {
                dist[v] = nd;
                heap.push((-(nd * 1e6) as i64, v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::SummaryHistogram;
    use crate::summary::ReportedNeighbor;

    fn summary(
        node: u16,
        values: &[Value],
        neighbors: &[(u16, f64)],
        parent: Option<u16>,
    ) -> SummaryMessage {
        SummaryMessage {
            node: NodeId(node),
            histogram: SummaryHistogram::build(values, 10),
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            sum: values.iter().map(|&v| v as i64).sum(),
            count: values.len() as u32,
            data_rate_hz: 1.0 / 15.0,
            neighbors: neighbors
                .iter()
                .map(|&(n, q)| ReportedNeighbor {
                    node: NodeId(n),
                    quality: q,
                })
                .collect(),
            parent: parent.map(NodeId),
            newest_complete_index: StorageIndexId(1),
            generated_at: SimTime::from_secs(60),
        }
    }

    fn domain() -> ValueRange {
        ValueRange::new(0, 99)
    }

    #[test]
    fn summaries_drive_probabilities_and_rates() {
        let mut st = StatsStore::new(4, domain());
        st.record_summary(summary(1, &[10, 10, 10, 50], &[(0, 0.9)], Some(0)));
        assert!(st.p_produces(NodeId(1), 10) > st.p_produces(NodeId(1), 50));
        assert_eq!(st.p_produces(NodeId(2), 10), 0.0);
        assert!((st.data_rate(NodeId(1)) - 1.0 / 15.0).abs() < 1e-9);
        assert_eq!(st.data_rate(NodeId(3)), 0.0);
        assert_eq!(st.nodes_reporting(), 1);
        assert_eq!(st.summary_history().len(), 1);
    }

    #[test]
    fn latest_summary_wins_but_history_is_kept() {
        let mut st = StatsStore::new(3, domain());
        st.record_summary(summary(1, &[10; 5], &[], Some(0)));
        st.record_summary(summary(1, &[90; 5], &[], Some(0)));
        assert!(st.p_produces(NodeId(1), 90) > 0.0);
        assert_eq!(st.p_produces(NodeId(1), 10), 0.0);
        assert_eq!(st.summary_history().len(), 2);
    }

    #[test]
    fn query_statistics() {
        let mut st = StatsStore::new(3, domain());
        // Before any query: neutral prior.
        assert!((st.p_queries(50) - QUERY_PRIOR).abs() < 1e-12);
        assert_eq!(st.query_rate_hz(), 0.0);
        st.record_query(&ValueRange::new(10, 19), SimTime::from_secs(600));
        st.record_query(&ValueRange::new(10, 14), SimTime::from_secs(615));
        st.record_query(&ValueRange::new(80, 84), SimTime::from_secs(630));
        assert!((st.p_queries(12) - 2.0 / 3.0).abs() < 1e-9);
        assert!((st.p_queries(82) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.p_queries(50), 0.0);
        let rate = st.query_rate_hz();
        assert!((rate - 2.0 / 30.0).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn xmits_uses_link_graph() {
        let mut st = StatsStore::new(4, domain());
        // 0 - 1 - 2 chain with perfect links, node 3 unknown.
        st.record_summary(summary(1, &[5], &[(0, 1.0), (2, 1.0)], Some(0)));
        st.record_summary(summary(2, &[5], &[(1, 1.0)], Some(1)));
        assert!((st.xmits(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-6);
        assert!((st.xmits(NodeId(0), NodeId(2)) - 2.0).abs() < 1e-6);
        assert_eq!(st.xmits(NodeId(1), NodeId(1)), 0.0);
        assert!(st.xmits(NodeId(0), NodeId(3)) >= UNKNOWN_PATH_XMITS - 1e-9);
        assert!((st.xmits_roundtrip_base(NodeId(2)) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn lossier_links_cost_more_xmits() {
        let mut st = StatsStore::new(3, domain());
        st.record_summary(summary(1, &[5], &[(0, 0.5)], Some(0)));
        st.record_summary(summary(2, &[5], &[(0, 1.0)], Some(0)));
        assert!(st.xmits(NodeId(0), NodeId(1)) > st.xmits(NodeId(0), NodeId(2)));
    }

    #[test]
    fn packet_headers_reveal_tree_edges() {
        let mut st = StatsStore::new(3, domain());
        st.note_parent(NodeId(2), NodeId(1));
        st.note_parent(NodeId(1), NodeId(0));
        // Even with no summaries, the tree edges give finite path estimates.
        assert!(st.xmits(NodeId(0), NodeId(2)) < UNKNOWN_PATH_XMITS);
    }

    #[test]
    fn min_live_index_and_aggregates() {
        let mut st = StatsStore::new(4, domain());
        assert_eq!(st.min_live_index(), StorageIndexId::NONE);
        let mut s1 = summary(1, &[10, 20], &[], Some(0));
        s1.newest_complete_index = StorageIndexId(3);
        let mut s2 = summary(2, &[70, 80], &[], Some(0));
        s2.newest_complete_index = StorageIndexId(5);
        st.record_summary(s1);
        st.record_summary(s2);
        assert_eq!(st.min_live_index(), StorageIndexId(3));
        assert_eq!(st.newest_complete_index(NodeId(2)), StorageIndexId(5));
        assert_eq!(st.max_from_summaries(), Some(80));
        assert_eq!(st.min_from_summaries(), Some(10));
    }

    /// The dense-era pipeline, reimplemented verbatim as an oracle: a
    /// directed n×n quality matrix, an undirected ETX weight matrix, and a
    /// dense-scan Dijkstra. The sparse store must reproduce its distances
    /// bit-for-bit (same relaxation order, same float operands).
    fn dense_oracle_xmits(events: &[(u16, u16, f64)], n: usize) -> Vec<Vec<f64>> {
        let mut quality = vec![vec![0.0f64; n]; n];
        for &(a, b, q) in events {
            let slot = &mut quality[a as usize][b as usize];
            if q > *slot {
                *slot = q;
            }
        }
        let mut weight = vec![vec![f64::INFINITY; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let q = quality[a][b].max(quality[b][a]);
                if q > 0.0 {
                    weight[a][b] = 1.0 / q;
                }
            }
        }
        (0..n)
            .map(|src| {
                let mut dist = vec![f64::INFINITY; n];
                dist[src] = 0.0;
                let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::new();
                heap.push((0, src));
                while let Some((neg_d, u)) = heap.pop() {
                    let d = -(neg_d as f64) / 1e6;
                    if d > dist[u] + 1e-9 {
                        continue;
                    }
                    for v in 0..n {
                        if !weight[u][v].is_finite() {
                            continue;
                        }
                        let nd = dist[u] + weight[u][v];
                        if nd + 1e-12 < dist[v] {
                            dist[v] = nd;
                            heap.push((-(nd * 1e6) as i64, v));
                        }
                    }
                }
                dist.into_iter()
                    .map(|d| if d.is_finite() { d } else { UNKNOWN_PATH_XMITS })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sparse_xmits_is_bit_identical_to_the_dense_oracle() {
        // A pseudo-random batch of directed quality reports over 30 nodes,
        // including repeated pairs (max-merge) and asymmetric directions.
        let n = 30usize;
        let mut state = 0xdead_beef_u64;
        let mut events = Vec::new();
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((state >> 33) % n as u64) as u16;
            let b = ((state >> 13) % n as u64) as u16;
            if a == b {
                continue;
            }
            let q = ((state >> 3) % 1000) as f64 / 1000.0;
            events.push((a, b, q));
        }
        let mut st = StatsStore::new(n, domain());
        for &(a, b, q) in &events {
            // Feed each report through the public ingest path: a summary
            // from `b` listing `a` as heard with quality `q` writes the
            // directed slot `a → b`, exactly like the oracle.
            st.record_summary(summary(b, &[5], &[(a, q)], None));
        }
        let oracle = dense_oracle_xmits(&events, n);
        for (a, oracle_row) in oracle.iter().enumerate() {
            for (b, &dense) in oracle_row.iter().enumerate() {
                let want = if a == b { 0.0 } else { dense };
                let got = st.xmits(NodeId(a as u16), NodeId(b as u16));
                assert!(
                    got == want,
                    "xmits({a} → {b}): sparse {got} != dense {want}"
                );
            }
        }
    }

    #[test]
    fn ignores_out_of_range_nodes() {
        let mut st = StatsStore::new(3, domain());
        st.record_summary(summary(99, &[5], &[], None));
        assert_eq!(st.nodes_reporting(), 0);
        st.note_parent(NodeId(50), NodeId(0));
        assert_eq!(st.xmits(NodeId(0), NodeId(50)), UNKNOWN_PATH_XMITS);
    }
}
