//! The basestation's statistics store.
//!
//! The basestation "always saves the last histogram it receives from each
//! node, thus allowing it to reason about a node even if newer summary
//! messages are lost" (Section 5.2); it also never discards *any* summary so
//! that historical and aggregate queries can be answered from summaries alone
//! (Section 5.5). Topology knowledge comes from two places: the neighbor
//! lists in summaries and the `origin → origin's parent` pairs carried in
//! every Scoop packet header. From these the store can estimate the expected
//! number of transmissions between any two nodes (`xmits(x → y)` in Figure 2)
//! and the probabilities the indexing algorithm needs.

use crate::summary::SummaryMessage;
use scoop_types::{NodeId, SimTime, StorageIndexId, Value, ValueRange};
use std::collections::BinaryHeap;

/// Expected transmissions charged when the store has no topology information
/// connecting two nodes (e.g. right after startup). Large enough to steer the
/// optimizer away from unknown placements, small enough to stay finite.
const UNKNOWN_PATH_XMITS: f64 = 25.0;

/// Prior probability that a user query covers any particular value, used
/// before any query has been observed (the paper's default workload queries
/// 1–5 % of the domain, so ~3 % is a neutral prior).
const QUERY_PRIOR: f64 = 0.03;

/// The basestation-side statistics store.
#[derive(Clone, Debug)]
pub struct StatsStore {
    n: usize,
    domain: ValueRange,
    /// Last summary per node (index = node id).
    latest: Vec<Option<SummaryMessage>>,
    /// Every summary ever received (never discarded).
    history: Vec<SummaryMessage>,
    /// Routing-tree parent learned from packet headers.
    parent_of: Vec<Option<NodeId>>,
    /// Directed link quality knowledge: `quality[a][b]` is the best known
    /// delivery probability for a transmission from `a` heard by `b`.
    quality: Vec<Vec<f64>>,
    /// Per-value count of observed queries covering that value.
    query_value_counts: Vec<u64>,
    /// Total queries observed.
    query_count: u64,
    /// When the first / last query was observed.
    first_query: Option<SimTime>,
    last_query: Option<SimTime>,
    /// Cached all-pairs xmits estimates, invalidated when topology knowledge
    /// changes.
    xmits_cache: Option<Vec<Vec<f64>>>,
}

impl StatsStore {
    /// Creates a store for a network of `total_nodes` nodes (including the
    /// basestation) over the given attribute domain.
    pub fn new(total_nodes: usize, domain: ValueRange) -> Self {
        StatsStore {
            n: total_nodes,
            domain,
            latest: vec![None; total_nodes],
            history: Vec::new(),
            parent_of: vec![None; total_nodes],
            quality: vec![vec![0.0; total_nodes]; total_nodes],
            query_value_counts: vec![0; domain.width() as usize],
            query_count: 0,
            first_query: None,
            last_query: None,
            xmits_cache: None,
        }
    }

    /// Number of nodes (including the basestation).
    pub fn total_nodes(&self) -> usize {
        self.n
    }

    /// The attribute domain.
    pub fn domain(&self) -> ValueRange {
        self.domain
    }

    // ---------------------------------------------------------------------
    // Ingest
    // ---------------------------------------------------------------------

    /// Records a summary message received from a node.
    pub fn record_summary(&mut self, summary: SummaryMessage) {
        let idx = summary.node.index();
        if idx >= self.n {
            return;
        }
        // Topology: the reporter hears each listed neighbor with the given
        // quality, i.e. a directed link neighbor → reporter.
        for nb in &summary.neighbors {
            if nb.node.index() < self.n {
                let q = nb.quality.clamp(0.0, 1.0);
                let slot = &mut self.quality[nb.node.index()][idx];
                if q > *slot {
                    *slot = q;
                }
            }
        }
        if let Some(parent) = summary.parent {
            self.note_parent(summary.node, parent);
        }
        self.latest[idx] = Some(summary.clone());
        self.history.push(summary);
        self.xmits_cache = None;
    }

    /// Records the `origin → origin's parent` pair carried in a Scoop packet
    /// header.
    pub fn note_parent(&mut self, origin: NodeId, parent: NodeId) {
        if origin.index() >= self.n || parent.index() >= self.n || origin == parent {
            return;
        }
        if self.parent_of[origin.index()] != Some(parent) {
            self.parent_of[origin.index()] = Some(parent);
            self.xmits_cache = None;
        }
        // A tree edge implies a usable link in both directions; assume a
        // conservative quality if we have nothing better from summaries.
        for (a, b) in [(origin, parent), (parent, origin)] {
            let slot = &mut self.quality[a.index()][b.index()];
            if *slot < 0.5 {
                *slot = 0.5;
            }
        }
    }

    /// Records a user query over `values` issued at `now` (used to estimate
    /// `P(user queries v)` and the query rate).
    pub fn record_query(&mut self, values: &ValueRange, now: SimTime) {
        self.query_count += 1;
        if self.first_query.is_none() {
            self.first_query = Some(now);
        }
        self.last_query = Some(now);
        for v in values.values() {
            if let Some(slot) = self
                .query_value_counts
                .get_mut((v - self.domain.lo) as usize)
            {
                *slot += 1;
            }
        }
    }

    // ---------------------------------------------------------------------
    // Estimates used by the indexing algorithm
    // ---------------------------------------------------------------------

    /// All nodes the algorithm should consider as potential owners: every
    /// node id, basestation first.
    pub fn candidate_owners(&self) -> Vec<NodeId> {
        (0..self.n).map(|i| NodeId(i as u16)).collect()
    }

    /// The paper's `P(p produces v)` for node `p`, from its latest histogram.
    pub fn p_produces(&self, p: NodeId, v: Value) -> f64 {
        self.latest
            .get(p.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.probability_of(v))
            .unwrap_or(0.0)
    }

    /// The data production rate of node `p` in readings per second.
    pub fn data_rate(&self, p: NodeId) -> f64 {
        self.latest
            .get(p.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.data_rate_hz)
            .unwrap_or(0.0)
    }

    /// `P(user queries v)`: the fraction of observed queries whose value range
    /// contains `v`, or a neutral prior before any query has been seen.
    pub fn p_queries(&self, v: Value) -> f64 {
        if self.query_count == 0 {
            return QUERY_PRIOR;
        }
        let idx = (v - self.domain.lo) as usize;
        self.query_value_counts
            .get(idx)
            .map(|&c| c as f64 / self.query_count as f64)
            .unwrap_or(0.0)
    }

    /// The observed query rate in queries per second, measured over the span
    /// between the first and last query (plus one nominal interval so a
    /// single query does not imply an infinite rate). Zero if no query has
    /// been observed.
    pub fn query_rate_hz(&self) -> f64 {
        match (self.first_query, self.last_query) {
            (Some(first), Some(last)) if self.query_count > 0 => {
                let span = (last - first).as_secs_f64();
                if span <= 0.0 {
                    // A single query (or several in one instant): assume one
                    // per paper-default interval.
                    1.0 / 15.0
                } else {
                    // `query_count` queries over `span` seconds; the open
                    // interval after the last query is not yet known.
                    (self.query_count.saturating_sub(1)) as f64 / span
                }
            }
            _ => 0.0,
        }
    }

    /// Latest reported "newest complete storage index" across all sensor
    /// nodes; the minimum such id is the oldest index that may still be in
    /// active use somewhere in the network.
    pub fn min_live_index(&self) -> StorageIndexId {
        self.latest
            .iter()
            .skip(1) // the basestation itself
            .filter_map(|s| s.as_ref())
            .map(|s| s.newest_complete_index)
            .min()
            .unwrap_or(StorageIndexId::NONE)
    }

    /// The newest complete index reported by a specific node.
    pub fn newest_complete_index(&self, node: NodeId) -> StorageIndexId {
        self.latest
            .get(node.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.newest_complete_index)
            .unwrap_or(StorageIndexId::NONE)
    }

    /// The latest summary from `node`, if any.
    pub fn latest_summary(&self, node: NodeId) -> Option<&SummaryMessage> {
        self.latest.get(node.index()).and_then(|s| s.as_ref())
    }

    /// Every summary ever received (the basestation never discards them).
    pub fn summary_history(&self) -> &[SummaryMessage] {
        &self.history
    }

    /// Number of sensor nodes that have reported at least one summary.
    pub fn nodes_reporting(&self) -> usize {
        self.latest.iter().skip(1).filter(|s| s.is_some()).count()
    }

    /// The maximum value reported by any node's summary — the "answer MAX
    /// from summaries without touching the network" shortcut (Section 5.5).
    pub fn max_from_summaries(&self) -> Option<Value> {
        self.latest
            .iter()
            .filter_map(|s| s.as_ref())
            .filter_map(|s| s.max)
            .max()
    }

    /// The minimum value reported by any node's summary.
    pub fn min_from_summaries(&self) -> Option<Value> {
        self.latest
            .iter()
            .filter_map(|s| s.as_ref())
            .filter_map(|s| s.min)
            .min()
    }

    // ---------------------------------------------------------------------
    // xmits(x → y)
    // ---------------------------------------------------------------------

    /// The expected number of transmissions to move a packet from `a` to `b`,
    /// estimated from the link-quality graph assembled out of summaries and
    /// packet headers. Symmetric by construction (the underlying graph is
    /// made undirected by taking the better direction of each link). Nodes
    /// with no known connectivity get a large finite penalty.
    pub fn xmits(&mut self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        if a.index() >= self.n || b.index() >= self.n {
            return UNKNOWN_PATH_XMITS;
        }
        self.ensure_xmits_cache();
        self.xmits_cache.as_ref().expect("cache just built")[a.index()][b.index()]
    }

    /// Round-trip estimate `xmits(base → o → base)` from Figure 2.
    pub fn xmits_roundtrip_base(&mut self, o: NodeId) -> f64 {
        2.0 * self.xmits(NodeId::BASESTATION, o)
    }

    fn ensure_xmits_cache(&mut self) {
        if self.xmits_cache.is_some() {
            return;
        }
        // Undirected ETX graph: weight = 1 / max(quality in either direction).
        let n = self.n;
        let mut weight = vec![vec![f64::INFINITY; n]; n];
        for (a, row) in weight.iter_mut().enumerate() {
            for (b, w) in row.iter_mut().enumerate() {
                if a == b {
                    continue;
                }
                let q = self.quality[a][b].max(self.quality[b][a]);
                if q > 0.0 {
                    *w = 1.0 / q;
                }
            }
        }
        // Dijkstra from every source.
        let mut all = vec![vec![UNKNOWN_PATH_XMITS; n]; n];
        for (src, row) in all.iter_mut().enumerate() {
            let dist = dijkstra(&weight, src);
            for (dst, d) in dist.into_iter().enumerate() {
                row[dst] = if d.is_finite() { d } else { UNKNOWN_PATH_XMITS };
            }
        }
        self.xmits_cache = Some(all);
    }
}

/// Simple binary-heap Dijkstra over a dense weight matrix.
fn dijkstra(weight: &[Vec<f64>], src: usize) -> Vec<f64> {
    let n = weight.len();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    // BinaryHeap is a max-heap over ordered keys; store negated distances as
    // sortable integers (micro-units) to avoid a float Ord wrapper.
    let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::new();
    heap.push((0, src));
    while let Some((neg_d, u)) = heap.pop() {
        let d = -(neg_d as f64) / 1e6;
        if d > dist[u] + 1e-9 {
            continue;
        }
        for v in 0..n {
            let w = weight[u][v];
            if !w.is_finite() {
                continue;
            }
            let nd = dist[u] + w;
            if nd + 1e-12 < dist[v] {
                dist[v] = nd;
                heap.push((-(nd * 1e6) as i64, v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::SummaryHistogram;
    use crate::summary::ReportedNeighbor;

    fn summary(
        node: u16,
        values: &[Value],
        neighbors: &[(u16, f64)],
        parent: Option<u16>,
    ) -> SummaryMessage {
        SummaryMessage {
            node: NodeId(node),
            histogram: SummaryHistogram::build(values, 10),
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            sum: values.iter().map(|&v| v as i64).sum(),
            count: values.len() as u32,
            data_rate_hz: 1.0 / 15.0,
            neighbors: neighbors
                .iter()
                .map(|&(n, q)| ReportedNeighbor {
                    node: NodeId(n),
                    quality: q,
                })
                .collect(),
            parent: parent.map(NodeId),
            newest_complete_index: StorageIndexId(1),
            generated_at: SimTime::from_secs(60),
        }
    }

    fn domain() -> ValueRange {
        ValueRange::new(0, 99)
    }

    #[test]
    fn summaries_drive_probabilities_and_rates() {
        let mut st = StatsStore::new(4, domain());
        st.record_summary(summary(1, &[10, 10, 10, 50], &[(0, 0.9)], Some(0)));
        assert!(st.p_produces(NodeId(1), 10) > st.p_produces(NodeId(1), 50));
        assert_eq!(st.p_produces(NodeId(2), 10), 0.0);
        assert!((st.data_rate(NodeId(1)) - 1.0 / 15.0).abs() < 1e-9);
        assert_eq!(st.data_rate(NodeId(3)), 0.0);
        assert_eq!(st.nodes_reporting(), 1);
        assert_eq!(st.summary_history().len(), 1);
    }

    #[test]
    fn latest_summary_wins_but_history_is_kept() {
        let mut st = StatsStore::new(3, domain());
        st.record_summary(summary(1, &[10; 5], &[], Some(0)));
        st.record_summary(summary(1, &[90; 5], &[], Some(0)));
        assert!(st.p_produces(NodeId(1), 90) > 0.0);
        assert_eq!(st.p_produces(NodeId(1), 10), 0.0);
        assert_eq!(st.summary_history().len(), 2);
    }

    #[test]
    fn query_statistics() {
        let mut st = StatsStore::new(3, domain());
        // Before any query: neutral prior.
        assert!((st.p_queries(50) - QUERY_PRIOR).abs() < 1e-12);
        assert_eq!(st.query_rate_hz(), 0.0);
        st.record_query(&ValueRange::new(10, 19), SimTime::from_secs(600));
        st.record_query(&ValueRange::new(10, 14), SimTime::from_secs(615));
        st.record_query(&ValueRange::new(80, 84), SimTime::from_secs(630));
        assert!((st.p_queries(12) - 2.0 / 3.0).abs() < 1e-9);
        assert!((st.p_queries(82) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.p_queries(50), 0.0);
        let rate = st.query_rate_hz();
        assert!((rate - 2.0 / 30.0).abs() < 1e-6, "rate {rate}");
    }

    #[test]
    fn xmits_uses_link_graph() {
        let mut st = StatsStore::new(4, domain());
        // 0 - 1 - 2 chain with perfect links, node 3 unknown.
        st.record_summary(summary(1, &[5], &[(0, 1.0), (2, 1.0)], Some(0)));
        st.record_summary(summary(2, &[5], &[(1, 1.0)], Some(1)));
        assert!((st.xmits(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-6);
        assert!((st.xmits(NodeId(0), NodeId(2)) - 2.0).abs() < 1e-6);
        assert_eq!(st.xmits(NodeId(1), NodeId(1)), 0.0);
        assert!(st.xmits(NodeId(0), NodeId(3)) >= UNKNOWN_PATH_XMITS - 1e-9);
        assert!((st.xmits_roundtrip_base(NodeId(2)) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn lossier_links_cost_more_xmits() {
        let mut st = StatsStore::new(3, domain());
        st.record_summary(summary(1, &[5], &[(0, 0.5)], Some(0)));
        st.record_summary(summary(2, &[5], &[(0, 1.0)], Some(0)));
        assert!(st.xmits(NodeId(0), NodeId(1)) > st.xmits(NodeId(0), NodeId(2)));
    }

    #[test]
    fn packet_headers_reveal_tree_edges() {
        let mut st = StatsStore::new(3, domain());
        st.note_parent(NodeId(2), NodeId(1));
        st.note_parent(NodeId(1), NodeId(0));
        // Even with no summaries, the tree edges give finite path estimates.
        assert!(st.xmits(NodeId(0), NodeId(2)) < UNKNOWN_PATH_XMITS);
    }

    #[test]
    fn min_live_index_and_aggregates() {
        let mut st = StatsStore::new(4, domain());
        assert_eq!(st.min_live_index(), StorageIndexId::NONE);
        let mut s1 = summary(1, &[10, 20], &[], Some(0));
        s1.newest_complete_index = StorageIndexId(3);
        let mut s2 = summary(2, &[70, 80], &[], Some(0));
        s2.newest_complete_index = StorageIndexId(5);
        st.record_summary(s1);
        st.record_summary(s2);
        assert_eq!(st.min_live_index(), StorageIndexId(3));
        assert_eq!(st.newest_complete_index(NodeId(2)), StorageIndexId(5));
        assert_eq!(st.max_from_summaries(), Some(80));
        assert_eq!(st.min_from_summaries(), Some(10));
    }

    #[test]
    fn ignores_out_of_range_nodes() {
        let mut st = StatsStore::new(3, domain());
        st.record_summary(summary(99, &[5], &[], None));
        assert_eq!(st.nodes_reporting(), 0);
        st.note_parent(NodeId(50), NodeId(0));
        assert_eq!(st.xmits(NodeId(0), NodeId(50)), UNKNOWN_PATH_XMITS);
    }
}
