//! Equal-width summary histograms and the `P(p produces v)` estimate.
//!
//! "The histogram part of the summary message captures the distribution of
//! sensor readings on that node over its recent history. It consists of
//! nBins fixed-width bins (in our implementation, nBins is 10). The value in
//! bin n is the number of readings between min + n((max − min + 1)/nBins) and
//! min + (n + 1)((max − min + 1)/nBins), where min and max are the smallest
//! and largest values the attribute has taken on..." (Section 5.2)
//!
//! The probability model follows the paper's pseudo-code exactly, assuming a
//! uniform distribution of values within a bin:
//!
//! ```text
//! P(p → v) {
//!     binWidth = (max − min + 1) / nBins
//!     bin      = (v − min) / binWidth
//!     P(v|bin) = 1 / binWidth
//!     P(bin)   = height(bin) / Σ heights
//!     return P(v|bin) · P(bin)
//! }
//! ```

use scoop_types::Value;
use serde::{Deserialize, Serialize};

/// A fixed-width histogram over a node's recent readings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryHistogram {
    /// Smallest value observed in the window.
    min: Value,
    /// Largest value observed in the window.
    max: Value,
    /// Bin counts, lowest bin first.
    bins: Vec<u32>,
}

impl SummaryHistogram {
    /// Builds a histogram with `n_bins` equal-width bins over `values`.
    /// Returns `None` if `values` is empty (a node with no readings sends no
    /// histogram).
    pub fn build(values: &[Value], n_bins: usize) -> Option<Self> {
        if values.is_empty() || n_bins == 0 {
            return None;
        }
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let mut bins = vec![0u32; n_bins];
        let width = Self::bin_width_for(min, max, n_bins);
        for &v in values {
            let idx = (((v - min) as f64) / width).floor() as usize;
            let idx = idx.min(n_bins - 1);
            bins[idx] += 1;
        }
        Some(SummaryHistogram { min, max, bins })
    }

    fn bin_width_for(min: Value, max: Value, n_bins: usize) -> f64 {
        ((max - min + 1) as f64 / n_bins as f64).max(f64::MIN_POSITIVE)
    }

    /// The smallest value covered.
    pub fn min(&self) -> Value {
        self.min
    }

    /// The largest value covered.
    pub fn max(&self) -> Value {
        self.max
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// The bin counts.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Total number of readings summarized.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|&b| b as u64).sum()
    }

    /// Width of each bin in value units.
    pub fn bin_width(&self) -> f64 {
        Self::bin_width_for(self.min, self.max, self.bins.len())
    }

    /// The paper's `P(p → v)`: the probability that this node's next reading
    /// is exactly `v`, assuming values are uniform within each bin. Values
    /// outside `[min, max]` have probability zero.
    pub fn probability_of(&self, v: Value) -> f64 {
        if v < self.min || v > self.max {
            return 0.0;
        }
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let width = self.bin_width();
        let bin = (((v - self.min) as f64) / width).floor() as usize;
        let bin = bin.min(self.bins.len() - 1);
        let p_bin = self.bins[bin] as f64 / total as f64;
        let p_v_given_bin = 1.0 / width.max(1.0);
        p_v_given_bin * p_bin
    }

    /// The probability mass this histogram assigns to any value inside the
    /// given inclusive range (used by the range-placement extension and by
    /// query planning against summaries).
    pub fn probability_of_range(&self, lo: Value, hi: Value) -> f64 {
        if hi < self.min || lo > self.max {
            return 0.0;
        }
        (lo.max(self.min)..=hi.min(self.max))
            .map(|v| self.probability_of(v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_has_no_histogram() {
        assert!(SummaryHistogram::build(&[], 10).is_none());
        assert!(SummaryHistogram::build(&[1, 2, 3], 0).is_none());
    }

    #[test]
    fn paper_worked_example() {
        // "if min = 1, max = 100, and nBins = 10 and a node produced 8
        // readings between 50 and 60, the value of the 6th bin (n = 5) in the
        // histogram would be 8."
        let mut values = vec![1, 100]; // pin the min and max
        values.extend([51, 52, 53, 54, 55, 56, 57, 58]); // 8 readings in bin 5
        let h = SummaryHistogram::build(&values, 10).unwrap();
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bin_width(), 10.0);
        assert_eq!(h.bins()[5], 8);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn single_value_histogram() {
        let h = SummaryHistogram::build(&[42; 30], 10).unwrap();
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.total(), 30);
        // All mass on one value, bin width (max-min+1)/10 = 0.1.
        let p = h.probability_of(42);
        assert!(p > 0.99, "p = {p}");
        assert_eq!(h.probability_of(43), 0.0);
    }

    #[test]
    fn probabilities_sum_to_at_most_one_over_domain() {
        let values: Vec<Value> = (0..30).map(|i| (i * 7) % 100).collect();
        let h = SummaryHistogram::build(&values, 10).unwrap();
        let sum: f64 = (h.min()..=h.max()).map(|v| h.probability_of(v)).sum();
        assert!(
            (sum - 1.0).abs() < 0.05,
            "probabilities over the support should sum to ~1, got {sum}"
        );
    }

    #[test]
    fn out_of_range_values_have_zero_probability() {
        let h = SummaryHistogram::build(&[10, 20, 30], 10).unwrap();
        assert_eq!(h.probability_of(9), 0.0);
        assert_eq!(h.probability_of(31), 0.0);
        assert!(h.probability_of(20) > 0.0);
    }

    #[test]
    fn heavier_bins_have_higher_probability() {
        let mut values = vec![50; 20];
        values.extend([0, 99]);
        let h = SummaryHistogram::build(&values, 10).unwrap();
        assert!(h.probability_of(50) > h.probability_of(0));
        assert!(h.probability_of(50) > h.probability_of(99));
    }

    #[test]
    fn range_probability_accumulates() {
        let values: Vec<Value> = (0..=29).collect();
        let h = SummaryHistogram::build(&values, 10).unwrap();
        let full = h.probability_of_range(0, 29);
        assert!((full - 1.0).abs() < 0.05, "full-range mass {full}");
        let half = h.probability_of_range(0, 14);
        assert!((half - 0.5).abs() < 0.1, "half-range mass {half}");
        assert_eq!(h.probability_of_range(100, 200), 0.0);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let values: Vec<Value> = (1..=100).collect();
        let h = SummaryHistogram::build(&values, 10).unwrap();
        assert_eq!(h.bins().iter().sum::<u32>(), 100);
        assert_eq!(h.bins()[9], 10, "values 91..=100 fall in the last bin");
        assert!(h.probability_of(100) > 0.0);
    }
}
