//! Application-level wire messages.
//!
//! The network simulator ([`scoop_net`]) is generic over its payload type;
//! the simulation harness instantiates it with [`ScoopPayload`], which covers
//! every message the Scoop, LOCAL, BASE, and HASH policies exchange.

use crate::index::IndexEntry;
use crate::summary::SummaryMessage;
use scoop_routing::Beacon;
use scoop_trickle::Chunk;
use scoop_types::{
    AggregateSpec, NodeBitmap, NodeId, PartialAggregate, Reading, SimTime, StorageIndexId,
    ValueRange,
};
use serde::{Deserialize, Serialize};

/// A data message carrying one or more readings towards their owner.
///
/// "a data message contains three fields: the data item itself (v), an owner
/// node (o), and a storage index ID (sid), all three of which are initialized
/// by v's producer ... However, o and sid may be overwritten by nodes with a
/// newer storage index." (Section 5.4). Readings destined for the same owner
/// may be batched, up to 5 per packet by default.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataMessage {
    /// The readings being shipped (all map to the same owner under `sid`).
    pub readings: Vec<Reading>,
    /// The owner the producer (or a rerouting intermediate) selected.
    pub owner: NodeId,
    /// The storage index that determined `owner`.
    pub sid: StorageIndexId,
}

impl DataMessage {
    /// The value used for (re-)routing decisions: the first reading's value.
    /// Batches only ever contain readings that mapped to the same owner.
    pub fn routing_value(&self) -> Option<scoop_types::Value> {
        self.readings.first().map(|r| r.value)
    }
}

/// One chunk of a disseminated storage index, plus the metadata a node needs
/// to start using the index once all chunks have arrived.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MappingChunk {
    /// The chunked entries. The chunk's `version` is the storage index id.
    pub chunk: Chunk<IndexEntry>,
    /// The attribute domain the index covers.
    pub domain: ValueRange,
    /// When the basestation created the index.
    pub created_at: SimTime,
}

impl MappingChunk {
    /// The storage index id this chunk belongs to.
    pub fn index_id(&self) -> StorageIndexId {
        StorageIndexId(self.chunk.version as u32)
    }
}

/// A query disseminated from the basestation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryMessage {
    /// Monotonically increasing query identifier.
    pub query_id: u32,
    /// Value range of interest.
    pub values: ValueRange,
    /// Earliest sample timestamp of interest.
    pub time_lo: SimTime,
    /// Latest sample timestamp of interest.
    pub time_hi: SimTime,
    /// Which nodes must answer (one bit per node, Section 5.5).
    pub targets: NodeBitmap,
    /// Aggregate workloads only: the operator and error budget repliers must
    /// apply. `None` — the seed point/range behavior — serializes to the
    /// legacy shape, keeping committed artifacts byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub aggregate: Option<AggregateSpec>,
}

/// A reply from one queried node back to the basestation. Sent even when no
/// tuples matched, exactly as in the paper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplyMessage {
    /// The query being answered.
    pub query_id: u32,
    /// The answering node.
    pub node: NodeId,
    /// The matching readings found in the node's data buffer. Empty for
    /// aggregate replies, which carry `aggregate` instead.
    pub readings: Vec<Reading>,
    /// Aggregate workloads only: the partial aggregate this subtree
    /// contributes (merged hop-by-hop under the LOCAL tree-aggregation path,
    /// forwarded verbatim under value routing).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub aggregate: Option<PartialAggregate>,
}

/// Multi-sink federation only: a sink's epoch-stamped liveness beacon,
/// gossiped network-wide so surviving sinks can detect a dead peer and take
/// over its attribute range after the failover timeout. Carried as
/// [`MessageKind::Heartbeat`](scoop_types::MessageKind::Heartbeat), so — like
/// routing beacons — it never counts against the paper's message metrics.
/// Never sent in the classic single-sink mode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SinkAliveMessage {
    /// The beaconing sink.
    pub sink: NodeId,
    /// Strictly increasing per sink; a restarted sink resumes from its
    /// pre-crash epoch, so fresh beacons always win gossip dedup.
    pub epoch: u64,
}

/// Every application payload exchanged in a simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScoopPayload {
    /// Routing-tree heartbeat / tree-join beacon.
    Beacon(Beacon),
    /// Periodic per-node statistics report.
    Summary(SummaryMessage),
    /// A chunk of a storage index.
    Mapping(MappingChunk),
    /// Sensor readings being routed to their owner.
    Data(DataMessage),
    /// A query being disseminated.
    Query(QueryMessage),
    /// A query reply being routed back to the basestation.
    Reply(ReplyMessage),
    /// A sink's liveness beacon (see [`SinkAliveMessage`]).
    SinkAlive(SinkAliveMessage),
}

impl ScoopPayload {
    /// A short name for logging and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            ScoopPayload::Beacon(_) => "beacon",
            ScoopPayload::Summary(_) => "summary",
            ScoopPayload::Mapping(_) => "mapping",
            ScoopPayload::Data(_) => "data",
            ScoopPayload::Query(_) => "query",
            ScoopPayload::Reply(_) => "reply",
            ScoopPayload::SinkAlive { .. } => "sink-alive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{Attribute, Value};

    fn reading(v: Value) -> Reading {
        Reading::new(NodeId(3), Attribute::Light, v, SimTime::from_secs(1))
    }

    #[test]
    fn data_message_routing_value() {
        let msg = DataMessage {
            readings: vec![reading(7), reading(7)],
            owner: NodeId(2),
            sid: StorageIndexId(1),
        };
        assert_eq!(msg.routing_value(), Some(7));
        let empty = DataMessage {
            readings: vec![],
            owner: NodeId(2),
            sid: StorageIndexId(1),
        };
        assert_eq!(empty.routing_value(), None);
    }

    #[test]
    fn mapping_chunk_index_id() {
        let mc = MappingChunk {
            chunk: Chunk {
                version: 9,
                index: 0,
                total: 1,
                items: vec![],
            },
            domain: ValueRange::new(0, 99),
            created_at: SimTime::from_secs(240),
        };
        assert_eq!(mc.index_id(), StorageIndexId(9));
    }

    #[test]
    fn payload_names_are_distinct() {
        let payloads = [
            ScoopPayload::Data(DataMessage {
                readings: vec![],
                owner: NodeId(0),
                sid: StorageIndexId(0),
            }),
            ScoopPayload::Reply(ReplyMessage {
                query_id: 0,
                node: NodeId(1),
                readings: vec![],
                aggregate: None,
            }),
            ScoopPayload::Query(QueryMessage {
                query_id: 0,
                values: ValueRange::new(0, 1),
                time_lo: SimTime::ZERO,
                time_hi: SimTime::ZERO,
                targets: NodeBitmap::empty(),
                aggregate: None,
            }),
        ];
        let names: std::collections::HashSet<_> = payloads.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), payloads.len());
    }
}
