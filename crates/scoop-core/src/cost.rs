//! The expected-message cost model behind the indexing algorithm (Figure 2).
//!
//! ```text
//! for all values v:
//!   for all sensors o:                      [potential owner]
//!     for all sensors p:                    [producer]
//!       cost(o,v) += P(p produces v) × rate_p × xmits(p → o)
//!     cost(o,v)   += P(user queries v) × query_rate × xmits(base → o → base)
//!   storage_index[v] = argmin_o cost(o,v)
//! ```
//!
//! Costs are expressed in expected transmissions per second. The model also
//! prices the "store-local" alternative policy so the basestation can fall
//! back to it when that is cheaper (Section 4).

use crate::stats_store::StatsStore;
use scoop_types::{NodeId, Value};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Parameters of one cost evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Queries per second the user is issuing. Usually
    /// [`StatsStore::query_rate_hz`], but experiments override it to study
    /// hypothetical workloads.
    pub query_rate_hz: f64,
    /// Messages of query dissemination charged per node involved when
    /// pricing the store-local policy (Trickle makes this roughly one
    /// broadcast per node).
    pub local_query_flood_factor: f64,
}

impl CostParams {
    /// Parameters using the store's measured query rate.
    pub fn from_stats(stats: &StatsStore) -> Self {
        CostParams {
            query_rate_hz: stats.query_rate_hz(),
            local_query_flood_factor: 1.0,
        }
    }

    /// Parameters with an explicit query rate.
    pub fn with_query_rate(query_rate_hz: f64) -> Self {
        CostParams {
            query_rate_hz,
            local_query_flood_factor: 1.0,
        }
    }
}

/// Evaluates expected-message costs against a [`StatsStore`].
pub struct CostModel<'a> {
    stats: &'a StatsStore,
    params: CostParams,
    /// Cached `(producer, rate, owner-independent)` list: producers with a
    /// non-zero data rate, so the inner loop skips silent nodes.
    producers: Vec<(NodeId, f64)>,
    /// Private copy of the stats store driving its per-source lazy Dijkstra
    /// cache; `xmits` needs `&mut`, so interior mutability keeps the cost
    /// model's public API immutable. Rows materialize on first touch —
    /// constructing a model allocates nothing quadratic, so a policy that
    /// never prices a placement (Base/Local/Hash at 32k nodes) never pays
    /// for one.
    warm: RefCell<StatsStore>,
}

impl<'a> CostModel<'a> {
    /// Builds a cost model. Cheap at any scale: xmits rows are computed
    /// lazily per source, so nothing `O(n²)` is allocated up front — the
    /// `O(V · n²)` remap loop is the only thing that can materialize many
    /// rows, and only when it actually runs.
    pub fn new(stats: &'a StatsStore, params: CostParams) -> Self {
        let n = stats.total_nodes();
        let producers = (0..n)
            .map(|i| NodeId(i as u16))
            .map(|p| (p, stats.data_rate(p)))
            .filter(|&(_, r)| r > 0.0)
            .collect();
        CostModel {
            stats,
            params,
            producers,
            warm: RefCell::new(stats.clone()),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// Expected transmissions to get one packet from `a` to `b`. The first
    /// lookup from a given `a` runs that source's Dijkstra and caches the
    /// row; the values are bit-identical to the dense-table era because each
    /// row was always an independent single-source computation.
    pub fn xmits(&self, a: NodeId, b: NodeId) -> f64 {
        self.warm.borrow_mut().xmits(a, b)
    }

    /// How many per-source xmits rows have been materialized so far. A cost
    /// model that priced nothing reports zero — the guard the 32k-node
    /// HASH/Base/Local scenarios rely on.
    pub fn rows_materialized(&self) -> usize {
        self.warm.borrow().xmits_rows_cached()
    }

    /// The paper's `cost(o, v)`: expected messages per second if value `v` is
    /// owned by node `o`.
    pub fn placement_cost(&self, owner: NodeId, v: Value) -> f64 {
        let mut cost = 0.0;
        for &(p, rate) in &self.producers {
            let prob = self.stats.p_produces(p, v);
            if prob > 0.0 {
                cost += prob * rate * self.xmits(p, owner);
            }
        }
        cost += self.stats.p_queries(v)
            * self.params.query_rate_hz
            * (2.0 * self.xmits(NodeId::BASESTATION, owner));
        cost
    }

    /// The best owner for value `v` among `candidates` and its cost. Ties are
    /// broken towards the lower node id (which prefers the basestation), so
    /// values nobody produces or queries do not thrash between epochs.
    pub fn best_owner(&self, v: Value, candidates: &[NodeId]) -> (NodeId, f64) {
        let mut best = (NodeId::BASESTATION, f64::INFINITY);
        for &o in candidates {
            let c = self.placement_cost(o, v);
            if c + 1e-12 < best.1 {
                best = (o, c);
            }
        }
        if best.1.is_infinite() {
            (NodeId::BASESTATION, 0.0)
        } else {
            best
        }
    }

    /// Expected messages per second of the whole index described by a
    /// per-value owner assignment.
    pub fn assignment_cost(&self, owners: &[(Value, NodeId)]) -> f64 {
        owners.iter().map(|&(v, o)| self.placement_cost(o, v)).sum()
    }

    /// Expected messages per second of the store-local policy: every query is
    /// flooded to all nodes and every node sends a reply up the tree, "even
    /// if no tuples matched the query" (Section 5.5); data storage itself is
    /// free.
    pub fn store_local_cost(&self) -> f64 {
        let n = self.stats.total_nodes();
        let flood = self.params.local_query_flood_factor * (n.saturating_sub(1)) as f64;
        let replies: f64 = (1..n)
            .map(|i| self.xmits(NodeId(i as u16), NodeId::BASESTATION))
            .sum();
        self.params.query_rate_hz * (flood + replies)
    }

    /// Expected messages per second of the send-to-base policy: every reading
    /// travels from its producer to the basestation; queries are free.
    pub fn send_to_base_cost(&self) -> f64 {
        self.producers
            .iter()
            .map(|&(p, rate)| rate * self.xmits(p, NodeId::BASESTATION))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::SummaryHistogram;
    use crate::summary::{ReportedNeighbor, SummaryMessage};
    use scoop_types::{SimTime, StorageIndexId, ValueRange};

    /// Builds a 5-node chain 0 — 1 — 2 — 3 — 4 with perfect links where node
    /// i (i ≥ 1) produces values near 10·i.
    fn chain_store() -> StatsStore {
        let domain = ValueRange::new(0, 99);
        let mut st = StatsStore::new(5, domain);
        for i in 1..5u16 {
            let values: Vec<Value> = vec![(10 * i) as Value; 20];
            let mut neighbors = vec![ReportedNeighbor {
                node: NodeId(i - 1),
                quality: 1.0,
            }];
            if i < 4 {
                neighbors.push(ReportedNeighbor {
                    node: NodeId(i + 1),
                    quality: 1.0,
                });
            }
            st.record_summary(SummaryMessage {
                node: NodeId(i),
                histogram: SummaryHistogram::build(&values, 10),
                min: values.iter().min().copied(),
                max: values.iter().max().copied(),
                sum: values.iter().map(|&v| v as i64).sum(),
                count: values.len() as u32,
                data_rate_hz: 1.0 / 15.0,
                neighbors,
                parent: Some(NodeId(i - 1)),
                newest_complete_index: StorageIndexId(1),
                generated_at: SimTime::from_secs(100),
            });
        }
        st
    }

    #[test]
    fn producers_prefer_owning_their_own_values_when_queries_are_rare() {
        let st = chain_store();
        let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
        let candidates = st.candidate_owners();
        // Node 3 produces value 30; with no queries it should own it (P1/P3).
        let (owner, cost) = model.best_owner(30, &candidates);
        assert_eq!(owner, NodeId(3));
        assert!(cost.abs() < 1e-9, "producing node stores at zero cost");
    }

    #[test]
    fn high_query_rate_pulls_values_to_the_basestation() {
        let st = chain_store();
        // Make queries far more frequent than data production (P2).
        let model = CostModel::new(&st, CostParams::with_query_rate(10.0));
        let candidates = st.candidate_owners();
        let (owner, _) = model.best_owner(40, &candidates);
        assert!(
            owner.index() < 4,
            "the deep producer should no longer own its value, got {owner}"
        );
        // With truly enormous query rates everything lands on the root.
        let model = CostModel::new(&st, CostParams::with_query_rate(1000.0));
        let (owner, _) = model.best_owner(40, &candidates);
        assert_eq!(owner, NodeId::BASESTATION);
    }

    #[test]
    fn placement_cost_increases_with_distance_from_producer() {
        let st = chain_store();
        let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
        // Value 40 is produced by node 4 at the end of the chain.
        let c4 = model.placement_cost(NodeId(4), 40);
        let c2 = model.placement_cost(NodeId(2), 40);
        let c0 = model.placement_cost(NodeId(0), 40);
        assert!(c4 < c2 && c2 < c0, "{c4} < {c2} < {c0}");
    }

    #[test]
    fn unproduced_unqueried_values_default_to_the_basestation() {
        let st = chain_store();
        let mut st = st;
        // Observe queries that never touch value 77 so the prior is replaced
        // by a measured distribution with P(77) = 0.
        st.record_query(&ValueRange::new(10, 15), SimTime::from_secs(600));
        st.record_query(&ValueRange::new(20, 25), SimTime::from_secs(615));
        let model = CostModel::new(&st, CostParams::from_stats(&st));
        let (owner, cost) = model.best_owner(77, &st.candidate_owners());
        assert_eq!(owner, NodeId::BASESTATION);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn store_local_vs_send_to_base_crossover_with_query_rate() {
        let st = chain_store();
        // No queries at all: store-local costs nothing, send-to-base is
        // positive.
        let quiet = CostModel::new(&st, CostParams::with_query_rate(0.0));
        assert_eq!(quiet.store_local_cost(), 0.0);
        assert!(quiet.send_to_base_cost() > 0.0);
        // Very chatty queries: store-local becomes much more expensive.
        let busy = CostModel::new(&st, CostParams::with_query_rate(1.0));
        assert!(busy.store_local_cost() > busy.send_to_base_cost());
    }

    #[test]
    fn construction_is_lazy_even_at_hash_scale() {
        // 32k nodes plus the basestation. The eager era allocated an
        // n² table (8+ GiB at this size) in `new`; construction must stay
        // O(n) and materialize xmits rows only when a lookup demands them.
        let st = StatsStore::new(32_769, ValueRange::new(0, 99));
        let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
        assert_eq!(model.rows_materialized(), 0, "no lookups, no rows");
        let x = model.xmits(NodeId(17), NodeId(29));
        assert!(x > 0.0, "disconnected nodes get the unknown-path penalty");
        assert_eq!(model.rows_materialized(), 1, "one source probed, one row");
        // A second lookup from the same source reuses the cached row.
        let _ = model.xmits(NodeId(17), NodeId(31_000));
        assert_eq!(model.rows_materialized(), 1);
    }

    #[test]
    fn assignment_cost_sums_per_value_costs() {
        let st = chain_store();
        let model = CostModel::new(&st, CostParams::with_query_rate(0.0));
        let a = model.assignment_cost(&[(10, NodeId(1)), (20, NodeId(2))]);
        let b = model.placement_cost(NodeId(1), 10) + model.placement_cost(NodeId(2), 20);
        assert!((a - b).abs() < 1e-12);
    }
}
