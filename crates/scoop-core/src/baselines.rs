//! The comparison policies: BASE, LOCAL, and HASH.
//!
//! BASE ("send-to-base") and LOCAL ("store-local, flood queries") are fully
//! simulated by the harness; this module provides their *analytical* expected
//! costs, which the basestation's store-local fallback uses and which the
//! benchmark harness reports alongside the simulated numbers. HASH — a
//! static, uniform value-to-node mapping in the spirit of geographic hash
//! tables — is the policy the paper could only evaluate analytically; we
//! provide both the analytical model and a concrete [`StorageIndex`] so it
//! can be simulated too.

use crate::index::StorageIndex;
use scoop_net::Topology;
use scoop_types::{NodeId, SimTime, StorageIndexId, ValueRange};

/// Builds the static HASH index: value `v` is owned by node
/// `1 + (hash(v) mod n_sensors)`, independent of any statistics. The same
/// mapping is used for the whole experiment (id 1).
pub fn hash_index(domain: ValueRange, num_sensors: usize, created_at: SimTime) -> StorageIndex {
    let owners: Vec<NodeId> = domain
        .values()
        .map(|v| NodeId((1 + (splitmix(v as u64) as usize % num_sensors.max(1))) as u16))
        .collect();
    StorageIndex::from_owners(StorageIndexId(1), domain, &owners, created_at)
        .expect("owner vector sized from the domain")
}

/// A small, deterministic integer hash (SplitMix64 finalizer) so the HASH
/// baseline does not depend on the experiment seed. Public because the
/// multi-sink federation reuses it to partition attribute ownership across
/// basestations (the "existing hash" of the fault-model contract).
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Analytical expected message counts for a whole experiment, used to price
/// the HASH baseline (as the paper does) and to sanity-check the simulated
/// BASE / LOCAL numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyticalCosts {
    /// Expected data messages.
    pub data: f64,
    /// Expected query-dissemination messages.
    pub query: f64,
    /// Expected reply messages.
    pub reply: f64,
}

impl AnalyticalCosts {
    /// Total expected messages.
    pub fn total(&self) -> f64 {
        self.data + self.query + self.reply
    }
}

/// Analytical model over a known topology (hop counts stand in for expected
/// transmissions; the simulator adds loss-driven retransmissions on top).
pub struct AnalyticalModel<'a> {
    topo: &'a Topology,
}

impl<'a> AnalyticalModel<'a> {
    /// Creates a model over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        AnalyticalModel { topo }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> f64 {
        self.topo.hop_distance(a, b).unwrap_or(0) as f64
    }

    /// Mean hop distance from a sensor to the basestation.
    pub fn mean_hops_to_base(&self) -> f64 {
        let sensors: Vec<NodeId> = self.topo.sensors().collect();
        if sensors.is_empty() {
            return 0.0;
        }
        sensors
            .iter()
            .map(|&s| self.hops(s, NodeId::BASESTATION))
            .sum::<f64>()
            / sensors.len() as f64
    }

    /// Mean hop distance between two arbitrary distinct nodes — the expected
    /// cost of shipping a reading to a uniformly random owner, i.e. "roughly
    /// halfway across the network" (Section 6).
    pub fn mean_pairwise_hops(&self) -> f64 {
        let nodes: Vec<NodeId> = self.topo.nodes().collect();
        let mut total = 0.0;
        let mut count = 0usize;
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    total += self.hops(a, b);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Expected costs of the BASE policy: every reading travels its
    /// producer's depth; queries are answered at the basestation for free.
    pub fn base(&self, readings_per_sensor: u64) -> AnalyticalCosts {
        let data: f64 = self
            .topo
            .sensors()
            .map(|s| self.hops(s, NodeId::BASESTATION) * readings_per_sensor as f64)
            .sum();
        AnalyticalCosts {
            data,
            query: 0.0,
            reply: 0.0,
        }
    }

    /// Expected costs of the LOCAL policy: data is free; every query is
    /// flooded (roughly one broadcast per node thanks to Trickle) and every
    /// node replies up the tree.
    pub fn local(&self, num_queries: u64) -> AnalyticalCosts {
        let n = self.topo.num_sensors() as f64;
        let reply_per_query: f64 = self
            .topo
            .sensors()
            .map(|s| self.hops(s, NodeId::BASESTATION))
            .sum();
        AnalyticalCosts {
            data: 0.0,
            query: num_queries as f64 * n,
            reply: num_queries as f64 * reply_per_query,
        }
    }

    /// Expected costs of the HASH policy: every reading travels to a random
    /// node (mean pairwise distance); every query contacts the owners of the
    /// queried values (`owners_per_query` of them on average, ~1 for the
    /// paper's narrow queries) and each owner replies.
    pub fn hash(
        &self,
        readings_per_sensor: u64,
        num_queries: u64,
        owners_per_query: f64,
    ) -> AnalyticalCosts {
        let n_sensors = self.topo.num_sensors() as f64;
        let data = n_sensors * readings_per_sensor as f64 * self.mean_pairwise_hops();
        let per_owner_roundtrip = 2.0 * self.mean_hops_to_base();
        AnalyticalCosts {
            data,
            query: num_queries as f64 * owners_per_query * self.mean_hops_to_base(),
            reply: num_queries as f64
                * owners_per_query
                * (per_owner_roundtrip - self.mean_hops_to_base()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::office_floor(30, 5).unwrap()
    }

    #[test]
    fn hash_index_is_complete_deterministic_and_spread_out() {
        let domain = ValueRange::new(0, 99);
        let a = hash_index(domain, 30, SimTime::ZERO);
        let b = hash_index(domain, 30, SimTime::ZERO);
        assert_eq!(
            a.entries(),
            b.entries(),
            "static hash must be deterministic"
        );
        assert!(a.is_complete());
        // No value maps to the basestation, and many distinct owners exist.
        assert!(a.owners().iter().all(|o| !o.is_basestation()));
        assert!(a.owners().len() > 15, "uniform hash should spread values");
    }

    #[test]
    fn hash_index_single_sensor_degenerates_gracefully() {
        let idx = hash_index(ValueRange::new(0, 9), 1, SimTime::ZERO);
        assert!(idx.owners().iter().all(|&o| o == NodeId(1)));
    }

    #[test]
    fn base_cost_scales_with_rate_and_depth() {
        let t = topo();
        let m = AnalyticalModel::new(&t);
        let a = m.base(10);
        let b = m.base(20);
        assert!(b.data > a.data * 1.99 && b.data < a.data * 2.01);
        assert_eq!(a.query, 0.0);
    }

    #[test]
    fn local_cost_scales_with_queries_not_data() {
        let t = topo();
        let m = AnalyticalModel::new(&t);
        let a = m.local(10);
        let b = m.local(20);
        assert_eq!(a.data, 0.0);
        assert!(b.total() > a.total() * 1.99);
        assert!(a.query >= 10.0 * t.num_sensors() as f64 * 0.999);
    }

    #[test]
    fn hash_data_cost_comparable_to_base_when_rates_equal() {
        // Paper: "We expect the overall storage costs of HASH to be
        // comparable to the storage costs of BASE because, on average, each
        // packet has to be sent roughly halfway across the network."
        let t = topo();
        let m = AnalyticalModel::new(&t);
        let base = m.base(100);
        let hash = m.hash(100, 100, 1.0);
        let ratio = hash.data / base.data;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "hash/base data cost ratio {ratio} should be of the same order"
        );
        // But HASH pays extra for querying, which BASE does not.
        assert!(hash.query + hash.reply > 0.0);
        assert_eq!(base.query + base.reply, 0.0);
    }

    #[test]
    fn mean_pairwise_hops_is_positive_and_bounded_by_depth() {
        let t = topo();
        let m = AnalyticalModel::new(&t);
        let mean = m.mean_pairwise_hops();
        assert!(mean > 1.0);
        assert!(mean <= t.network_depth() as f64 * 2.0);
    }
}
