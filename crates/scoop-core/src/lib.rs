//! Scoop's adaptive storage index: statistics, cost model, index
//! construction, data routing rules, query planning, and the baseline
//! policies it is compared against.
//!
//! The crate follows the structure of Sections 4 and 5 of the paper:
//!
//! * [`histogram`] / [`summary`] — the per-node statistics (equal-width
//!   histograms over the recent-readings buffer, min/max/sum, topology info)
//!   that nodes periodically ship to the basestation.
//! * [`stats_store`] — the basestation's view: the last summary from every
//!   node, the reconstructed link graph and routing tree, query statistics,
//!   and from them the `xmits(x → y)` and probability estimates the indexing
//!   algorithm needs.
//! * [`cost`] / [`index`] — the `O(V · n²)` index-selection algorithm of
//!   Figure 2, the store-local fallback comparison, and the compact
//!   range-coalesced representation that gets disseminated.
//! * [`placement`] — the extensions sketched in Section 4: owner sets and
//!   range-granularity placement.
//! * [`routing_rules`] — the six data-routing rules of Section 5.4.
//! * [`query_plan`] — the basestation's query planner over (possibly many
//!   generations of) storage indices, including the answer-from-summaries
//!   shortcut (Section 5.5).
//! * [`baselines`] — the BASE / LOCAL / HASH comparison policies, both as
//!   analytical cost models (as the paper evaluates HASH) and as inputs for
//!   full simulation.
//! * [`messages`] — the wire-format structs carried by the network simulator.

#![warn(missing_docs)]

pub mod baselines;
pub mod cost;
pub mod histogram;
pub mod index;
pub mod messages;
pub mod placement;
pub mod query_plan;
pub mod routing_rules;
pub mod stats_store;
pub mod summary;

pub use cost::{CostModel, CostParams};
pub use histogram::SummaryHistogram;
pub use index::{IndexBuilder, IndexEntry, StorageIndex};
pub use messages::{
    DataMessage, MappingChunk, QueryMessage, ReplyMessage, ScoopPayload, SinkAliveMessage,
};
pub use query_plan::{QueryPlan, QueryPlanner};
pub use routing_rules::{route_data, DataRoutingAction, LocalNodeView};
pub use stats_store::StatsStore;
pub use summary::SummaryMessage;
