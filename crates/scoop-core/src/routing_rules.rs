//! The six data-routing rules of Section 5.4.
//!
//! "On receiving or producing a data item, a node n applies the following
//! routing rules (in order):
//!
//! 1. If n's storage index is newer than sid, look up v in n's storage index
//!    and update o and sid in the packet header.
//! 2. If o == n, store data locally on n.
//! 3. If o is in n's neighbor list, send the packet directly to that
//!    neighbor, irrespective of the routing tree.
//! 4. If n is the base station, store it locally.
//! 5. If o is a node in n's descendants list, send the packet down the
//!    appropriate child branch.
//! 6. Otherwise, send data item to n's parent."

use crate::index::StorageIndex;
use crate::messages::DataMessage;
use scoop_routing::RoutingState;
use scoop_types::NodeId;

/// The slice of a node's state the routing rules need.
pub struct LocalNodeView<'a> {
    /// This node's id.
    pub id: NodeId,
    /// The newest *complete* storage index this node holds, if any.
    pub index: Option<&'a StorageIndex>,
    /// The node's routing state (neighbor list, descendants list, parent).
    pub routing: &'a RoutingState,
    /// Whether routing rule 3 (direct-to-neighbor shortcut) is enabled.
    pub neighbor_shortcut: bool,
}

/// The decision produced by the routing rules.
#[derive(Clone, Debug, PartialEq)]
pub enum DataRoutingAction {
    /// Store the readings locally (rules 2 and 4, or the "never received any
    /// index" default).
    StoreLocal(DataMessage),
    /// Forward the (possibly re-addressed) message to the given next hop.
    Forward {
        /// The neighbor to transmit to.
        next_hop: NodeId,
        /// The message to transmit (owner / sid may have been updated by
        /// rule 1).
        message: DataMessage,
    },
    /// The node is not attached to the tree and has no way to make progress;
    /// store locally rather than lose the data.
    StrandedStoreLocal(DataMessage),
}

/// Applies the routing rules of Section 5.4 to a data message that was just
/// produced by or received at the node described by `view`.
pub fn route_data(view: &LocalNodeView<'_>, mut msg: DataMessage) -> DataRoutingAction {
    // Rule 1: a newer local index re-addresses the packet.
    if let Some(index) = view.index {
        if index.id() > msg.sid {
            if let Some(v) = msg.routing_value() {
                if let Some(new_owner) = index.lookup(v) {
                    msg.owner = new_owner;
                    msg.sid = index.id();
                }
            }
        }
    } else if msg.sid == scoop_types::StorageIndexId::NONE && msg.owner == view.id {
        // A node that has never received a complete storage index stores all
        // its data locally (Section 5.3). Producers encode this by setting
        // themselves as owner with the NONE sid; rule 2 below handles it.
    }

    // Rule 2: we are the owner.
    if msg.owner == view.id {
        return DataRoutingAction::StoreLocal(msg);
    }

    // Rule 3: the owner is a direct neighbor — shortcut through the tree.
    if view.neighbor_shortcut && view.routing.is_neighbor(msg.owner) {
        return DataRoutingAction::Forward {
            next_hop: msg.owner,
            message: msg,
        };
    }

    // Rule 4: the basestation never routes data back down the tree.
    if view.id.is_basestation() {
        return DataRoutingAction::StoreLocal(msg);
    }

    // Rule 5: the owner is one of our descendants — route down that branch.
    if let Some(child) = view.routing.descendants().next_hop(msg.owner) {
        return DataRoutingAction::Forward {
            next_hop: child,
            message: msg,
        };
    }

    // Rule 6: send towards the basestation via our parent.
    match view.routing.parent() {
        Some(parent) => DataRoutingAction::Forward {
            next_hop: parent,
            message: msg,
        },
        None => DataRoutingAction::StrandedStoreLocal(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::StorageIndex;
    use scoop_net::{LinkDst, PacketMeta};
    use scoop_routing::RoutingConfig;
    use scoop_types::{
        Attribute, MessageKind, Reading, SeqNo, SimTime, StorageIndexId, Value, ValueRange,
    };

    fn msg(value: Value, owner: NodeId, sid: u32) -> DataMessage {
        DataMessage {
            readings: vec![Reading::new(
                NodeId(7),
                Attribute::Light,
                value,
                SimTime::from_secs(1),
            )],
            owner,
            sid: StorageIndexId(sid),
        }
    }

    /// Routing state for node 5 with: parent 1, neighbor 2, descendant 9 via
    /// child 3.
    fn routing_for_node5() -> RoutingState {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        let hear = |rs: &mut RoutingState, from: NodeId| {
            for i in 0..10u32 {
                rs.observe_packet(
                    &PacketMeta {
                        link_src: from,
                        link_dst: LinkDst::Broadcast,
                        origin: from,
                        origin_parent: None,
                        seqno: SeqNo(i),
                        kind: MessageKind::Data,
                        hops: 0,
                    },
                    SimTime::from_secs(i as u64),
                );
            }
        };
        hear(&mut rs, NodeId(1));
        hear(&mut rs, NodeId(2));
        hear(&mut rs, NodeId(3));
        rs.on_beacon(
            NodeId(1),
            &scoop_routing::Beacon {
                hops: 0,
                path_etx: 0.0,
                parent: None,
            },
            SimTime::from_secs(20),
        );
        rs.note_routed_up(NodeId(9), NodeId(3), SimTime::from_secs(21));
        rs
    }

    fn index_v2(domain: ValueRange, owner_of_everything: NodeId) -> StorageIndex {
        let owners = vec![owner_of_everything; domain.width() as usize];
        StorageIndex::from_owners(StorageIndexId(2), domain, &owners, SimTime::ZERO).unwrap()
    }

    #[test]
    fn rule_2_owner_stores_locally() {
        let rs = routing_for_node5();
        let view = LocalNodeView {
            id: NodeId(5),
            index: None,
            routing: &rs,
            neighbor_shortcut: true,
        };
        let action = route_data(&view, msg(10, NodeId(5), 1));
        assert!(matches!(action, DataRoutingAction::StoreLocal(_)));
    }

    #[test]
    fn rule_1_newer_index_rewrites_owner() {
        let rs = routing_for_node5();
        let domain = ValueRange::new(0, 99);
        let idx = index_v2(domain, NodeId(5));
        let view = LocalNodeView {
            id: NodeId(5),
            index: Some(&idx),
            routing: &rs,
            neighbor_shortcut: true,
        };
        // The producer addressed the packet to node 2 under the older index 1,
        // but our index 2 says we own everything, so we keep it.
        let action = route_data(&view, msg(10, NodeId(2), 1));
        match action {
            DataRoutingAction::StoreLocal(m) => {
                assert_eq!(m.owner, NodeId(5));
                assert_eq!(m.sid, StorageIndexId(2));
            }
            other => panic!("expected StoreLocal, got {other:?}"),
        }
    }

    #[test]
    fn rule_1_does_not_rewrite_for_older_or_equal_index() {
        let rs = routing_for_node5();
        let domain = ValueRange::new(0, 99);
        let idx = index_v2(domain, NodeId(5));
        let view = LocalNodeView {
            id: NodeId(5),
            index: Some(&idx),
            routing: &rs,
            neighbor_shortcut: true,
        };
        // The packet already carries sid 3 (newer than our index 2): keep its
        // owner and forward normally.
        let action = route_data(&view, msg(10, NodeId(2), 3));
        match action {
            DataRoutingAction::Forward { next_hop, message } => {
                assert_eq!(next_hop, NodeId(2), "rule 3 shortcut to the neighbor owner");
                assert_eq!(message.owner, NodeId(2));
                assert_eq!(message.sid, StorageIndexId(3));
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn rule_3_neighbor_shortcut_and_its_ablation() {
        let rs = routing_for_node5();
        let view = LocalNodeView {
            id: NodeId(5),
            index: None,
            routing: &rs,
            neighbor_shortcut: true,
        };
        let action = route_data(&view, msg(10, NodeId(2), 1));
        assert_eq!(
            action,
            DataRoutingAction::Forward {
                next_hop: NodeId(2),
                message: msg(10, NodeId(2), 1)
            }
        );
        // With the shortcut disabled the same packet goes up to the parent.
        let view = LocalNodeView {
            id: NodeId(5),
            index: None,
            routing: &rs,
            neighbor_shortcut: false,
        };
        let action = route_data(&view, msg(10, NodeId(2), 1));
        assert_eq!(
            action,
            DataRoutingAction::Forward {
                next_hop: NodeId(1),
                message: msg(10, NodeId(2), 1)
            }
        );
    }

    #[test]
    fn rule_4_basestation_stores_unroutable_data() {
        let rs = RoutingState::new(NodeId::BASESTATION, RoutingConfig::default());
        let view = LocalNodeView {
            id: NodeId::BASESTATION,
            index: None,
            routing: &rs,
            neighbor_shortcut: true,
        };
        let action = route_data(&view, msg(10, NodeId(31), 1));
        assert!(matches!(action, DataRoutingAction::StoreLocal(_)));
    }

    #[test]
    fn rule_5_descendant_goes_down_the_right_branch() {
        let rs = routing_for_node5();
        let view = LocalNodeView {
            id: NodeId(5),
            index: None,
            routing: &rs,
            neighbor_shortcut: true,
        };
        let action = route_data(&view, msg(10, NodeId(9), 1));
        assert_eq!(
            action,
            DataRoutingAction::Forward {
                next_hop: NodeId(3),
                message: msg(10, NodeId(9), 1)
            }
        );
    }

    #[test]
    fn rule_6_default_is_the_parent() {
        let rs = routing_for_node5();
        let view = LocalNodeView {
            id: NodeId(5),
            index: None,
            routing: &rs,
            neighbor_shortcut: true,
        };
        // Owner 40 is not us, not a neighbor, not a descendant.
        let action = route_data(&view, msg(10, NodeId(40), 1));
        assert_eq!(
            action,
            DataRoutingAction::Forward {
                next_hop: NodeId(1),
                message: msg(10, NodeId(40), 1)
            }
        );
    }

    #[test]
    fn detached_node_stores_rather_than_losing_data() {
        let rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        let view = LocalNodeView {
            id: NodeId(5),
            index: None,
            routing: &rs,
            neighbor_shortcut: true,
        };
        let action = route_data(&view, msg(10, NodeId(40), 1));
        assert!(matches!(action, DataRoutingAction::StrandedStoreLocal(_)));
    }
}
