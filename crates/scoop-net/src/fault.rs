//! Scheduled faults: the engine-level realization of a
//! [`FaultSpec`](scoop_types::FaultSpec).
//!
//! A [`FaultSchedule`] lists three concrete fault kinds:
//!
//! - **Outages** — `(node, from, until)` radio windows. While a node's window
//!   is open its radio is dead — it transmits nothing (and nothing it sends
//!   is counted) and every packet addressed to or overheard by it is dropped
//!   — but its CPU stays alive: timers keep firing, so a node whose window
//!   closes rejoins the network with its protocol state intact (churn).
//! - **Partition cuts** — `(from, until, side)` windows. While the cut is
//!   open no packet crosses from a node on one side to a node on the other,
//!   in either direction; same-side links are untouched. Cuts compose with
//!   link loss *after* the delivery roll, so scheduling a cut never perturbs
//!   the engine's random stream.
//! - **Halts** — `(node, from, until)` CPU windows. A halted node's timers
//!   and send-completions are deferred to the window's end instead of firing,
//!   modelling a crash-restart with state intact (used for basestation
//!   failover). Halts are usually paired with an outage over the same window
//!   so the dead node's radio is off too.
//!
//! The empty schedule is the default and leaves the engine's behavior,
//! including its random stream, byte-identical to a fault-free build.

use scoop_types::{NodeId, SimTime};

/// One scheduled partition: while open, no packet crosses between a node
/// with `side[i] == true` and one with `side[i] == false`.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionCut {
    /// When the cut opens.
    pub from: SimTime,
    /// When the cut heals (exclusive).
    pub until: SimTime,
    /// Side membership, indexed by node id. Nodes beyond the vector are on
    /// the `false` (majority) side.
    pub side: Vec<bool>,
}

/// One node's outage window: down at `from`, back up at `until` (exclusive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// When the radio goes down.
    pub from: SimTime,
    /// When the radio comes back (exclusive; `SimTime::MAX`-like values model
    /// permanent death).
    pub until: SimTime,
}

/// Concrete per-node outage windows consulted by the engine on every
/// transmission and delivery.
///
/// Windows are indexed per node at insertion time so the engine's per-event
/// [`FaultSchedule::is_down`] probe is one bounds-checked slot lookup plus a
/// scan of *that node's* windows (usually zero or one), instead of a linear
/// scan over every outage in the schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    outages: Vec<Outage>,
    /// `per_node[i]` holds node `i`'s `(from, until)` windows. Nodes beyond
    /// the highest scheduled one have no slot at all, so the empty schedule
    /// costs a single failed `get`.
    per_node: Vec<Vec<(SimTime, SimTime)>>,
    /// Scheduled partition cuts, consulted per delivery only when non-empty.
    cuts: Vec<PartitionCut>,
    /// `halted[i]` holds node `i`'s CPU-halt `(from, until)` windows.
    halted: Vec<Vec<(SimTime, SimTime)>>,
}

impl FaultSchedule {
    /// A schedule with no faults (the default engine behavior).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Whether any fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.cuts.is_empty() && self.halted.iter().all(Vec::is_empty)
    }

    /// Number of scheduled outages.
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// Schedules one outage window.
    pub fn add(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        if from < until {
            self.outages.push(Outage { node, from, until });
            if self.per_node.len() <= node.index() {
                self.per_node.resize(node.index() + 1, Vec::new());
            }
            self.per_node[node.index()].push((from, until));
        }
    }

    /// Schedules one partition cut; `side[i]` puts node `i` on the isolated
    /// side. Inverted windows and one-sided cuts (nobody isolated, or
    /// everybody) are ignored as no-ops.
    pub fn add_partition(&mut self, from: SimTime, until: SimTime, side: Vec<bool>) {
        let isolated = side.iter().filter(|&&s| s).count();
        if from < until && isolated > 0 && isolated < side.len() {
            self.cuts.push(PartitionCut { from, until, side });
        }
    }

    /// Schedules one CPU-halt window for `node`.
    pub fn add_halt(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        if from < until {
            if self.halted.len() <= node.index() {
                self.halted.resize(node.index() + 1, Vec::new());
            }
            self.halted[node.index()].push((from, until));
        }
    }

    /// Returns `true` if `node`'s radio is down at `now`.
    #[inline]
    pub fn is_down(&self, node: NodeId, now: SimTime) -> bool {
        match self.per_node.get(node.index()) {
            Some(windows) => windows
                .iter()
                .any(|&(from, until)| from <= now && now < until),
            None => false,
        }
    }

    /// Returns `true` if a packet from `a` to `b` is severed by an open
    /// partition cut at `now`. Overlapping cuts union: one open cut
    /// separating the pair is enough.
    #[inline]
    pub fn is_cut(&self, a: NodeId, b: NodeId, now: SimTime) -> bool {
        if self.cuts.is_empty() {
            return false;
        }
        self.cuts.iter().any(|cut| {
            cut.from <= now
                && now < cut.until
                && cut.side.get(a.index()).copied().unwrap_or(false)
                    != cut.side.get(b.index()).copied().unwrap_or(false)
        })
    }

    /// If `node`'s CPU is halted at `now`, returns when the longest open
    /// halt window ends (when a deferred event should fire instead).
    #[inline]
    pub fn halted_until(&self, node: NodeId, now: SimTime) -> Option<SimTime> {
        let windows = self.halted.get(node.index())?;
        windows
            .iter()
            .filter(|&&(from, until)| from <= now && now < until)
            .map(|&(_, until)| until)
            .max()
    }

    /// Iterates over the scheduled outages.
    pub fn iter(&self) -> impl Iterator<Item = &Outage> {
        self.outages.iter()
    }

    /// Iterates over the scheduled partition cuts.
    pub fn cuts(&self) -> impl Iterator<Item = &PartitionCut> {
        self.cuts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_downs_nothing() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert!(!s.is_down(NodeId(3), SimTime::from_secs(100)));
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut s = FaultSchedule::empty();
        s.add(NodeId(2), SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!s.is_down(NodeId(2), SimTime::from_secs(9)));
        assert!(s.is_down(NodeId(2), SimTime::from_secs(10)));
        assert!(s.is_down(NodeId(2), SimTime::from_secs(19)));
        assert!(!s.is_down(NodeId(2), SimTime::from_secs(20)));
        assert!(!s.is_down(NodeId(3), SimTime::from_secs(15)));
    }

    #[test]
    fn inverted_windows_are_ignored() {
        let mut s = FaultSchedule::empty();
        s.add(NodeId(1), SimTime::from_secs(20), SimTime::from_secs(10));
        assert!(s.is_empty());
    }

    #[test]
    fn overlapping_windows_union() {
        let mut s = FaultSchedule::empty();
        s.add(NodeId(1), SimTime::from_secs(0), SimTime::from_secs(15));
        s.add(NodeId(1), SimTime::from_secs(10), SimTime::from_secs(30));
        assert_eq!(s.len(), 2);
        for t in [0, 5, 14, 15, 29] {
            assert!(s.is_down(NodeId(1), SimTime::from_secs(t)), "t={t}");
        }
        assert!(!s.is_down(NodeId(1), SimTime::from_secs(30)));
    }

    #[test]
    fn partition_cuts_sever_only_cross_side_pairs_inside_the_window() {
        let mut s = FaultSchedule::empty();
        // Nodes 1 and 3 isolated; 0, 2 and everything beyond on the other
        // side.
        s.add_partition(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            vec![false, true, false, true],
        );
        assert!(!s.is_empty());
        let t = SimTime::from_secs(15);
        assert!(s.is_cut(NodeId(0), NodeId(1), t));
        assert!(s.is_cut(NodeId(1), NodeId(0), t), "cuts are symmetric");
        assert!(s.is_cut(NodeId(3), NodeId(99), t), "beyond-vec is majority");
        assert!(!s.is_cut(NodeId(1), NodeId(3), t), "same side unaffected");
        assert!(!s.is_cut(NodeId(0), NodeId(2), t));
        // Half-open window bounds, like outages.
        assert!(!s.is_cut(NodeId(0), NodeId(1), SimTime::from_secs(9)));
        assert!(s.is_cut(NodeId(0), NodeId(1), SimTime::from_secs(10)));
        assert!(!s.is_cut(NodeId(0), NodeId(1), SimTime::from_secs(20)));
    }

    #[test]
    fn degenerate_partitions_are_noops() {
        let mut s = FaultSchedule::empty();
        // Inverted window, nobody isolated, everybody isolated.
        s.add_partition(
            SimTime::from_secs(20),
            SimTime::from_secs(10),
            vec![true, false],
        );
        s.add_partition(
            SimTime::from_secs(0),
            SimTime::from_secs(10),
            vec![false, false],
        );
        s.add_partition(
            SimTime::from_secs(0),
            SimTime::from_secs(10),
            vec![true, true],
        );
        assert!(s.is_empty());
        assert!(!s.is_cut(NodeId(0), NodeId(1), SimTime::from_secs(5)));
    }

    #[test]
    fn overlapping_partitions_union() {
        let mut s = FaultSchedule::empty();
        s.add_partition(
            SimTime::from_secs(0),
            SimTime::from_secs(15),
            vec![false, true],
        );
        s.add_partition(
            SimTime::from_secs(10),
            SimTime::from_secs(30),
            vec![false, true],
        );
        for t in [0, 14, 15, 29] {
            assert!(
                s.is_cut(NodeId(0), NodeId(1), SimTime::from_secs(t)),
                "t={t}"
            );
        }
        assert!(!s.is_cut(NodeId(0), NodeId(1), SimTime::from_secs(30)));
    }

    #[test]
    fn halts_report_the_latest_open_window_end() {
        let mut s = FaultSchedule::empty();
        s.add_halt(NodeId(2), SimTime::from_secs(10), SimTime::from_secs(20));
        s.add_halt(NodeId(2), SimTime::from_secs(15), SimTime::from_secs(40));
        assert_eq!(s.halted_until(NodeId(2), SimTime::from_secs(5)), None);
        assert_eq!(
            s.halted_until(NodeId(2), SimTime::from_secs(12)),
            Some(SimTime::from_secs(20))
        );
        assert_eq!(
            s.halted_until(NodeId(2), SimTime::from_secs(16)),
            Some(SimTime::from_secs(40)),
            "overlapping halts defer to the farthest end"
        );
        assert_eq!(s.halted_until(NodeId(2), SimTime::from_secs(40)), None);
        assert_eq!(s.halted_until(NodeId(7), SimTime::from_secs(12)), None);
        assert!(!s.is_empty());
    }
}
