//! Scheduled radio outages: the engine-level realization of a
//! [`FaultSpec`](scoop_types::FaultSpec).
//!
//! A [`FaultSchedule`] lists concrete `(node, from, until)` outage windows.
//! While a node's window is open its radio is dead — it transmits nothing
//! (and nothing it sends is counted) and every packet addressed to or
//! overheard by it is dropped — but its CPU stays alive: timers keep firing,
//! so a node whose window closes rejoins the network with its protocol state
//! intact (churn). The empty schedule is the default and leaves the engine's
//! behavior, including its random stream, byte-identical to a fault-free
//! build.

use scoop_types::{NodeId, SimTime};

/// One node's outage window: down at `from`, back up at `until` (exclusive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// When the radio goes down.
    pub from: SimTime,
    /// When the radio comes back (exclusive; `SimTime::MAX`-like values model
    /// permanent death).
    pub until: SimTime,
}

/// Concrete per-node outage windows consulted by the engine on every
/// transmission and delivery.
///
/// Windows are indexed per node at insertion time so the engine's per-event
/// [`FaultSchedule::is_down`] probe is one bounds-checked slot lookup plus a
/// scan of *that node's* windows (usually zero or one), instead of a linear
/// scan over every outage in the schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    outages: Vec<Outage>,
    /// `per_node[i]` holds node `i`'s `(from, until)` windows. Nodes beyond
    /// the highest scheduled one have no slot at all, so the empty schedule
    /// costs a single failed `get`.
    per_node: Vec<Vec<(SimTime, SimTime)>>,
}

impl FaultSchedule {
    /// A schedule with no outages (the default engine behavior).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Whether any outage is scheduled.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Number of scheduled outages.
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// Schedules one outage window.
    pub fn add(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        if from < until {
            self.outages.push(Outage { node, from, until });
            if self.per_node.len() <= node.index() {
                self.per_node.resize(node.index() + 1, Vec::new());
            }
            self.per_node[node.index()].push((from, until));
        }
    }

    /// Returns `true` if `node`'s radio is down at `now`.
    #[inline]
    pub fn is_down(&self, node: NodeId, now: SimTime) -> bool {
        match self.per_node.get(node.index()) {
            Some(windows) => windows
                .iter()
                .any(|&(from, until)| from <= now && now < until),
            None => false,
        }
    }

    /// Iterates over the scheduled outages.
    pub fn iter(&self) -> impl Iterator<Item = &Outage> {
        self.outages.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_downs_nothing() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert!(!s.is_down(NodeId(3), SimTime::from_secs(100)));
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut s = FaultSchedule::empty();
        s.add(NodeId(2), SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!s.is_down(NodeId(2), SimTime::from_secs(9)));
        assert!(s.is_down(NodeId(2), SimTime::from_secs(10)));
        assert!(s.is_down(NodeId(2), SimTime::from_secs(19)));
        assert!(!s.is_down(NodeId(2), SimTime::from_secs(20)));
        assert!(!s.is_down(NodeId(3), SimTime::from_secs(15)));
    }

    #[test]
    fn inverted_windows_are_ignored() {
        let mut s = FaultSchedule::empty();
        s.add(NodeId(1), SimTime::from_secs(20), SimTime::from_secs(10));
        assert!(s.is_empty());
    }

    #[test]
    fn overlapping_windows_union() {
        let mut s = FaultSchedule::empty();
        s.add(NodeId(1), SimTime::from_secs(0), SimTime::from_secs(15));
        s.add(NodeId(1), SimTime::from_secs(10), SimTime::from_secs(30));
        assert_eq!(s.len(), 2);
        for t in [0, 5, 14, 15, 29] {
            assert!(s.is_down(NodeId(1), SimTime::from_secs(t)), "t={t}");
        }
        assert!(!s.is_down(NodeId(1), SimTime::from_secs(30)));
    }
}
