//! Node placement and radio-range connectivity.
//!
//! A [`Topology`] assigns every node (including the basestation, node 0) a
//! position on a 2-D floor plan and derives which pairs of nodes are within
//! radio range. Link loss probabilities are layered on top by
//! [`LinkModel`](crate::LinkModel).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{NodeId, ScoopError, TopologySpec, MAX_NODES};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

pub use scoop_types::TopologyKind;

/// A node's position, in meters, on the floor plan.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct NodePosition {
    /// X coordinate (meters).
    pub x: f64,
    /// Y coordinate (meters).
    pub y: f64,
}

impl NodePosition {
    /// Euclidean distance to another position.
    pub fn distance(&self, other: &NodePosition) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Node positions plus radio-range connectivity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    positions: Vec<NodePosition>,
    radio_range: f64,
    /// `neighbors[i]` lists every node within radio range of node `i`.
    neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from explicit positions and a radio range.
    ///
    /// Node 0 is the basestation. Returns an error if more than
    /// [`MAX_NODES`] positions are given or if fewer than two nodes exist.
    pub fn from_positions(
        kind: TopologyKind,
        positions: Vec<NodePosition>,
        radio_range: f64,
    ) -> Result<Self, ScoopError> {
        if positions.len() > MAX_NODES {
            return Err(ScoopError::TooManyNodes {
                requested: positions.len(),
                limit: MAX_NODES,
            });
        }
        if positions.len() < 2 {
            return Err(ScoopError::InvalidConfig(
                "a topology needs at least a basestation and one sensor".into(),
            ));
        }
        let neighbors = Self::build_neighbors(&positions, radio_range);
        Ok(Topology {
            kind,
            positions,
            radio_range,
            neighbors,
        })
    }

    /// Derives per-node neighbor lists (every node within `radio_range`,
    /// ascending ids) by spatial binning: nodes are bucketed into square
    /// cells of side `radio_range`, so each node only tests candidates from
    /// its 3×3 cell neighborhood — O(n · degree) instead of the O(n²)
    /// all-pairs scan, which at 32k nodes was a billion distance checks.
    /// Sorting each candidate list yields exactly the ascending order the
    /// all-pairs loop produced (the link model's seeded noise stream and the
    /// engine's per-listener loss draws both depend on that order).
    fn build_neighbors(positions: &[NodePosition], radio_range: f64) -> Vec<Vec<NodeId>> {
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        if !(radio_range > 0.0 && radio_range.is_finite()) {
            // Degenerate ranges (zero, negative, infinite) have no sensible
            // cell size; fall back to the exhaustive scan.
            for i in 0..n {
                for j in 0..n {
                    if i != j && positions[i].distance(&positions[j]) <= radio_range {
                        neighbors[i].push(NodeId(j as u16));
                    }
                }
            }
            return neighbors;
        }
        let min_x = positions.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let min_y = positions.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let cell = |p: &NodePosition| {
            (
                ((p.x - min_x) / radio_range) as i64,
                ((p.y - min_y) / radio_range) as i64,
            )
        };
        let mut bins: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            bins.entry(cell(p)).or_default().push(i);
        }
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell(p);
            let out = &mut neighbors[i];
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(candidates) = bins.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in candidates {
                        if i != j && p.distance(&positions[j]) <= radio_range {
                            out.push(NodeId(j as u16));
                        }
                    }
                }
            }
            out.sort_unstable();
        }
        neighbors
    }

    /// Builds the layout described by a [`TopologySpec`]: the generator named
    /// by `spec.kind` with the spec's geometry parameters applied. This is
    /// the single construction path the `TopologyGen` factories use; the
    /// named constructors below are thin wrappers over it with the default
    /// spec of each family.
    pub fn from_spec(spec: &TopologySpec, num_nodes: usize, seed: u64) -> Result<Self, ScoopError> {
        spec.validate()?;
        match spec.kind {
            TopologyKind::OfficeFloor => Self::office_floor_spec(spec, num_nodes, seed),
            TopologyKind::Grid => Self::grid_spec(spec, num_nodes),
            TopologyKind::UniformRandom => Self::uniform_random_spec(spec, num_nodes, seed),
            TopologyKind::Linear => Self::linear_spec(spec, num_nodes),
        }
    }

    /// The paper's testbed-like layout: `num_nodes` sensors plus the
    /// basestation, on a jittered grid spanning a long rectangular floor
    /// (roughly 60 m × 25 m for 62 nodes), basestation at the left edge.
    ///
    /// The radio range is chosen so that an average node hears roughly 20 %
    /// of the network, as reported in Section 6.
    pub fn office_floor(num_nodes: usize, seed: u64) -> Result<Self, ScoopError> {
        Self::office_floor_spec(&TopologySpec::office_floor(), num_nodes, seed)
    }

    fn office_floor_spec(
        spec: &TopologySpec,
        num_nodes: usize,
        seed: u64,
    ) -> Result<Self, ScoopError> {
        let total = num_nodes + 1;
        let mut rng = StdRng::seed_from_u64(seed ^ OFFICE_SEED_SALT);
        // Aim for an aspect ratio of ~2.5:1 at the configured density.
        let area = total as f64 * spec.area_per_node;
        let width = (area * 2.5).sqrt();
        let height = area / width;
        let cols = (total as f64 * 2.5_f64).sqrt().ceil() as usize;
        let rows = total.div_ceil(cols);
        let dx = width / cols as f64;
        let dy = height / rows.max(1) as f64;

        let mut positions = Vec::with_capacity(total);
        // Basestation at the left edge, vertically centered (like a PC at the
        // end of the office floor).
        positions.push(NodePosition {
            x: 0.0,
            y: height / 2.0,
        });
        'outer: for r in 0..rows {
            for c in 0..cols {
                if positions.len() == total {
                    break 'outer;
                }
                let (jx, jy) = if spec.jitter > 0.0 {
                    (
                        rng.gen_range(-spec.jitter..spec.jitter) * dx,
                        rng.gen_range(-spec.jitter..spec.jitter) * dy,
                    )
                } else {
                    (0.0, 0.0)
                };
                positions.push(NodePosition {
                    x: (c as f64 + 0.75) * dx + jx,
                    y: (r as f64 + 0.5) * dy + jy,
                });
            }
        }
        // Radio range tuned for ~20 % average connectivity on the default
        // 62-node floor; scales with node spacing for other sizes.
        let radio_range = 2.6 * dx.max(dy) * spec.range_factor;
        Self::from_positions(TopologyKind::OfficeFloor, positions, radio_range)
    }

    /// A regular `side × side` grid with `spacing` meters between nodes and a
    /// radio range of `1.6 × spacing` (each node hears its horizontal,
    /// vertical, and diagonal neighbors).
    pub fn grid(side: usize, spacing: f64) -> Result<Self, ScoopError> {
        let mut positions = Vec::with_capacity(side * side);
        for r in 0..side {
            for c in 0..side {
                positions.push(NodePosition {
                    x: c as f64 * spacing,
                    y: r as f64 * spacing,
                });
            }
        }
        Self::from_positions(TopologyKind::Grid, positions, 1.6 * spacing)
    }

    fn grid_spec(spec: &TopologySpec, num_nodes: usize) -> Result<Self, ScoopError> {
        // `num_nodes` sensors plus the basestation (node 0, in the corner),
        // filling a near-square grid row-major; the last row may be partial.
        let total = num_nodes + 1;
        let side = (total as f64).sqrt().ceil() as usize;
        let mut positions = Vec::with_capacity(total);
        'outer: for r in 0..side {
            for c in 0..side {
                if positions.len() == total {
                    break 'outer;
                }
                positions.push(NodePosition {
                    x: c as f64 * spec.spacing,
                    y: r as f64 * spec.spacing,
                });
            }
        }
        Self::from_positions(
            TopologyKind::Grid,
            positions,
            1.6 * spec.spacing * spec.range_factor,
        )
    }

    /// `num_nodes + 1` nodes placed uniformly at random in a square arena
    /// sized for ~25 m² per node, basestation at the center.
    pub fn uniform_random(num_nodes: usize, seed: u64) -> Result<Self, ScoopError> {
        Self::uniform_random_spec(&TopologySpec::uniform_random(), num_nodes, seed)
    }

    fn uniform_random_spec(
        spec: &TopologySpec,
        num_nodes: usize,
        seed: u64,
    ) -> Result<Self, ScoopError> {
        let total = num_nodes + 1;
        let side = (total as f64 * spec.area_per_node).sqrt();
        let mut rng = StdRng::seed_from_u64(seed ^ UNIFORM_SEED_SALT);
        let mut positions = Vec::with_capacity(total);
        positions.push(NodePosition {
            x: side / 2.0,
            y: side / 2.0,
        });
        for _ in 0..num_nodes {
            positions.push(NodePosition {
                x: rng.gen_range(0.0..side),
                y: rng.gen_range(0.0..side),
            });
        }
        Self::from_positions(
            TopologyKind::UniformRandom,
            positions,
            side / 4.0 * spec.range_factor,
        )
    }

    /// A straight chain of `num_nodes + 1` nodes, `spacing` meters apart, with
    /// a radio range of `1.5 × spacing` (each node hears only its immediate
    /// neighbors and, weakly, the node two hops away).
    pub fn linear(num_nodes: usize, spacing: f64) -> Result<Self, ScoopError> {
        let spec = TopologySpec {
            spacing,
            ..TopologySpec::linear()
        };
        Self::linear_spec(&spec, num_nodes)
    }

    fn linear_spec(spec: &TopologySpec, num_nodes: usize) -> Result<Self, ScoopError> {
        let positions = (0..=num_nodes)
            .map(|i| NodePosition {
                x: i as f64 * spec.spacing,
                y: 0.0,
            })
            .collect();
        Self::from_positions(
            TopologyKind::Linear,
            positions,
            1.5 * spec.spacing * spec.range_factor,
        )
    }

    /// Which generator produced this topology.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Total number of nodes, including the basestation.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false: a valid topology has at least two nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of sensor nodes (excluding the basestation).
    pub fn num_sensors(&self) -> usize {
        self.len() - 1
    }

    /// The radio range used to derive connectivity.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Iterates over every node id, basestation first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(|i| NodeId(i as u16))
    }

    /// Iterates over sensor node ids (everything except the basestation).
    pub fn sensors(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.len()).map(|i| NodeId(i as u16))
    }

    /// The position of a node.
    pub fn position(&self, node: NodeId) -> Option<NodePosition> {
        self.positions.get(node.index()).copied()
    }

    /// The distance in meters between two nodes, if both exist.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        Some(self.position(a)?.distance(&self.position(b)?))
    }

    /// Nodes within radio range of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.neighbors
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns `true` if `b` is within radio range of `a`.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Average fraction of the network each node can hear (the paper reports
    /// about 20 % for its simulated 62-node topology).
    pub fn connectivity_fraction(&self) -> f64 {
        if self.len() <= 1 {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / (self.len() as f64 * (self.len() - 1) as f64)
    }

    /// Hop distance between two nodes using radio-range connectivity (BFS),
    /// ignoring loss. Returns `None` if they are not connected at all.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        if self.position(from).is_none() || self.position(to).is_none() {
            return None;
        }
        let mut dist = vec![u32::MAX; self.len()];
        dist[from.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(from);
        while let Some(n) = q.pop_front() {
            let d = dist[n.index()];
            for &m in self.neighbors(n) {
                if dist[m.index()] == u32::MAX {
                    dist[m.index()] = d + 1;
                    if m == to {
                        return Some(d + 1);
                    }
                    q.push_back(m);
                }
            }
        }
        None
    }

    /// Returns `true` if every node can reach the basestation over radio-range
    /// links (ignoring loss).
    pub fn is_connected(&self) -> bool {
        self.nodes()
            .all(|n| self.hop_distance(NodeId::BASESTATION, n).is_some())
    }

    /// The largest hop distance from the basestation to any node.
    pub fn network_depth(&self) -> u32 {
        self.nodes()
            .filter_map(|n| self.hop_distance(NodeId::BASESTATION, n))
            .max()
            .unwrap_or(0)
    }
}

// Seed salts keep the per-generator random streams independent of each other
// even when the caller passes the same experiment seed to both.
const OFFICE_SEED_SALT: u64 = 0x5eed_0001;
const UNIFORM_SEED_SALT: u64 = 0x5eed_0002;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_floor_has_expected_size_and_connectivity() {
        let topo = Topology::office_floor(62, 7).unwrap();
        assert_eq!(topo.len(), 63);
        assert_eq!(topo.num_sensors(), 62);
        assert!(topo.is_connected(), "testbed topology must be connected");
        let frac = topo.connectivity_fraction();
        assert!(
            (0.08..=0.40).contains(&frac),
            "connectivity fraction {frac} should be near the paper's ~20 %"
        );
        let depth = topo.network_depth();
        assert!(
            (3..=9).contains(&depth),
            "office floor should be a multi-hop network, got depth {depth}"
        );
    }

    #[test]
    fn office_floor_is_deterministic_per_seed() {
        let a = Topology::office_floor(30, 42).unwrap();
        let b = Topology::office_floor(30, 42).unwrap();
        let c = Topology::office_floor(30, 43).unwrap();
        assert_eq!(
            a.position(NodeId(5)).unwrap().x,
            b.position(NodeId(5)).unwrap().x
        );
        assert_ne!(
            a.position(NodeId(5)).unwrap().x,
            c.position(NodeId(5)).unwrap().x
        );
    }

    #[test]
    fn grid_connectivity() {
        let topo = Topology::grid(4, 10.0).unwrap();
        assert_eq!(topo.len(), 16);
        assert!(topo.is_connected());
        // A corner node hears its horizontal, vertical, and diagonal neighbor.
        assert_eq!(topo.neighbors(NodeId(0)).len(), 3);
        // An interior node hears all 8 surrounding nodes.
        assert_eq!(topo.neighbors(NodeId(5)).len(), 8);
    }

    #[test]
    fn linear_topology_depth_equals_length() {
        let topo = Topology::linear(10, 10.0).unwrap();
        assert_eq!(topo.len(), 11);
        assert!(topo.is_connected());
        assert_eq!(topo.hop_distance(NodeId(0), NodeId(10)), Some(10));
        assert_eq!(topo.network_depth(), 10);
    }

    #[test]
    fn uniform_random_within_limits() {
        let topo = Topology::uniform_random(40, 3).unwrap();
        assert_eq!(topo.len(), 41);
        for n in topo.nodes() {
            assert!(topo.position(n).is_some());
        }
    }

    #[test]
    fn rejects_too_many_nodes() {
        assert!(Topology::office_floor(MAX_NODES, 1).is_err());
    }

    #[test]
    fn from_spec_matches_the_named_constructors() {
        let office = Topology::from_spec(&TopologySpec::office_floor(), 30, 42).unwrap();
        let direct = Topology::office_floor(30, 42).unwrap();
        assert_eq!(
            office.position(NodeId(5)).unwrap().x,
            direct.position(NodeId(5)).unwrap().x
        );
        assert_eq!(office.radio_range(), direct.radio_range());

        let linear = Topology::from_spec(&TopologySpec::linear(), 10, 0).unwrap();
        assert_eq!(linear.network_depth(), 10);
    }

    #[test]
    fn from_spec_validates_geometry() {
        let mut spec = TopologySpec::grid();
        spec.spacing = -1.0;
        assert!(Topology::from_spec(&spec, 10, 1).is_err());
    }

    #[test]
    fn spec_grid_places_basestation_in_the_corner_and_truncates() {
        // 6 sensors + base = 7 nodes on a 3×3 grid: last two cells empty.
        let topo = Topology::from_spec(&TopologySpec::grid(), 6, 1).unwrap();
        assert_eq!(topo.len(), 7);
        let base = topo.position(NodeId::BASESTATION).unwrap();
        assert_eq!((base.x, base.y), (0.0, 0.0));
        assert!(topo.is_connected());
    }

    #[test]
    fn range_factor_thins_or_thickens_connectivity() {
        let base = TopologySpec::office_floor();
        let wide = TopologySpec {
            range_factor: 2.0,
            ..base
        };
        let a = Topology::from_spec(&base, 40, 9).unwrap();
        let b = Topology::from_spec(&wide, 40, 9).unwrap();
        assert!(b.connectivity_fraction() > a.connectivity_fraction());
        // Same seed, same placements — only the range differs.
        assert_eq!(
            a.position(NodeId(7)).unwrap().x,
            b.position(NodeId(7)).unwrap().x
        );
    }

    #[test]
    fn rejects_trivial_topology() {
        assert!(Topology::from_positions(
            TopologyKind::Grid,
            vec![NodePosition { x: 0.0, y: 0.0 }],
            10.0
        )
        .is_err());
    }

    #[test]
    fn hop_distance_is_symmetric_on_symmetric_connectivity() {
        let topo = Topology::grid(5, 10.0).unwrap();
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(topo.hop_distance(a, b), topo.hop_distance(b, a));
            }
        }
    }

    #[test]
    fn distance_and_in_range_agree() {
        let topo = Topology::grid(3, 10.0).unwrap();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                let d = topo.distance(a, b).unwrap();
                assert_eq!(topo.in_range(a, b), d <= topo.radio_range());
            }
        }
    }

    #[test]
    fn binned_neighbors_match_the_all_pairs_oracle() {
        // The spatial-binning construction must reproduce the historical
        // O(n²) scan exactly — same sets, same ascending order — across
        // every generator family (jittered, regular, random, degenerate).
        let topos = [
            Topology::office_floor(62, 11).unwrap(),
            Topology::grid(7, 10.0).unwrap(),
            Topology::uniform_random(80, 3).unwrap(),
            Topology::linear(12, 10.0).unwrap(),
        ];
        for topo in &topos {
            for a in topo.nodes() {
                let oracle: Vec<NodeId> = topo
                    .nodes()
                    .filter(|&b| a != b && topo.distance(a, b).unwrap() <= topo.radio_range())
                    .collect();
                assert_eq!(
                    topo.neighbors(a),
                    oracle.as_slice(),
                    "{:?} {a}",
                    topo.kind()
                );
            }
        }
    }

    #[test]
    fn unknown_node_queries_return_none_or_empty() {
        let topo = Topology::grid(3, 10.0).unwrap();
        assert!(topo.position(NodeId(99)).is_none());
        assert!(topo.neighbors(NodeId(99)).is_empty());
        assert_eq!(topo.hop_distance(NodeId(0), NodeId(99)), None);
    }
}
