//! Energy accounting.
//!
//! Section 2.1 of the paper gives the calibration points this model uses:
//! writing a bit to flash costs about 28 nJ, while transmitting a bit over
//! the radio costs about 700 nJ — two orders of magnitude more. Reception is
//! comparable in cost to transmission on mote-class radios because the
//! receiver must be powered the whole time; the paper's root-skew discussion
//! counts the root's receptions for exactly this reason.

use crate::stats::{NetworkStats, NodeStats};
use scoop_types::NodeId;
use serde::{Deserialize, Serialize};

/// Energy cost parameters.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Nanojoules per bit transmitted over the radio (paper: ~700 nJ/bit).
    pub radio_tx_nj_per_bit: f64,
    /// Nanojoules per bit received over the radio.
    pub radio_rx_nj_per_bit: f64,
    /// Nanojoules per bit written to flash (paper: ~28 nJ/bit).
    pub flash_write_nj_per_bit: f64,
    /// Nanojoules per bit read from flash ("reads are substantially cheaper").
    pub flash_read_nj_per_bit: f64,
    /// Payload size assumed per message, in bits (a TinyOS packet carries
    /// roughly 29 bytes of payload plus header; we charge 36 bytes on air).
    pub bits_per_message: f64,
    /// Battery capacity in joules (a pair of AA cells is roughly 10 kJ usable;
    /// used only for the lifetime estimates in the root-skew experiment).
    pub battery_joules: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            radio_tx_nj_per_bit: 700.0,
            radio_rx_nj_per_bit: 700.0,
            flash_write_nj_per_bit: 28.0,
            flash_read_nj_per_bit: 7.0,
            bits_per_message: 36.0 * 8.0,
            battery_joules: 10_000.0,
        }
    }
}

/// Energy spent by one node, in joules, split by activity.
#[derive(Clone, Copy, Default, PartialEq, Debug, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Radio transmission energy.
    pub tx_joules: f64,
    /// Radio reception energy (addressed packets only).
    pub rx_joules: f64,
    /// Flash write energy.
    pub flash_joules: f64,
}

impl EnergyReport {
    /// Total energy across all activities.
    pub fn total(&self) -> f64 {
        self.tx_joules + self.rx_joules + self.flash_joules
    }
}

impl EnergyModel {
    /// Energy report for a single node given its counters and the number of
    /// readings it wrote to flash.
    pub fn node_energy(
        &self,
        stats: &NodeStats,
        flash_writes: u64,
        reading_bits: f64,
    ) -> EnergyReport {
        let nj_to_j = 1e-9;
        EnergyReport {
            tx_joules: stats.total_tx() as f64
                * self.bits_per_message
                * self.radio_tx_nj_per_bit
                * nj_to_j,
            rx_joules: stats.total_rx() as f64
                * self.bits_per_message
                * self.radio_rx_nj_per_bit
                * nj_to_j,
            flash_joules: flash_writes as f64
                * reading_bits
                * self.flash_write_nj_per_bit
                * nj_to_j,
        }
    }

    /// Expected node lifetime in days given an energy spend over a measured
    /// window of `window_secs` seconds of simulated operation.
    ///
    /// This only accounts for communication/storage energy (the paper's
    /// argument is that communication dominates); idle listening and CPU are
    /// excluded, so the *ratios* between policies are meaningful rather than
    /// the absolute values.
    pub fn lifetime_days(&self, report: &EnergyReport, window_secs: f64) -> f64 {
        if report.total() <= 0.0 {
            return f64::INFINITY;
        }
        let joules_per_sec = report.total() / window_secs;
        self.battery_joules / joules_per_sec / 86_400.0
    }

    /// Ratio of per-bit radio cost to per-bit flash write cost (the paper
    /// quotes roughly two orders of magnitude).
    pub fn radio_to_flash_ratio(&self) -> f64 {
        self.radio_tx_nj_per_bit / self.flash_write_nj_per_bit
    }

    /// Network-wide energy, one report per node.
    pub fn network_energy(
        &self,
        stats: &NetworkStats,
        flash_writes_per_node: &[u64],
        reading_bits: f64,
    ) -> Vec<(NodeId, EnergyReport)> {
        stats
            .iter()
            .map(|(node, s)| {
                let writes = flash_writes_per_node
                    .get(node.index())
                    .copied()
                    .unwrap_or(0);
                (node, self.node_energy(s, writes, reading_bits))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::MessageKind;

    #[test]
    fn radio_dominates_flash_by_two_orders_of_magnitude() {
        let m = EnergyModel::default();
        assert!(m.radio_to_flash_ratio() > 20.0);
        assert!(m.radio_to_flash_ratio() < 100.0 * 10.0);
    }

    #[test]
    fn node_energy_scales_with_traffic() {
        let m = EnergyModel::default();
        let mut a = NodeStats::default();
        a.tx.record_n(MessageKind::Data, 100);
        let mut b = NodeStats::default();
        b.tx.record_n(MessageKind::Data, 200);
        let ea = m.node_energy(&a, 0, 12.0);
        let eb = m.node_energy(&b, 0, 12.0);
        assert!(eb.tx_joules > ea.tx_joules * 1.99);
        assert_eq!(ea.flash_joules, 0.0);
    }

    #[test]
    fn storing_locally_is_cheaper_than_transmitting() {
        let m = EnergyModel::default();
        // One reading stored to flash...
        let stored = m.node_energy(&NodeStats::default(), 1, 12.0);
        // ...versus one message transmitted one hop.
        let mut s = NodeStats::default();
        s.tx.record(MessageKind::Data);
        let sent = m.node_energy(&s, 0, 12.0);
        assert!(sent.total() > stored.total() * 10.0);
    }

    #[test]
    fn lifetime_decreases_with_load() {
        let m = EnergyModel::default();
        let mut light = NodeStats::default();
        light.tx.record_n(MessageKind::Data, 100);
        let mut heavy = NodeStats::default();
        heavy.tx.record_n(MessageKind::Data, 10_000);
        let window = 1800.0;
        let l1 = m.lifetime_days(&m.node_energy(&light, 0, 12.0), window);
        let l2 = m.lifetime_days(&m.node_energy(&heavy, 0, 12.0), window);
        assert!(l1 > l2 * 50.0);
        // Zero activity means (formally) unbounded lifetime.
        assert!(m
            .lifetime_days(&m.node_energy(&NodeStats::default(), 0, 12.0), window)
            .is_infinite());
    }

    #[test]
    fn network_energy_covers_every_node() {
        let m = EnergyModel::default();
        let mut stats = NetworkStats::new(4);
        stats.record_tx(NodeId(2), MessageKind::Data);
        let reports = m.network_energy(&stats, &[0, 0, 5, 0], 12.0);
        assert_eq!(reports.len(), 4);
        assert!(reports[2].1.total() > 0.0);
        assert_eq!(reports[1].1.total(), 0.0);
    }
}
