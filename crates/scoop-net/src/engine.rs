//! The discrete-event simulation engine.
//!
//! An [`Engine`] owns a [`Topology`], a [`LinkModel`], and one application
//! state machine per node (anything implementing [`NodeLogic`]). Nodes
//! interact with the world only through the [`NodeCtx`] handed to their
//! callbacks: they can transmit packets (unicast with link-layer
//! acknowledgement and bounded retransmission, or local broadcast) and arm
//! one-shot timers. All transmissions are counted in [`NetworkStats`] per
//! node and per [`MessageKind`], because the paper's evaluation metric is the
//! number of messages sent.

use crate::event::{Event, EventQueue};
use crate::fault::FaultSchedule;
use crate::link::{LinkModel, Neighbor};
use crate::packet::{LinkDst, Packet, PacketMeta};
use crate::stats::NetworkStats;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{MessageKind, NodeId, ScoopError, SeqNo, SimDuration, SimTime};

/// Opaque token identifying a timer set by a node.
pub type TimerToken = u32;

/// Application logic running on every node (including the basestation).
///
/// Implementations are purely event-driven: the engine calls these hooks and
/// the node reacts by issuing commands through the [`NodeCtx`].
pub trait NodeLogic {
    /// Application payload carried by packets.
    type Payload: Clone;

    /// Called once, at simulation start.
    fn on_init(&mut self, ctx: &mut NodeCtx<'_, Self::Payload>);

    /// Called when a packet arrives at this node's radio. `addressed` is
    /// `true` if the packet was unicast to this node or broadcast; `false`
    /// if the node merely overheard a unicast meant for someone else.
    fn on_packet(
        &mut self,
        ctx: &mut NodeCtx<'_, Self::Payload>,
        packet: Packet<Self::Payload>,
        addressed: bool,
    );

    /// Called when a timer armed through [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Self::Payload>, token: TimerToken);

    /// Called when a unicast send completes (acknowledged or retry budget
    /// exhausted). The default implementation ignores the outcome.
    fn on_send_result(
        &mut self,
        _ctx: &mut NodeCtx<'_, Self::Payload>,
        _delivered: bool,
        _packet: Packet<Self::Payload>,
    ) {
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Seed for link-loss sampling and any other engine-level randomness.
    pub seed: u64,
    /// Maximum link-layer retransmissions for a unicast packet (the original
    /// transmission is not counted as a retry). TinyOS's default queued-send
    /// behaviour retries a small number of times; we default to 3.
    pub max_unicast_retries: u32,
    /// Time occupied by a single transmission attempt (channel access, air
    /// time, and ack). On a Mica2-class radio a full packet exchange takes
    /// a few tens of milliseconds.
    pub tx_slot: SimDuration,
    /// If `true`, nodes overhear unicast packets addressed to other nodes
    /// (needed for the paper's snooping-based link estimation).
    pub enable_snooping: bool,
    /// Number of region shards for the event queue: nodes are partitioned
    /// into this many contiguous id ranges, each with its own heap, merged
    /// deterministically on pop. Any value produces byte-identical results
    /// (see the [`event`](crate::event) module docs); values above the node
    /// count are clamped. Default 1 — the classic single global queue.
    pub num_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 1,
            max_unicast_retries: 3,
            tx_slot: SimDuration::from_millis(30),
            enable_snooping: true,
            num_shards: 1,
        }
    }
}

/// A node-issued command, buffered during a callback and applied by the
/// engine afterwards.
enum Command<P> {
    Send {
        dst: LinkDst,
        kind: MessageKind,
        origin: NodeId,
        origin_parent: Option<NodeId>,
        payload: P,
    },
    Forward {
        packet: Packet<P>,
        dst: LinkDst,
    },
    Timer {
        delay: SimDuration,
        token: TimerToken,
    },
}

/// The interface a node uses to act on the world from inside a callback.
pub struct NodeCtx<'a, P> {
    node: NodeId,
    now: SimTime,
    commands: &'a mut Vec<Command<P>>,
}

impl<'a, P> NodeCtx<'a, P> {
    /// The node this context belongs to.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns `true` if this node is the basestation.
    pub fn is_basestation(&self) -> bool {
        self.node.is_basestation()
    }

    /// Sends a new application message as a unicast to `dst`.
    ///
    /// `origin_parent` should be the sender's current routing-tree parent;
    /// it travels in the header so the basestation can learn the tree.
    pub fn send_unicast(
        &mut self,
        dst: NodeId,
        kind: MessageKind,
        origin_parent: Option<NodeId>,
        payload: P,
    ) {
        let origin = self.node;
        self.commands.push(Command::Send {
            dst: LinkDst::Unicast(dst),
            kind,
            origin,
            origin_parent,
            payload,
        });
    }

    /// Sends a new application message as a local broadcast.
    pub fn send_broadcast(&mut self, kind: MessageKind, origin_parent: Option<NodeId>, payload: P) {
        let origin = self.node;
        self.commands.push(Command::Send {
            dst: LinkDst::Broadcast,
            kind,
            origin,
            origin_parent,
            payload,
        });
    }

    /// Forwards an existing packet towards `dst`, preserving its origin
    /// fields and payload (multihop routing).
    pub fn forward(&mut self, packet: Packet<P>, dst: LinkDst) {
        self.commands.push(Command::Forward { packet, dst });
    }

    /// Arms a one-shot timer that fires after `delay`; `token` is handed back
    /// to [`NodeLogic::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.commands.push(Command::Timer { delay, token });
    }
}

/// The discrete-event simulator.
pub struct Engine<L: NodeLogic> {
    topology: Topology,
    links: LinkModel,
    nodes: Vec<L>,
    queue: EventQueue<L::Payload>,
    now: SimTime,
    stats: NetworkStats,
    seqnos: Vec<SeqNo>,
    rng: StdRng,
    config: EngineConfig,
    faults: FaultSchedule,
    started: bool,
    events_processed: u64,
    /// Reusable command buffer handed to node callbacks: taken in
    /// [`Engine::with_ctx`], drained, and put back so the steady-state event
    /// loop never allocates a fresh `Vec` per callback.
    cmd_buf: Vec<Command<L::Payload>>,
}

impl<L: NodeLogic> Engine<L> {
    /// Creates an engine over `topology` / `links` with one `NodeLogic`
    /// instance per node. `nodes[i]` runs on node id `i` (node 0 is the
    /// basestation).
    pub fn new(
        topology: Topology,
        links: LinkModel,
        nodes: Vec<L>,
        config: EngineConfig,
    ) -> Result<Self, ScoopError> {
        if nodes.len() != topology.len() {
            return Err(ScoopError::Simulation(format!(
                "expected {} node logic instances, got {}",
                topology.len(),
                nodes.len()
            )));
        }
        if links.len() != topology.len() {
            return Err(ScoopError::Simulation(
                "link model and topology disagree on node count".into(),
            ));
        }
        let n = topology.len();
        let num_shards = config.num_shards.clamp(1, n);
        let nodes_per_shard = n.div_ceil(num_shards);
        // Pre-size each shard by expected in-flight event density, not a
        // blanket multiple of the node count: steady state carries a few
        // pending events per node (timers plus arrivals in flight), so a
        // handful of slots per region node covers warm-up for typical runs
        // while the heap still grows on demand for denser workloads —
        // capacity is recycled across `run_until` calls and plateaus either
        // way (asserted by the zero-allocation gate). The cap keeps a
        // 32k-node single-shard engine from reserving a ~524k-slot heap up
        // front like the old `16 * n` rule did.
        let cap_per_shard = (4 * nodes_per_shard + 64).min(16_384);
        Ok(Engine {
            topology,
            links,
            nodes,
            queue: EventQueue::sharded(num_shards, nodes_per_shard, cap_per_shard),
            now: SimTime::ZERO,
            stats: NetworkStats::new(n),
            seqnos: vec![SeqNo::default(); n],
            rng: StdRng::seed_from_u64(config.seed ^ 0xe4e4_e4e4),
            config,
            faults: FaultSchedule::empty(),
            started: false,
            events_processed: 0,
            cmd_buf: Vec::with_capacity(16),
        })
    }

    /// Installs a radio-outage schedule (see [`FaultSchedule`]). The empty
    /// schedule — the default — leaves behavior byte-identical to an engine
    /// without faults.
    pub fn set_fault_schedule(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// The installed radio-outage schedule.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology the engine runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The link model the engine samples loss from.
    pub fn links(&self) -> &LinkModel {
        &self.links
    }

    /// Transmission / reception statistics collected so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Number of events currently waiting in the queue (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events dispatched so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current allocated capacity of the event queue (diagnostics) — summed
    /// over all region shards. Once the simulation reaches steady state this
    /// must stop growing: each shard's backing storage is recycled across
    /// `run_until` calls.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Number of region shards the event queue runs with (diagnostics).
    pub fn queue_shards(&self) -> usize {
        self.queue.num_shards()
    }

    /// Current allocated capacity of the reusable command buffer
    /// (diagnostics). Like [`Engine::queue_capacity`], this plateaus once
    /// the busiest callback has been seen — the hot loop reuses it instead
    /// of allocating per callback.
    pub fn command_buffer_capacity(&self) -> usize {
        self.cmd_buf.capacity()
    }

    /// Immutable access to a node's application state.
    pub fn node(&self, id: NodeId) -> &L {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's application state (used by harnesses to
    /// extract results; protocol behaviour should go through callbacks).
    pub fn node_mut(&mut self, id: NodeId) -> &mut L {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(node id, node logic)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &L)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u16), n))
    }

    /// Runs the simulation until simulated time `t` (inclusive of events
    /// scheduled exactly at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.with_ctx(NodeId(i as u16), |node, ctx| node.on_init(ctx));
            }
        }
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked event must exist");
            self.now = time;
            self.events_processed += 1;
            self.dispatch(event);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs the simulation for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Schedules a timer event for `node` at absolute simulated time `at`
    /// from *outside* any node callback — the hook an external driver (the
    /// `scoop-serve` front end) uses to make its stimulus part of the run.
    ///
    /// The event is an ordinary [`Event::TimerFire`] pushed through the same
    /// (sharded) queue as node-armed timers, so it participates in the
    /// deterministic merge order like any internal event: a run with injected
    /// timers is byte-identical at any shard count, and two runs injecting
    /// the same `(at, node, token)` sequence dispatch identically. Times in
    /// the past are clamped to `now` (the queue never travels backwards).
    pub fn inject_timer(&mut self, node: NodeId, at: SimTime, token: TimerToken) {
        let at = if at > self.now { at } else { self.now };
        self.queue.push(at, Event::TimerFire { node, token });
    }

    fn dispatch(&mut self, event: Event<L::Payload>) {
        match event {
            Event::PacketArrival {
                node,
                packet,
                addressed,
            } => {
                // A node whose radio is down hears nothing; the packet
                // evaporates without touching stats or node state. Timers
                // still fire (the CPU is alive), so a node whose outage ends
                // rejoins with its protocol state intact.
                if self.faults.is_down(node, self.now) {
                    return;
                }
                if addressed {
                    self.stats.record_rx(node, packet.meta.kind);
                } else {
                    self.stats.record_snoop(node);
                }
                self.with_ctx(node, |logic, ctx| logic.on_packet(ctx, packet, addressed));
            }
            Event::TimerFire { node, token } => {
                // A halted CPU (crashed sink) fires nothing; the timer is
                // deferred to the halt's end, so a restarted node resumes its
                // periodic duties with state intact.
                if let Some(until) = self.faults.halted_until(node, self.now) {
                    self.queue.push(until, Event::TimerFire { node, token });
                    return;
                }
                self.with_ctx(node, |logic, ctx| logic.on_timer(ctx, token));
            }
            Event::SendResult {
                node,
                delivered,
                packet,
            } => {
                if let Some(until) = self.faults.halted_until(node, self.now) {
                    self.queue.push(
                        until,
                        Event::SendResult {
                            node,
                            delivered,
                            packet,
                        },
                    );
                    return;
                }
                self.with_ctx(node, |logic, ctx| {
                    logic.on_send_result(ctx, delivered, packet)
                });
            }
        }
    }

    /// Runs `f` with a command-buffering context for `node`, then applies the
    /// buffered commands.
    ///
    /// The command buffer is engine-owned and recycled: it is taken out of
    /// `self` for the duration of the callback (callbacks never re-enter the
    /// engine, so the temporary empty buffer is never observed), drained, and
    /// put back with its capacity intact — no allocation once the busiest
    /// callback has been seen.
    fn with_ctx<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut L, &mut NodeCtx<'_, L::Payload>),
    {
        let mut commands = std::mem::take(&mut self.cmd_buf);
        {
            let mut ctx = NodeCtx {
                node,
                now: self.now,
                commands: &mut commands,
            };
            let logic = &mut self.nodes[node.index()];
            f(logic, &mut ctx);
        }
        for cmd in commands.drain(..) {
            self.apply(node, cmd);
        }
        self.cmd_buf = commands;
    }

    fn apply(&mut self, node: NodeId, cmd: Command<L::Payload>) {
        match cmd {
            Command::Timer { delay, token } => {
                self.queue
                    .push(self.now + delay, Event::TimerFire { node, token });
            }
            Command::Send {
                dst,
                kind,
                origin,
                origin_parent,
                payload,
            } => {
                let meta = PacketMeta {
                    link_src: node,
                    link_dst: dst,
                    origin,
                    origin_parent,
                    seqno: self.seqnos[node.index()],
                    kind,
                    hops: 0,
                };
                self.transmit(node, Packet { meta, payload });
            }
            Command::Forward { packet, dst } => {
                let seq = self.seqnos[node.index()];
                let packet = packet.forwarded(node, dst, seq);
                self.transmit(node, packet);
            }
        }
    }

    /// Simulates the physical transmission of `packet` by `src`, including
    /// link-layer retransmission for unicasts.
    ///
    /// Loss is sampled from the precomputed CSR neighbor table: the same
    /// listeners in the same ascending order, with the same pre-clamped
    /// probabilities, as the historical dense-row scan — one RNG draw per
    /// listener per attempt, so the random stream (and therefore every
    /// committed artifact) is byte-identical. The table iteration borrows
    /// `self.links` while the loop mutates the rng/queue, hence the field
    /// destructuring.
    fn transmit(&mut self, src: NodeId, mut packet: Packet<L::Payload>) {
        // A downed radio transmits nothing: the command is swallowed without
        // counting a transmission or consuming loss randomness.
        if self.faults.is_down(src, self.now) {
            return;
        }
        let kind = packet.meta.kind;
        match packet.meta.link_dst {
            LinkDst::Broadcast => {
                packet.meta.seqno = self.bump_seq(src);
                self.stats.record_tx(src, kind);
                let arrival = self.now + self.config.tx_slot;
                let Engine {
                    links,
                    rng,
                    queue,
                    faults,
                    ..
                } = self;
                for &Neighbor {
                    node: listener,
                    delivery_prob,
                } in links.neighbors(src)
                {
                    if rng.gen_bool(delivery_prob) {
                        // A partition cut severs the link *after* the loss
                        // roll, so scheduling one never shifts the random
                        // stream of the surviving links.
                        if faults.is_cut(src, listener, arrival) {
                            continue;
                        }
                        queue.push(
                            arrival,
                            Event::PacketArrival {
                                node: listener,
                                packet: packet.clone(),
                                addressed: true,
                            },
                        );
                    }
                }
            }
            LinkDst::Unicast(dst) => {
                let max_attempts = self.config.max_unicast_retries + 1;
                let mut delivered = false;
                let mut attempts_used = 0;
                for attempt in 0..max_attempts {
                    attempts_used = attempt + 1;
                    packet.meta.seqno = self.bump_seq(src);
                    self.stats.record_tx(src, kind);
                    let arrival = self.now + self.config.tx_slot.mul(attempts_used as u64);
                    let Engine {
                        links,
                        rng,
                        queue,
                        config,
                        faults,
                        ..
                    } = self;
                    for &Neighbor {
                        node: listener,
                        delivery_prob,
                    } in links.neighbors(src)
                    {
                        if !rng.gen_bool(delivery_prob) {
                            continue;
                        }
                        if listener == dst {
                            // A destination whose radio is down at delivery
                            // time cannot acknowledge: the attempt fails and
                            // the retry loop continues, exactly like loss. A
                            // partition cut between the endpoints fails the
                            // attempt the same way.
                            if faults.is_down(dst, arrival) || faults.is_cut(src, dst, arrival) {
                                continue;
                            }
                            queue.push(
                                arrival,
                                Event::PacketArrival {
                                    node: listener,
                                    packet: packet.clone(),
                                    addressed: true,
                                },
                            );
                            delivered = true;
                        } else if config.enable_snooping {
                            if faults.is_cut(src, listener, arrival) {
                                continue;
                            }
                            queue.push(
                                arrival,
                                Event::PacketArrival {
                                    node: listener,
                                    packet: packet.clone(),
                                    addressed: false,
                                },
                            );
                        }
                    }
                    if delivered {
                        break;
                    }
                }
                if !delivered {
                    self.stats.record_send_failure(src);
                }
                let done = self.now + self.config.tx_slot.mul(attempts_used as u64);
                self.queue.push(
                    done,
                    Event::SendResult {
                        node: src,
                        delivered,
                        packet,
                    },
                );
            }
        }
    }

    fn bump_seq(&mut self, node: NodeId) -> SeqNo {
        let s = self.seqnos[node.index()];
        self.seqnos[node.index()] = s.next();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use crate::topology::Topology;

    /// A tiny test application: node 0 periodically broadcasts a counter;
    /// every other node forwards any number it has not seen to its lower
    /// numbered neighbor via unicast and remembers everything it received.
    #[derive(Default)]
    struct TestApp {
        received: Vec<u32>,
        snooped: usize,
        timers: usize,
        send_failures: usize,
        send_successes: usize,
    }

    const TICK: TimerToken = 1;

    impl NodeLogic for TestApp {
        type Payload = u32;

        fn on_init(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.is_basestation() {
                ctx.set_timer(SimDuration::from_secs(1), TICK);
            }
        }

        fn on_packet(&mut self, ctx: &mut NodeCtx<'_, u32>, packet: Packet<u32>, addressed: bool) {
            if !addressed {
                self.snooped += 1;
                return;
            }
            self.received.push(packet.payload);
            // Node 2 forwards what it hears to node 1 as a unicast.
            if ctx.id() == NodeId(2) {
                ctx.send_unicast(NodeId(1), MessageKind::Data, None, packet.payload + 100);
            }
        }

        fn on_timer(&mut self, ctx: &mut NodeCtx<'_, u32>, token: TimerToken) {
            assert_eq!(token, TICK);
            self.timers += 1;
            ctx.send_broadcast(MessageKind::Heartbeat, None, self.timers as u32);
            if self.timers < 5 {
                ctx.set_timer(SimDuration::from_secs(1), TICK);
            }
        }

        fn on_send_result(
            &mut self,
            _ctx: &mut NodeCtx<'_, u32>,
            delivered: bool,
            _p: Packet<u32>,
        ) {
            if delivered {
                self.send_successes += 1;
            } else {
                self.send_failures += 1;
            }
        }
    }

    fn perfect_engine(n_side: usize) -> Engine<TestApp> {
        let topo = Topology::grid(n_side, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        let nodes = (0..topo.len()).map(|_| TestApp::default()).collect();
        Engine::new(topo, links, nodes, EngineConfig::default()).unwrap()
    }

    #[test]
    fn rejects_mismatched_node_count() {
        let topo = Topology::grid(2, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        let err = Engine::new(
            topo,
            links,
            vec![TestApp::default()],
            EngineConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn broadcasts_reach_all_neighbors_on_perfect_links() {
        let mut eng = perfect_engine(2); // 4 nodes, all within range of each other
        eng.run_until(SimTime::from_secs(10));
        // Node 0 broadcast 5 heartbeats; each other node hears all 5.
        // (Node 1 additionally receives node 2's forwarded unicasts, which
        // carry values above 100, so filter those out here.)
        for i in 1..4 {
            let broadcasts = eng
                .node(NodeId(i))
                .received
                .iter()
                .filter(|&&v| v <= 100)
                .count();
            assert_eq!(broadcasts, 5, "node {i}");
        }
        assert_eq!(eng.stats().total_tx().heartbeat, 5);
        assert_eq!(eng.node(NodeId(0)).timers, 5);
    }

    #[test]
    fn unicast_is_delivered_and_acknowledged() {
        let mut eng = perfect_engine(2);
        eng.run_until(SimTime::from_secs(10));
        // Node 2 forwarded each broadcast to node 1 (values 101..=105).
        let n1: Vec<u32> = eng
            .node(NodeId(1))
            .received
            .iter()
            .copied()
            .filter(|v| *v > 100)
            .collect();
        assert_eq!(n1.len(), 5);
        assert_eq!(eng.node(NodeId(2)).send_successes, 5);
        assert_eq!(eng.node(NodeId(2)).send_failures, 0);
        // On perfect links a unicast needs exactly one transmission.
        assert_eq!(eng.stats().node(NodeId(2)).tx.data, 5);
    }

    #[test]
    fn snooping_is_observed_by_third_parties() {
        let mut eng = perfect_engine(2);
        eng.run_until(SimTime::from_secs(10));
        // Node 3 overhears node 2's unicasts to node 1.
        assert!(eng.node(NodeId(3)).snooped >= 5);
        assert!(eng.stats().node(NodeId(3)).snooped >= 5);
    }

    #[test]
    fn lossy_unicast_retransmits_and_can_fail() {
        let topo = Topology::grid(2, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        // Make the 2 -> 1 link hopeless so the retry budget is exhausted.
        links.set_link(NodeId(2), NodeId(1), 0.0);
        let nodes = (0..topo.len()).map(|_| TestApp::default()).collect();
        let mut eng = Engine::new(topo, links, nodes, EngineConfig::default()).unwrap();
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.node(NodeId(2)).send_failures, 5);
        // 5 sends × (1 + 3 retries) transmissions each.
        assert_eq!(eng.stats().node(NodeId(2)).tx.data, 20);
        assert_eq!(eng.stats().node(NodeId(2)).send_failures, 5);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed: u64| {
            let topo = Topology::office_floor(20, 3).unwrap();
            let links = LinkModel::from_topology(&topo, 3);
            let nodes = (0..topo.len()).map(|_| TestApp::default()).collect();
            let mut eng = Engine::new(
                topo,
                links,
                nodes,
                EngineConfig {
                    seed,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            eng.run_until(SimTime::from_secs(10));
            eng.stats().total_tx()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn injected_timers_fire_like_ordinary_events() {
        const EXTERNAL: TimerToken = 99;
        // TestApp asserts token == TICK in on_timer; use a bespoke app that
        // records what fires and when.
        struct Recorder {
            fired: Vec<(u64, TimerToken)>,
        }
        impl NodeLogic for Recorder {
            type Payload = ();
            fn on_init(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                ctx.set_timer(SimDuration::from_secs(3), TICK);
            }
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_, ()>, _p: Packet<()>, _a: bool) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_, ()>, token: TimerToken) {
                self.fired.push((ctx.now().as_millis(), token));
            }
        }
        let topo = Topology::grid(2, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        let nodes = (0..topo.len())
            .map(|_| Recorder { fired: Vec::new() })
            .collect();
        let mut eng = Engine::new(topo, links, nodes, EngineConfig::default()).unwrap();

        // Inject before the first run (queue not yet started) and between
        // runs; both must dispatch at their requested times, interleaved
        // with the node-armed timer in time order.
        eng.inject_timer(NodeId(1), SimTime::from_secs(2), EXTERNAL);
        eng.run_until(SimTime::from_secs(4));
        // A past target clamps to `now` instead of running backwards.
        eng.inject_timer(NodeId(1), SimTime::from_secs(1), EXTERNAL);
        eng.run_until(SimTime::from_secs(10));

        assert_eq!(
            eng.node(NodeId(1)).fired,
            vec![(2_000, EXTERNAL), (3_000, TICK), (4_000, EXTERNAL)]
        );
        // Other nodes saw only their own armed timer.
        assert_eq!(eng.node(NodeId(2)).fired, vec![(3_000, TICK)]);
    }

    #[test]
    fn time_advances_to_run_until_target() {
        let mut eng = perfect_engine(2);
        eng.run_until(SimTime::from_secs(42));
        assert_eq!(eng.now(), SimTime::from_secs(42));
        // Running backwards is a no-op, not a panic.
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.now(), SimTime::from_secs(42));
        eng.run_for(SimDuration::from_secs(8));
        assert_eq!(eng.now(), SimTime::from_secs(50));
    }

    #[test]
    fn partition_severs_cross_side_delivery_and_heals() {
        // Grid of 4, all in range: node 0 broadcasts every second. Cut node
        // 3 away during [1.5s, 3.5s): it must miss exactly the broadcasts
        // sent at 2s and 3s while nodes 1 and 2 hear everything.
        let mut eng = perfect_engine(2);
        let mut faults = FaultSchedule::empty();
        faults.add_partition(
            SimTime::from_millis(1_500),
            SimTime::from_millis(3_500),
            vec![false, false, false, true],
        );
        eng.set_fault_schedule(faults);
        eng.run_until(SimTime::from_secs(10));

        let broadcasts = |i: u16| {
            eng.node(NodeId(i))
                .received
                .iter()
                .filter(|&&v| v <= 100)
                .copied()
                .collect::<Vec<u32>>()
        };
        assert_eq!(broadcasts(1), vec![1, 2, 3, 4, 5]);
        assert_eq!(broadcasts(2), vec![1, 2, 3, 4, 5]);
        assert_eq!(
            broadcasts(3),
            vec![1, 4, 5],
            "cut side misses exactly the in-window broadcasts"
        );
    }

    #[test]
    fn partition_fails_unicast_attempts_like_loss() {
        // Node 2 forwards each broadcast it hears to node 1 as a unicast.
        // Cutting {1} away from everyone makes those unicasts fail (after
        // retries) while node 2 keeps hearing the broadcasts.
        let mut eng = perfect_engine(2);
        let mut faults = FaultSchedule::empty();
        faults.add_partition(
            SimTime::ZERO,
            SimTime::from_secs(100),
            vec![false, true, false, false],
        );
        eng.set_fault_schedule(faults);
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.node(NodeId(1)).received, Vec::<u32>::new());
        assert_eq!(eng.node(NodeId(2)).send_failures, 5);
        assert_eq!(eng.node(NodeId(2)).send_successes, 0);
    }

    #[test]
    fn halted_nodes_defer_timers_to_the_window_end() {
        // Node 0's heartbeat timer ticks once per second from 1s. Halting
        // its CPU during [1.5s, 4.5s) defers the 2s tick to 4.5s; the chain
        // then resumes (each tick re-arms +1s), so ticks land at 1, 4.5,
        // 5.5, 6.5, 7.5 seconds — still five in total.
        let mut eng = perfect_engine(2);
        let mut faults = FaultSchedule::empty();
        faults.add_halt(
            NodeId(0),
            SimTime::from_millis(1_500),
            SimTime::from_millis(4_500),
        );
        eng.set_fault_schedule(faults);
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.node(NodeId(0)).timers, 5, "no tick is lost");
        // Every other node still hears all five broadcasts.
        for i in 1..4 {
            let broadcasts = eng
                .node(NodeId(i))
                .received
                .iter()
                .filter(|&&v| v <= 100)
                .count();
            assert_eq!(broadcasts, 5, "node {i}");
        }
    }

    #[test]
    fn empty_new_fault_kinds_leave_runs_byte_identical() {
        // A schedule with no cuts or halts must not perturb anything —
        // including the RNG stream — relative to no schedule at all.
        let mut plain = perfect_engine(2);
        plain.run_until(SimTime::from_secs(10));
        let mut scheduled = perfect_engine(2);
        scheduled.set_fault_schedule(FaultSchedule::empty());
        scheduled.run_until(SimTime::from_secs(10));
        for i in 0..4 {
            assert_eq!(
                plain.node(NodeId(i)).received,
                scheduled.node(NodeId(i)).received
            );
        }
        assert_eq!(plain.events_processed(), scheduled.events_processed());
    }
}
