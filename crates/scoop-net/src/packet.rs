//! Packets and their headers.
//!
//! The simulator is generic over the application payload `P`; the simulation
//! harness instantiates it with an enum covering Scoop's summary, mapping,
//! data, query, and reply messages. The header mirrors Scoop's custom packet
//! header (Section 5.2): every packet carries its *origin* and the origin's
//! current routing-tree parent, which is how the basestation learns the
//! parent/child structure of the tree.

use scoop_types::{MessageKind, NodeId, SeqNo};
use serde::{Deserialize, Serialize};

/// Link-layer destination of a transmission.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LinkDst {
    /// Addressed to a specific neighbor; acknowledged and retransmitted.
    Unicast(NodeId),
    /// Local broadcast; received best-effort by every node in range.
    Broadcast,
}

impl LinkDst {
    /// Returns the target node for a unicast, `None` for a broadcast.
    pub fn unicast_target(self) -> Option<NodeId> {
        match self {
            LinkDst::Unicast(n) => Some(n),
            LinkDst::Broadcast => None,
        }
    }
}

/// The link- and network-layer header of a packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PacketMeta {
    /// The node whose radio transmitted this copy of the packet.
    pub link_src: NodeId,
    /// Link-layer destination of this transmission.
    pub link_dst: LinkDst,
    /// The node that originally created the application message.
    pub origin: NodeId,
    /// The origin's routing-tree parent at creation time (or `None` if it has
    /// no parent yet). Part of Scoop's custom header; the basestation uses it
    /// to reconstruct the routing tree.
    pub origin_parent: Option<NodeId>,
    /// Link-layer sequence number of the transmitting node. Neighbors snoop
    /// these to estimate link quality.
    pub seqno: SeqNo,
    /// Application message classification, used for cost accounting.
    pub kind: MessageKind,
    /// Number of times this application message has been forwarded since it
    /// was created. Nodes use it as a TTL so that transient routing loops
    /// (stale descendants entries, tree churn) cannot forward a packet
    /// forever.
    pub hops: u8,
}

/// A packet: header plus application payload.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Packet<P> {
    /// Header fields.
    pub meta: PacketMeta,
    /// Application payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Rewrites the link-layer fields for a retransmission/forward by `src`
    /// towards `dst`, keeping origin information and payload intact. The hop
    /// counter is incremented (saturating).
    pub fn forwarded(mut self, src: NodeId, dst: LinkDst, seqno: SeqNo) -> Self {
        self.meta.link_src = src;
        self.meta.link_dst = dst;
        self.meta.seqno = seqno;
        self.meta.hops = self.meta.hops.saturating_add(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> PacketMeta {
        PacketMeta {
            link_src: NodeId(3),
            link_dst: LinkDst::Unicast(NodeId(2)),
            origin: NodeId(3),
            origin_parent: Some(NodeId(2)),
            seqno: SeqNo(7),
            kind: MessageKind::Data,
            hops: 0,
        }
    }

    #[test]
    fn unicast_target() {
        assert_eq!(
            LinkDst::Unicast(NodeId(5)).unicast_target(),
            Some(NodeId(5))
        );
        assert_eq!(LinkDst::Broadcast.unicast_target(), None);
    }

    #[test]
    fn forwarding_preserves_origin_and_payload() {
        let p = Packet {
            meta: meta(),
            payload: 42u32,
        };
        let f = p
            .clone()
            .forwarded(NodeId(2), LinkDst::Unicast(NodeId(0)), SeqNo(99));
        assert_eq!(f.meta.link_src, NodeId(2));
        assert_eq!(f.meta.link_dst, LinkDst::Unicast(NodeId(0)));
        assert_eq!(f.meta.seqno, SeqNo(99));
        assert_eq!(f.meta.origin, NodeId(3));
        assert_eq!(f.meta.origin_parent, Some(NodeId(2)));
        assert_eq!(f.meta.hops, 1, "forwarding increments the hop count");
        assert_eq!(f.payload, 42);
    }
}
