//! Per-node and network-wide transmission / reception accounting.
//!
//! The paper's headline metric is the number of messages the nodes
//! collectively *send* (Figure 3); its root-skew analysis additionally counts
//! what the root *receives*. Both are tracked here, per message kind.

use scoop_types::{MessageKind, MessageStats, NodeId};
use serde::{Deserialize, Serialize};

/// Counters for a single node.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NodeStats {
    /// Transmissions, by message kind. Includes link-layer retransmissions,
    /// since each costs radio energy.
    pub tx: MessageStats,
    /// Receptions of packets addressed to this node, by message kind.
    pub rx: MessageStats,
    /// Packets overheard (snooped) that were not addressed to this node.
    pub snooped: u64,
    /// Unicast sends that exhausted their retry budget without an ack.
    pub send_failures: u64,
}

impl NodeStats {
    /// Total radio transmissions (all kinds, including heartbeats).
    pub fn total_tx(&self) -> u64 {
        self.tx.total()
    }

    /// Total addressed receptions (all kinds).
    pub fn total_rx(&self) -> u64 {
        self.rx.total()
    }
}

/// Counters for the whole network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkStats {
    nodes: Vec<NodeStats>,
}

impl NetworkStats {
    /// Zeroed counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        NetworkStats {
            nodes: vec![NodeStats::default(); n],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Counters for one node.
    pub fn node(&self, node: NodeId) -> NodeStats {
        self.nodes.get(node.index()).copied().unwrap_or_default()
    }

    /// Records a transmission by `node`.
    pub fn record_tx(&mut self, node: NodeId, kind: MessageKind) {
        if let Some(s) = self.nodes.get_mut(node.index()) {
            s.tx.record(kind);
        }
    }

    /// Records an addressed reception at `node`.
    pub fn record_rx(&mut self, node: NodeId, kind: MessageKind) {
        if let Some(s) = self.nodes.get_mut(node.index()) {
            s.rx.record(kind);
        }
    }

    /// Records an overheard (snooped) packet at `node`.
    pub fn record_snoop(&mut self, node: NodeId) {
        if let Some(s) = self.nodes.get_mut(node.index()) {
            s.snooped += 1;
        }
    }

    /// Records a failed unicast send at `node`.
    pub fn record_send_failure(&mut self, node: NodeId) {
        if let Some(s) = self.nodes.get_mut(node.index()) {
            s.send_failures += 1;
        }
    }

    /// Network-wide transmission counters (sum over all nodes).
    pub fn total_tx(&self) -> MessageStats {
        self.nodes.iter().map(|n| n.tx).sum()
    }

    /// Network-wide reception counters (sum over all nodes).
    pub fn total_rx(&self) -> MessageStats {
        self.nodes.iter().map(|n| n.rx).sum()
    }

    /// The paper's cost metric: total transmissions excluding heartbeats.
    pub fn cost(&self) -> u64 {
        self.total_tx().cost()
    }

    /// The node with the largest number of transmissions (usually the root or
    /// a node near it) and its count — the "skew" analysis from Section 6.
    pub fn busiest_node(&self) -> Option<(NodeId, u64)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u16), s.total_tx()))
            .max_by_key(|&(_, tx)| tx)
    }

    /// Iterates over `(node, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeStats)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u16), s))
    }

    /// Merges another stats object into this one (element-wise sum). Both must
    /// track the same number of nodes.
    pub fn merge(&mut self, other: &NetworkStats) {
        assert_eq!(self.len(), other.len(), "cannot merge mismatched stats");
        for (a, b) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            a.tx += b.tx;
            a.rx += b.rx;
            a.snooped += b.snooped;
            a.send_failures += b.send_failures;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = NetworkStats::new(3);
        s.record_tx(NodeId(1), MessageKind::Data);
        s.record_tx(NodeId(1), MessageKind::Data);
        s.record_tx(NodeId(2), MessageKind::Query);
        s.record_rx(NodeId(0), MessageKind::Data);
        s.record_snoop(NodeId(2));
        s.record_send_failure(NodeId(1));
        assert_eq!(s.node(NodeId(1)).tx.data, 2);
        assert_eq!(s.node(NodeId(1)).send_failures, 1);
        assert_eq!(s.node(NodeId(2)).snooped, 1);
        assert_eq!(s.total_tx().data, 2);
        assert_eq!(s.total_tx().query, 1);
        assert_eq!(s.total_rx().data, 1);
        assert_eq!(s.cost(), 3);
    }

    #[test]
    fn heartbeats_excluded_from_cost() {
        let mut s = NetworkStats::new(2);
        s.record_tx(NodeId(1), MessageKind::Heartbeat);
        s.record_tx(NodeId(1), MessageKind::Data);
        assert_eq!(s.cost(), 1);
        assert_eq!(s.total_tx().total(), 2);
    }

    #[test]
    fn busiest_node() {
        let mut s = NetworkStats::new(3);
        for _ in 0..5 {
            s.record_tx(NodeId(2), MessageKind::Data);
        }
        s.record_tx(NodeId(1), MessageKind::Data);
        assert_eq!(s.busiest_node(), Some((NodeId(2), 5)));
    }

    #[test]
    fn unknown_node_is_ignored() {
        let mut s = NetworkStats::new(2);
        s.record_tx(NodeId(50), MessageKind::Data);
        assert_eq!(s.cost(), 0);
        assert_eq!(s.node(NodeId(50)), NodeStats::default());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = NetworkStats::new(2);
        a.record_tx(NodeId(0), MessageKind::Summary);
        let mut b = NetworkStats::new(2);
        b.record_tx(NodeId(0), MessageKind::Summary);
        b.record_rx(NodeId(1), MessageKind::Mapping);
        a.merge(&b);
        assert_eq!(a.node(NodeId(0)).tx.summary, 2);
        assert_eq!(a.node(NodeId(1)).rx.mapping, 1);
    }
}
