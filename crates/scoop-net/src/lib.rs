//! Discrete-event, packet-level wireless sensor network simulator.
//!
//! This crate is the substrate that replaces the paper's TOSSIM simulator and
//! Mica2 mote testbed. It models:
//!
//! * **Topology** — node positions on a floor plan, with generators for the
//!   paper's 62-node office-floor testbed layout, regular grids, uniform
//!   random placements, and linear (worst-case depth) chains.
//! * **Links** — lossy, asymmetric directed links between nodes within radio
//!   range. Among connected pairs, loss rates vary from roughly 25 % to 90 %,
//!   and each node can hear about 20 % of the network, matching Section 6.
//! * **Radio** — broadcast semantics: every transmission is heard (with
//!   per-link loss) by every in-range node. Unicast sends use link-layer
//!   acknowledgements with bounded retransmission; every (re)transmission is
//!   counted, because the paper's cost metric is transmissions.
//! * **Accounting** — per-node, per-[`MessageKind`](scoop_types::MessageKind)
//!   transmission and reception counters, plus an energy model calibrated to
//!   the numbers in Section 2.1 (radio ≈ 700 nJ/bit, flash write ≈ 28 nJ/bit).
//!
//! The simulator is deterministic: all randomness flows from the seed in the
//! engine's configuration.

#![warn(missing_docs)]

pub mod energy;
pub mod engine;
pub mod event;
pub mod fault;
pub mod gen;
pub mod link;
pub mod packet;
pub mod stats;
pub mod topology;

pub use energy::{EnergyModel, EnergyReport};
pub use engine::{Engine, EngineConfig, NodeCtx, NodeLogic, TimerToken};
pub use event::{Event, EventQueue};
pub use fault::{FaultSchedule, Outage, PartitionCut};
pub use gen::{LinkGen, StdLinkGen, StdTopologyGen, TopologyGen};
pub use link::{LinkModel, LinkModelParams, LinkQuality, Neighbor};
pub use packet::{LinkDst, Packet, PacketMeta};
pub use stats::{NetworkStats, NodeStats};
pub use topology::{NodePosition, Topology, TopologyKind};
