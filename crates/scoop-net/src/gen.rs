//! Pluggable topology / link-model factories.
//!
//! `scoop_sim::SimBuilder` assembles engines through these two small traits
//! instead of hardcoding `Topology::office_floor` + `LinkModel`
//! construction, so an experiment can swap either axis — a custom placement
//! generator, a trace-driven loss model — without touching the runner. Both
//! traits are `Send + Sync` and deterministic in `seed`, which is what lets
//! the parallel sweep runner share one factory across worker threads.

use crate::link::LinkModel;
use crate::topology::Topology;
use scoop_types::{LinkSpec, ScoopError, TopologySpec};

/// Builds a [`Topology`] from a [`TopologySpec`]. Implementations must be
/// pure functions of `(spec, num_nodes, seed)`.
pub trait TopologyGen: Send + Sync {
    /// Generates the placement for `num_nodes` sensors plus the basestation.
    fn generate(
        &self,
        spec: &TopologySpec,
        num_nodes: usize,
        seed: u64,
    ) -> Result<Topology, ScoopError>;
}

/// Builds a [`LinkModel`] over a topology from a [`LinkSpec`].
/// Implementations must be pure functions of `(spec, topology, seed)`.
pub trait LinkGen: Send + Sync {
    /// Derives per-directed-pair link quality for `topo`.
    fn generate(
        &self,
        spec: &LinkSpec,
        topo: &Topology,
        seed: u64,
    ) -> Result<LinkModel, ScoopError>;
}

/// The standard placement factory: dispatches on [`TopologySpec::kind`] and
/// guarantees a connected result.
///
/// Random placements (uniform random; jittered office floors at unlucky
/// sizes) can land disconnected. Rather than handing the protocol an
/// unreachable island, the generator deterministically widens the radio
/// range by 25 % per attempt until every node can reach the basestation.
/// Specs whose natural range already connects — including every paper
/// default used by the committed experiments — take the first attempt and
/// are byte-identical to direct `Topology` construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdTopologyGen;

impl TopologyGen for StdTopologyGen {
    fn generate(
        &self,
        spec: &TopologySpec,
        num_nodes: usize,
        seed: u64,
    ) -> Result<Topology, ScoopError> {
        let mut boost = 1.0;
        loop {
            let attempt = TopologySpec {
                range_factor: spec.range_factor * boost,
                ..*spec
            };
            let topo = Topology::from_spec(&attempt, num_nodes, seed)?;
            if topo.is_connected() {
                return Ok(topo);
            }
            boost *= 1.25;
            if boost > 1e4 {
                // A range 10⁴× the natural one covers any finite arena; if
                // we get here the spec itself is degenerate.
                return Err(ScoopError::InvalidConfig(format!(
                    "topology spec cannot be connected: {spec:?} with {num_nodes} nodes"
                )));
            }
        }
    }
}

/// The standard loss-model factory: dispatches on [`LinkSpec::family`]
/// through [`LinkModel::from_spec`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StdLinkGen;

impl LinkGen for StdLinkGen {
    fn generate(
        &self,
        spec: &LinkSpec,
        topo: &Topology,
        seed: u64,
    ) -> Result<LinkModel, ScoopError> {
        LinkModel::from_spec(spec, topo, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{LinkFamily, NodeId, TopologyKind};

    #[test]
    fn std_gens_match_direct_construction_on_defaults() {
        // The factory path must be byte-identical to the legacy constructors
        // for the paper's office-floor defaults.
        let spec = TopologySpec::office_floor();
        let topo_gen = StdTopologyGen.generate(&spec, 62, 7).unwrap();
        let topo_direct = Topology::office_floor(62, 7).unwrap();
        for n in topo_direct.nodes() {
            assert_eq!(
                topo_gen.position(n).unwrap().x,
                topo_direct.position(n).unwrap().x
            );
            assert_eq!(
                topo_gen.position(n).unwrap().y,
                topo_direct.position(n).unwrap().y
            );
        }
        assert_eq!(topo_gen.radio_range(), topo_direct.radio_range());

        let links_gen = StdLinkGen
            .generate(&LinkSpec::legacy(), &topo_gen, 7)
            .unwrap();
        let links_direct = LinkModel::from_topology(&topo_direct, 7);
        for a in topo_direct.nodes() {
            for b in topo_direct.nodes() {
                assert_eq!(
                    links_gen.link(a, b).delivery_prob,
                    links_direct.link(a, b).delivery_prob
                );
            }
        }
    }

    #[test]
    fn every_kind_generates_a_connected_topology() {
        for kind in TopologyKind::ALL {
            let spec = TopologySpec {
                kind,
                ..TopologySpec::office_floor()
            };
            for nodes in [2, 17, 96] {
                let topo = StdTopologyGen.generate(&spec, nodes, 11).unwrap();
                assert_eq!(topo.num_sensors(), nodes, "{kind:?}");
                assert!(topo.is_connected(), "{kind:?} at {nodes} nodes");
            }
        }
    }

    #[test]
    fn sparse_random_placements_get_range_escalated_until_connected() {
        // A deliberately starved radio range: escalation must rescue it.
        let spec = TopologySpec {
            kind: TopologyKind::UniformRandom,
            range_factor: 0.05,
            ..TopologySpec::uniform_random()
        };
        for seed in 0..10 {
            let topo = StdTopologyGen.generate(&spec, 30, seed).unwrap();
            assert!(topo.is_connected(), "seed {seed}");
            assert!(topo
                .nodes()
                .all(|n| topo.hop_distance(n, NodeId::BASESTATION).is_some()));
        }
    }

    #[test]
    fn perfect_family_produces_lossless_links() {
        let topo = StdTopologyGen
            .generate(&TopologySpec::grid(), 24, 1)
            .unwrap();
        let links = StdLinkGen.generate(&LinkSpec::perfect(), &topo, 1).unwrap();
        assert_eq!(links.mean_loss(), 0.0);
        assert_eq!(
            links.params().max_delivery,
            1.0,
            "perfect family must ignore the decay knobs"
        );
        let _ = LinkFamily::Perfect;
    }

    #[test]
    fn grid_spec_truncates_to_the_requested_count() {
        let topo = StdTopologyGen
            .generate(&TopologySpec::grid(), 256, 3)
            .unwrap();
        assert_eq!(topo.len(), 257);
        assert_eq!(topo.kind(), TopologyKind::Grid);
        assert!(topo.is_connected());
    }
}
