//! The discrete-event queue.
//!
//! Events are ordered by simulated time; ties are broken by insertion order
//! so the simulation is fully deterministic.

use crate::packet::Packet;
use scoop_types::{NodeId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending simulation event.
#[derive(Clone, Debug)]
pub enum Event<P> {
    /// A packet arrives at `node`'s radio.
    PacketArrival {
        /// Receiving node.
        node: NodeId,
        /// The packet as transmitted.
        packet: Packet<P>,
        /// `true` if the packet was link-addressed to this node (unicast to it
        /// or broadcast); `false` if the node merely overheard it (snoop).
        addressed: bool,
    },
    /// A timer set by `node` fires.
    TimerFire {
        /// The node whose timer fires.
        node: NodeId,
        /// The opaque token the node supplied when arming the timer.
        token: u32,
    },
    /// A unicast transmission completed.
    SendResult {
        /// The sending node.
        node: NodeId,
        /// `true` if the packet was acknowledged by the link destination
        /// within the retry budget.
        delivered: bool,
        /// The packet that was sent.
        packet: Packet<P>,
    },
}

impl<P> Event<P> {
    /// The node this event should be delivered to.
    pub fn node(&self) -> NodeId {
        match self {
            Event::PacketArrival { node, .. }
            | Event::TimerFire { node, .. }
            | Event::SendResult { node, .. } => *node,
        }
    }
}

struct QueueEntry<P> {
    time: SimTime,
    seq: u64,
    event: Event<P>,
}

impl<P> PartialEq for QueueEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for QueueEntry<P> {}
impl<P> PartialOrd for QueueEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for QueueEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events.
pub struct EventQueue<P> {
    heap: BinaryHeap<QueueEntry<P>>,
    next_seq: u64,
}

impl<P> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with room for `cap` events before reallocating. The
    /// backing storage only ever grows, so capacity established during
    /// warm-up is recycled across the whole simulation.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event<P>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueueEntry { time, seq, event });
    }

    /// Removes and returns the earliest event, along with its time.
    pub fn pop(&mut self) -> Option<(SimTime, Event<P>)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(
            SimTime::from_secs(5),
            Event::TimerFire {
                node: NodeId(1),
                token: 5,
            },
        );
        q.push(
            SimTime::from_secs(1),
            Event::TimerFire {
                node: NodeId(1),
                token: 1,
            },
        );
        q.push(
            SimTime::from_secs(3),
            Event::TimerFire {
                node: NodeId(1),
                token: 3,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for token in 0..10 {
            q.push(
                SimTime::from_secs(2),
                Event::TimerFire {
                    node: NodeId(0),
                    token,
                },
            );
        }
        let tokens: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(
            SimTime::from_secs(9),
            Event::TimerFire {
                node: NodeId(2),
                token: 0,
            },
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn event_node_accessor() {
        let e: Event<()> = Event::TimerFire {
            node: NodeId(7),
            token: 1,
        };
        assert_eq!(e.node(), NodeId(7));
    }
}
