//! The discrete-event queue, optionally sharded by node region.
//!
//! Events are ordered by simulated time; ties are broken by insertion order
//! so the simulation is fully deterministic.
//!
//! # Sharding
//!
//! The queue can be partitioned into per-region shards: contiguous node-id
//! ranges each backed by their own binary heap, with events routed to the
//! shard of their destination node. Popping takes the minimum across shard
//! heads ordered by `(time, seq, shard)`. Because `seq` is a *global*
//! insertion counter shared by all shards, every event has a unique
//! `(time, seq)` key, and the cross-shard minimum is exactly the element a
//! single merged heap would pop — so sharded execution is byte-identical to
//! the sequential single-queue loop, shard count be what it may. (The shard
//! index in the ordering key is the documented tie-breaker, but it is never
//! reached: global `seq` uniqueness decides every tie first.) The win on one
//! core is memory locality — each region's pending events stay in a compact
//! heap sized to the region, not interleaved across the whole deployment.

use crate::packet::Packet;
use scoop_types::{NodeId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending simulation event.
#[derive(Clone, Debug)]
pub enum Event<P> {
    /// A packet arrives at `node`'s radio.
    PacketArrival {
        /// Receiving node.
        node: NodeId,
        /// The packet as transmitted.
        packet: Packet<P>,
        /// `true` if the packet was link-addressed to this node (unicast to it
        /// or broadcast); `false` if the node merely overheard it (snoop).
        addressed: bool,
    },
    /// A timer set by `node` fires.
    TimerFire {
        /// The node whose timer fires.
        node: NodeId,
        /// The opaque token the node supplied when arming the timer.
        token: u32,
    },
    /// A unicast transmission completed.
    SendResult {
        /// The sending node.
        node: NodeId,
        /// `true` if the packet was acknowledged by the link destination
        /// within the retry budget.
        delivered: bool,
        /// The packet that was sent.
        packet: Packet<P>,
    },
}

impl<P> Event<P> {
    /// The node this event should be delivered to.
    pub fn node(&self) -> NodeId {
        match self {
            Event::PacketArrival { node, .. }
            | Event::TimerFire { node, .. }
            | Event::SendResult { node, .. } => *node,
        }
    }
}

struct QueueEntry<P> {
    time: SimTime,
    seq: u64,
    event: Event<P>,
}

impl<P> PartialEq for QueueEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for QueueEntry<P> {}
impl<P> PartialOrd for QueueEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for QueueEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events, sharded by destination region.
pub struct EventQueue<P> {
    /// One heap per contiguous node-id region. A single-shard queue is the
    /// classic global heap.
    shards: Vec<BinaryHeap<QueueEntry<P>>>,
    /// Width of each region: events for node `i` route to shard
    /// `i / nodes_per_shard` (clamped to the last shard).
    nodes_per_shard: usize,
    /// Global insertion counter shared by every shard — the key to the
    /// byte-identity argument in the module docs.
    next_seq: u64,
}

impl<P> EventQueue<P> {
    /// An empty single-shard queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty single-shard queue with room for `cap` events before
    /// reallocating. The backing storage only ever grows, so capacity
    /// established during warm-up is recycled across the whole simulation.
    pub fn with_capacity(cap: usize) -> Self {
        Self::sharded(1, usize::MAX, cap)
    }

    /// An empty queue with `num_shards` region shards of `nodes_per_shard`
    /// consecutive node ids each, every shard pre-sized to `cap_per_shard`.
    pub fn sharded(num_shards: usize, nodes_per_shard: usize, cap_per_shard: usize) -> Self {
        let num_shards = num_shards.max(1);
        EventQueue {
            shards: (0..num_shards)
                .map(|_| BinaryHeap::with_capacity(cap_per_shard))
                .collect(),
            nodes_per_shard: nodes_per_shard.max(1),
            next_seq: 0,
        }
    }

    /// Number of region shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, event: &Event<P>) -> usize {
        (event.node().index() / self.nodes_per_shard).min(self.shards.len() - 1)
    }

    /// Total number of events the shards can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(BinaryHeap::capacity).sum()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event<P>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = self.shard_of(&event);
        self.shards[shard].push(QueueEntry { time, seq, event });
    }

    /// The shard holding the globally earliest event, by `(time, seq,
    /// shard)`. `seq` is globally unique, so this is exactly the element a
    /// single merged heap would surface.
    #[inline]
    fn earliest_shard(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (s, heap) in self.shards.iter().enumerate() {
            if let Some(head) = heap.peek() {
                let key = (head.time, head.seq, s);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, s)| s)
    }

    /// Removes and returns the earliest event, along with its time.
    pub fn pop(&mut self) -> Option<(SimTime, Event<P>)> {
        let s = self.earliest_shard()?;
        self.shards[s].pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.earliest_shard()
            .and_then(|s| self.shards[s].peek().map(|e| e.time))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.shards.iter().map(BinaryHeap::len).sum()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BinaryHeap::is_empty)
    }
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(
            SimTime::from_secs(5),
            Event::TimerFire {
                node: NodeId(1),
                token: 5,
            },
        );
        q.push(
            SimTime::from_secs(1),
            Event::TimerFire {
                node: NodeId(1),
                token: 1,
            },
        );
        q.push(
            SimTime::from_secs(3),
            Event::TimerFire {
                node: NodeId(1),
                token: 3,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for token in 0..10 {
            q.push(
                SimTime::from_secs(2),
                Event::TimerFire {
                    node: NodeId(0),
                    token,
                },
            );
        }
        let tokens: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(
            SimTime::from_secs(9),
            Event::TimerFire {
                node: NodeId(2),
                token: 0,
            },
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn sharded_pop_order_matches_single_queue() {
        // Any shard count must reproduce the single global heap's pop order
        // exactly — the global `seq` counter makes every (time, seq) key
        // unique, so the cross-shard minimum is the merged-heap minimum.
        let mut events = Vec::new();
        let mut state = 0x9e37_79b9_u64;
        for k in 0..500u32 {
            // Cheap deterministic pseudo-random times/nodes, many ties.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = SimTime::from_secs((state >> 33) % 17);
            let node = NodeId(((state >> 17) % 40) as u16);
            events.push((t, node, k));
        }
        let drain = |num_shards: usize| -> Vec<(u64, u32)> {
            let mut q: EventQueue<()> =
                EventQueue::sharded(num_shards, 40usize.div_ceil(num_shards), 0);
            for &(t, node, token) in &events {
                q.push(t, Event::TimerFire { node, token });
            }
            std::iter::from_fn(|| q.pop())
                .map(|(t, e)| match e {
                    Event::TimerFire { token, .. } => (t.as_secs(), token),
                    _ => unreachable!(),
                })
                .collect()
        };
        let single = drain(1);
        assert_eq!(single.len(), events.len());
        for shards in [2, 3, 4, 7, 64] {
            assert_eq!(drain(shards), single, "{shards} shards diverged");
        }
    }

    #[test]
    fn sharded_routing_and_interleaved_push_pop() {
        let mut q: EventQueue<()> = EventQueue::sharded(4, 10, 0);
        assert_eq!(q.num_shards(), 4);
        // Nodes beyond the last region clamp into the final shard instead of
        // panicking.
        q.push(
            SimTime::from_secs(1),
            Event::TimerFire {
                node: NodeId(999),
                token: 0,
            },
        );
        q.push(
            SimTime::from_secs(1),
            Event::TimerFire {
                node: NodeId(0),
                token: 1,
            },
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        // Same time → global insertion order decides, across shards.
        let (_, first) = q.pop().unwrap();
        assert_eq!(first.node(), NodeId(999));
        let (_, second) = q.pop().unwrap();
        assert_eq!(second.node(), NodeId(0));
        assert!(q.is_empty());
    }

    #[test]
    fn event_node_accessor() {
        let e: Event<()> = Event::TimerFire {
            node: NodeId(7),
            token: 1,
        };
        assert_eq!(e.node(), NodeId(7));
    }
}
