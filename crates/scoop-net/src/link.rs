//! Per-directed-pair link quality and loss model.
//!
//! Section 6 of the paper describes the simulated radio environment: among
//! pairs that can hear each other, "loss rates vary from twenty-five percent
//! to about ninety percent" and "connections are slightly asymmetric, as in
//! most real wireless networks". The [`LinkModel`] reproduces that: every
//! directed link within radio range gets a delivery probability that decays
//! with distance, plus per-direction random noise.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{LinkSpec, NodeId};
use serde::{Deserialize, Serialize};

/// Quality of one directed link.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Probability that a single transmission on this link is received.
    pub delivery_prob: f64,
}

impl LinkQuality {
    /// A link that never delivers anything (out of range).
    pub const DEAD: LinkQuality = LinkQuality { delivery_prob: 0.0 };

    /// Loss probability (complement of delivery).
    pub fn loss_prob(&self) -> f64 {
        1.0 - self.delivery_prob
    }

    /// Expected number of transmissions needed for one successful delivery
    /// (the ETX metric used by Woo et al. and De Couto et al.). Dead links
    /// report `f64::INFINITY`.
    pub fn etx(&self) -> f64 {
        if self.delivery_prob <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.delivery_prob
        }
    }

    /// Returns `true` if the link can deliver packets at all.
    pub fn is_usable(&self) -> bool {
        self.delivery_prob > 0.0
    }
}

/// Parameters controlling how link quality is derived from the topology.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkModelParams {
    /// Delivery probability of a link at (near-)zero distance.
    pub max_delivery: f64,
    /// Delivery probability of a link right at the edge of radio range.
    pub min_delivery: f64,
    /// Standard deviation of the per-direction noise added to delivery
    /// probability (produces asymmetry).
    pub asymmetry_noise: f64,
    /// Shape of the decay between the two endpoints: delivery falls with
    /// `(d / range) ^ distance_exponent`; `1.0` is the calibrated linear
    /// decay.
    pub distance_exponent: f64,
}

impl LinkModelParams {
    /// Translates the serializable [`LinkSpec`] calibration knobs into model
    /// parameters. This is the only place the mapping lives, so the
    /// spec-driven path and [`LinkModelParams::default`] cannot drift apart.
    pub fn from_spec(spec: &LinkSpec) -> Self {
        LinkModelParams {
            max_delivery: spec.max_delivery(),
            min_delivery: spec.edge_delivery,
            asymmetry_noise: spec.asymmetry_noise,
            distance_exponent: spec.distance_exponent,
        }
    }
}

impl Default for LinkModelParams {
    fn default() -> Self {
        // The *legacy* knobs, deliberately: `LinkModel::from_topology` (and
        // these params) replay the historical hardcoded model, which is what
        // the pre-calibration byte-identity proofs compare against. The
        // shipped calibrated model arrives through the `LinkSpec` path
        // (`LinkModel::from_spec` with `LinkSpec::default()`).
        Self::from_spec(&LinkSpec::legacy())
    }
}

/// One usable outgoing link in the precomputed neighbor table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The node that can hear the transmitter.
    pub node: NodeId,
    /// Delivery probability of the directed link, pre-clamped to `[0, 1]`
    /// so the engine's loss sampling needs no per-draw clamp.
    pub delivery_prob: f64,
}

/// Delivery probabilities for every directed pair of nodes.
///
/// Alongside the dense matrix (the source of truth for [`LinkModel::link`]
/// and serialization), the model maintains a CSR-style neighbor table built
/// once at construction: per transmitter, the usable outgoing links in
/// ascending destination order. The engine's transmit loop iterates that
/// table instead of scanning a dense row and allocating a listener `Vec` per
/// attempt — same order, same probabilities, zero allocation.
#[derive(Clone, Debug)]
pub struct LinkModel {
    n: usize,
    /// Row-major `n × n` matrix of delivery probabilities. Entry `(i, j)` is
    /// the probability that a packet transmitted by `i` is received by `j`.
    delivery: Vec<f64>,
    params: LinkModelParams,
    /// CSR row offsets into `nbr_entries`; `nbr_offsets[i]..nbr_offsets[i+1]`
    /// is transmitter `i`'s slice. Length `n + 1`.
    nbr_offsets: Vec<u32>,
    /// Usable outgoing links, grouped by transmitter, destinations ascending
    /// — exactly the order the old dense-row scan visited them.
    nbr_entries: Vec<Neighbor>,
}

impl LinkModel {
    /// Derives a link model from a topology with the default parameters.
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        Self::with_params(topo, seed, LinkModelParams::default())
    }

    /// Derives a link model from a topology with explicit parameters.
    pub fn with_params(topo: &Topology, seed: u64, params: LinkModelParams) -> Self {
        let n = topo.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11d4_11d4);
        let mut delivery = vec![0.0; n * n];
        for i in 0..n {
            let a = NodeId(i as u16);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let b = NodeId(j as u16);
                if !topo.in_range(a, b) {
                    continue;
                }
                let d = topo.distance(a, b).unwrap_or(f64::INFINITY);
                let frac = (d / topo.radio_range()).clamp(0.0, 1.0);
                // Decay from max_delivery at distance 0 to min_delivery at the
                // edge of range — linear when the exponent is 1 (the exact
                // comparison keeps the default bit-identical to the historical
                // model), shaped by `frac^k` otherwise — plus per-direction
                // Gaussian-ish noise (two uniform draws averaged keeps the
                // dependency set small).
                let shaped = if params.distance_exponent == 1.0 {
                    frac
                } else {
                    frac.powf(params.distance_exponent)
                };
                let base =
                    params.max_delivery - shaped * (params.max_delivery - params.min_delivery);
                let noise: f64 = (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0)) / 2.0
                    * params.asymmetry_noise
                    * 2.0;
                delivery[i * n + j] =
                    (base + noise).clamp(params.min_delivery * 0.5, params.max_delivery);
            }
        }
        LinkModel::from_parts(n, delivery, params)
    }

    /// A loss-free link model over a topology: every in-range directed link
    /// delivers with probability 1. Useful for tests isolating protocol
    /// logic from loss.
    pub fn perfect(topo: &Topology) -> Self {
        let n = topo.len();
        let mut delivery = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j && topo.in_range(NodeId(i as u16), NodeId(j as u16)) {
                    delivery[i * n + j] = 1.0;
                }
            }
        }
        LinkModel::from_parts(
            n,
            delivery,
            LinkModelParams {
                max_delivery: 1.0,
                min_delivery: 1.0,
                asymmetry_noise: 0.0,
                distance_exponent: 1.0,
            },
        )
    }

    /// Assembles a model from its dense matrix, building the CSR neighbor
    /// table. Every constructor (and deserialization) funnels through here so
    /// the table can never be stale.
    fn from_parts(n: usize, delivery: Vec<f64>, params: LinkModelParams) -> Self {
        debug_assert_eq!(delivery.len(), n * n);
        let mut model = LinkModel {
            n,
            delivery,
            params,
            nbr_offsets: Vec::new(),
            nbr_entries: Vec::new(),
        };
        model.rebuild_neighbor_table();
        model
    }

    /// (Re)derives the CSR neighbor table from the dense matrix.
    fn rebuild_neighbor_table(&mut self) {
        let n = self.n;
        self.nbr_offsets.clear();
        self.nbr_offsets.reserve(n + 1);
        self.nbr_entries.clear();
        self.nbr_offsets.push(0);
        for i in 0..n {
            for j in 0..n {
                let p = self.delivery[i * n + j];
                if i != j && p > 0.0 {
                    self.nbr_entries.push(Neighbor {
                        node: NodeId(j as u16),
                        delivery_prob: p.clamp(0.0, 1.0),
                    });
                }
            }
            self.nbr_offsets.push(self.nbr_entries.len() as u32);
        }
    }

    /// Builds the loss model described by a [`LinkSpec`]: the family it names
    /// with its calibration knobs applied. This is the single construction
    /// path the `LinkGen` factories use.
    pub fn from_spec(
        spec: &LinkSpec,
        topo: &Topology,
        seed: u64,
    ) -> Result<Self, scoop_types::ScoopError> {
        spec.validate()?;
        Ok(match spec.family {
            scoop_types::LinkFamily::DistanceDecay => {
                Self::with_params(topo, seed, LinkModelParams::from_spec(spec))
            }
            scoop_types::LinkFamily::Perfect => Self::perfect(topo),
        })
    }

    /// Number of nodes covered by the model.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false for a constructed model.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> LinkModelParams {
        self.params
    }

    /// Quality of the directed link `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkQuality {
        if from.index() >= self.n || to.index() >= self.n || from == to {
            return LinkQuality::DEAD;
        }
        LinkQuality {
            delivery_prob: self.delivery[from.index() * self.n + to.index()],
        }
    }

    /// Overrides the delivery probability of one directed link (used by tests
    /// and by failure-injection experiments).
    pub fn set_link(&mut self, from: NodeId, to: NodeId, delivery_prob: f64) {
        if from.index() < self.n && to.index() < self.n && from != to {
            self.delivery[from.index() * self.n + to.index()] = delivery_prob.clamp(0.0, 1.0);
            // Overrides happen during scenario setup, never inside the event
            // loop; a full rebuild keeps the table trivially consistent.
            self.rebuild_neighbor_table();
        }
    }

    /// The usable outgoing links of `node` (destinations ascending), with
    /// their pre-clamped delivery probabilities — the engine's allocation-free
    /// replacement for [`LinkModel::listeners`] + per-listener [`link`] calls.
    ///
    /// [`link`]: LinkModel::link
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[Neighbor] {
        let i = node.index();
        if i >= self.n {
            return &[];
        }
        let lo = self.nbr_offsets[i] as usize;
        let hi = self.nbr_offsets[i + 1] as usize;
        &self.nbr_entries[lo..hi]
    }

    /// Nodes with a usable link *from* `node` (i.e. nodes that can hear it).
    pub fn listeners(&self, node: NodeId) -> Vec<NodeId> {
        self.neighbors(node).iter().map(|nb| nb.node).collect()
    }

    /// Mean loss probability over all usable directed links.
    pub fn mean_loss(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in 0..self.n {
                let p = self.delivery[i * self.n + j];
                if i != j && p > 0.0 {
                    total += 1.0 - p;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Total number of usable directed links (size of the neighbor table).
    pub fn usable_link_count(&self) -> usize {
        self.nbr_entries.len()
    }

    /// Fraction of usable link pairs whose two directions differ by more than
    /// `threshold` in delivery probability — a measure of asymmetry.
    pub fn asymmetric_fraction(&self, threshold: f64) -> f64 {
        let mut asym = 0usize;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let a = self.delivery[i * self.n + j];
                let b = self.delivery[j * self.n + i];
                if a > 0.0 || b > 0.0 {
                    count += 1;
                    if (a - b).abs() > threshold {
                        asym += 1;
                    }
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            asym as f64 / count as f64
        }
    }
}

// Hand-written (de)serialization: the wire schema is exactly the historical
// derived one — `{n, delivery, params}` — because the CSR neighbor table is
// derived state. Serializing it would bloat files with redundant data, and
// deserializing it blindly could leave the table inconsistent with the
// matrix; instead deserialization funnels through `from_parts`, which
// rebuilds the table.
impl Serialize for LinkModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_string(), Serialize::to_value(&self.n)),
            ("delivery".to_string(), Serialize::to_value(&self.delivery)),
            ("params".to_string(), Serialize::to_value(&self.params)),
        ])
    }
}

impl Deserialize for LinkModel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let null = serde::Value::Null;
        let n: usize = Deserialize::from_value(v.get("n").unwrap_or(&null))?;
        let delivery: Vec<f64> = Deserialize::from_value(v.get("delivery").unwrap_or(&null))?;
        let params: LinkModelParams = Deserialize::from_value(v.get("params").unwrap_or(&null))?;
        if delivery.len() != n * n {
            return Err(serde::Error::custom(format!(
                "LinkModel: delivery matrix has {} entries for n = {n}",
                delivery.len()
            )));
        }
        Ok(LinkModel::from_parts(n, delivery, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn testbed() -> (Topology, LinkModel) {
        let topo = Topology::office_floor(62, 11).unwrap();
        let links = LinkModel::from_topology(&topo, 11);
        (topo, links)
    }

    #[test]
    fn loss_rates_match_paper_band() {
        let (topo, links) = testbed();
        let mut losses = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && topo.in_range(a, b) {
                    losses.push(links.link(a, b).loss_prob());
                }
            }
        }
        assert!(!losses.is_empty());
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = losses.iter().cloned().fold(0.0, f64::max);
        // Paper: loss rates vary from ~25 % to ~90 % among connected pairs.
        assert!(min < 0.35, "best links should lose < 35 %, got {min}");
        assert!(max > 0.70, "worst links should lose > 70 %, got {max}");
        assert!(max <= 0.97, "even the worst link should sometimes deliver");
    }

    #[test]
    fn out_of_range_links_are_dead() {
        let (topo, links) = testbed();
        let mut checked = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && !topo.in_range(a, b) {
                    assert!(!links.link(a, b).is_usable());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn links_are_asymmetric() {
        let (_, links) = testbed();
        assert!(
            links.asymmetric_fraction(0.02) > 0.3,
            "a substantial fraction of links should differ between directions"
        );
    }

    #[test]
    fn self_links_and_unknown_nodes_are_dead() {
        let (_, links) = testbed();
        assert!(!links.link(NodeId(4), NodeId(4)).is_usable());
        assert!(!links.link(NodeId(4), NodeId(120)).is_usable());
    }

    #[test]
    fn etx_is_inverse_delivery() {
        let q = LinkQuality { delivery_prob: 0.5 };
        assert!((q.etx() - 2.0).abs() < 1e-9);
        assert!(LinkQuality::DEAD.etx().is_infinite());
    }

    #[test]
    fn perfect_model_has_no_loss() {
        let topo = Topology::grid(4, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        assert_eq!(links.mean_loss(), 0.0);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && topo.in_range(a, b) {
                    assert_eq!(links.link(a, b).delivery_prob, 1.0);
                }
            }
        }
    }

    #[test]
    fn set_link_overrides_and_clamps() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        links.set_link(NodeId(0), NodeId(1), 0.25);
        assert!((links.link(NodeId(0), NodeId(1)).delivery_prob - 0.25).abs() < 1e-12);
        links.set_link(NodeId(0), NodeId(1), 7.0);
        assert_eq!(links.link(NodeId(0), NodeId(1)).delivery_prob, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::office_floor(20, 5).unwrap();
        let a = LinkModel::from_topology(&topo, 9);
        let b = LinkModel::from_topology(&topo, 9);
        let c = LinkModel::from_topology(&topo, 10);
        assert_eq!(
            a.link(NodeId(1), NodeId(2)).delivery_prob,
            b.link(NodeId(1), NodeId(2)).delivery_prob
        );
        // A different seed should perturb at least some link.
        let differs = topo.nodes().any(|x| {
            topo.nodes()
                .any(|y| a.link(x, y).delivery_prob != c.link(x, y).delivery_prob)
        });
        assert!(differs);
    }

    /// The old dense-row scan, reimplemented verbatim as the oracle for the
    /// CSR table: ascending destinations, usable links only.
    fn dense_scan(links: &LinkModel, from: NodeId) -> Vec<Neighbor> {
        (0..links.len())
            .map(|i| NodeId(i as u16))
            .filter(|&m| m != from && links.link(from, m).is_usable())
            .map(|m| Neighbor {
                node: m,
                delivery_prob: links.link(from, m).delivery_prob.clamp(0.0, 1.0),
            })
            .collect()
    }

    #[test]
    fn csr_table_matches_dense_scan_order_and_probs() {
        let (topo, links) = testbed();
        for a in topo.nodes() {
            assert_eq!(links.neighbors(a), dense_scan(&links, a).as_slice(), "{a}");
        }
        let total: usize = topo.nodes().map(|a| links.neighbors(a).len()).sum();
        assert_eq!(total, links.usable_link_count());
        // Out-of-model ids have no neighbors rather than panicking.
        assert!(links.neighbors(NodeId(5000)).is_empty());
    }

    #[test]
    fn csr_probs_are_pre_clamped() {
        let (topo, links) = testbed();
        for a in topo.nodes() {
            for nb in links.neighbors(a) {
                assert!((0.0..=1.0).contains(&nb.delivery_prob));
                assert!(nb.delivery_prob > 0.0, "dead links must not be listed");
            }
        }
    }

    #[test]
    fn set_link_rebuilds_the_csr_table() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        let before = links.neighbors(NodeId(0)).len();
        links.set_link(NodeId(0), NodeId(1), 0.0); // kill a link
        assert_eq!(links.neighbors(NodeId(0)).len(), before - 1);
        assert!(links
            .neighbors(NodeId(0))
            .iter()
            .all(|nb| nb.node != NodeId(1)));
        links.set_link(NodeId(0), NodeId(1), 0.4); // revive it
        assert_eq!(links.neighbors(NodeId(0)).len(), before);
        assert_eq!(links.neighbors(NodeId(0)), dense_scan(&links, NodeId(0)));
    }

    #[test]
    fn serialization_round_trips_and_rebuilds_the_table() {
        let (_, links) = testbed();
        let json = serde_json::to_string(&links).unwrap();
        // The wire schema stays the historical `{n, delivery, params}`: the
        // derived CSR table must not leak into files.
        assert!(json.starts_with("{\"n\":"));
        assert!(!json.contains("nbr_"));
        let back: LinkModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), links.len());
        for a in 0..links.len() {
            let a = NodeId(a as u16);
            assert_eq!(back.neighbors(a), links.neighbors(a), "{a}");
        }
        // A corrupt matrix length is rejected instead of building a bogus table.
        let bad = json.replacen("\"n\":63", "\"n\":62", 1);
        assert!(serde_json::from_str::<LinkModel>(&bad).is_err());
    }

    #[test]
    fn listeners_match_topology_neighbors() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        for n in topo.nodes() {
            let mut a = links.listeners(n);
            let mut b: Vec<NodeId> = topo.neighbors(n).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
