//! Per-directed-pair link quality and loss model.
//!
//! Section 6 of the paper describes the simulated radio environment: among
//! pairs that can hear each other, "loss rates vary from twenty-five percent
//! to about ninety percent" and "connections are slightly asymmetric, as in
//! most real wireless networks". The [`LinkModel`] reproduces that: every
//! directed link within radio range gets a delivery probability that decays
//! with distance, plus per-direction random noise.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{LinkSpec, NodeId};
use serde::{Deserialize, Serialize};

/// Quality of one directed link.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Probability that a single transmission on this link is received.
    pub delivery_prob: f64,
}

impl LinkQuality {
    /// A link that never delivers anything (out of range).
    pub const DEAD: LinkQuality = LinkQuality { delivery_prob: 0.0 };

    /// Loss probability (complement of delivery).
    pub fn loss_prob(&self) -> f64 {
        1.0 - self.delivery_prob
    }

    /// Expected number of transmissions needed for one successful delivery
    /// (the ETX metric used by Woo et al. and De Couto et al.). Dead links
    /// report `f64::INFINITY`.
    pub fn etx(&self) -> f64 {
        if self.delivery_prob <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.delivery_prob
        }
    }

    /// Returns `true` if the link can deliver packets at all.
    pub fn is_usable(&self) -> bool {
        self.delivery_prob > 0.0
    }
}

/// Parameters controlling how link quality is derived from the topology.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkModelParams {
    /// Delivery probability of a link at (near-)zero distance.
    pub max_delivery: f64,
    /// Delivery probability of a link right at the edge of radio range.
    pub min_delivery: f64,
    /// Standard deviation of the per-direction noise added to delivery
    /// probability (produces asymmetry).
    pub asymmetry_noise: f64,
    /// Shape of the decay between the two endpoints: delivery falls with
    /// `(d / range) ^ distance_exponent`; `1.0` is the calibrated linear
    /// decay.
    pub distance_exponent: f64,
}

impl LinkModelParams {
    /// Translates the serializable [`LinkSpec`] calibration knobs into model
    /// parameters. This is the only place the mapping lives, so the
    /// spec-driven path and [`LinkModelParams::default`] cannot drift apart.
    pub fn from_spec(spec: &LinkSpec) -> Self {
        LinkModelParams {
            max_delivery: spec.max_delivery(),
            min_delivery: spec.edge_delivery,
            asymmetry_noise: spec.asymmetry_noise,
            distance_exponent: spec.distance_exponent,
        }
    }
}

impl Default for LinkModelParams {
    fn default() -> Self {
        // The *legacy* knobs, deliberately: `LinkModel::from_topology` (and
        // these params) replay the historical hardcoded model, which is what
        // the pre-calibration byte-identity proofs compare against. The
        // shipped calibrated model arrives through the `LinkSpec` path
        // (`LinkModel::from_spec` with `LinkSpec::default()`).
        Self::from_spec(&LinkSpec::legacy())
    }
}

/// One usable outgoing link in the precomputed neighbor table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The node that can hear the transmitter.
    pub node: NodeId,
    /// Delivery probability of the directed link, pre-clamped to `[0, 1]`
    /// so the engine's loss sampling needs no per-draw clamp.
    pub delivery_prob: f64,
}

/// Delivery probabilities for the usable directed links of a deployment.
///
/// The model stores only usable links (delivery probability > 0) in a
/// CSR-style neighbor table: per transmitter, the outgoing links in ascending
/// destination order. That table is the *single* source of truth — there is
/// no dense matrix. A dense `n × n` f64 matrix was 8.6 GB at 32,768 nodes;
/// the CSR table is O(usable links), a few MB for geometric topologies whose
/// per-node degree is bounded by radio range. [`LinkModel::link`] lookups
/// binary-search the transmitter's row; the engine's transmit loop iterates
/// the row slice directly — same listeners, same ascending order, same
/// pre-clamped probabilities as the historical dense-row scan.
#[derive(Clone, Debug)]
pub struct LinkModel {
    n: usize,
    params: LinkModelParams,
    /// CSR row offsets into `nbr_entries`; `nbr_offsets[i]..nbr_offsets[i+1]`
    /// is transmitter `i`'s slice. Length `n + 1`.
    nbr_offsets: Vec<u32>,
    /// Usable outgoing links, grouped by transmitter, destinations ascending
    /// — exactly the order the old dense-row scan visited them.
    nbr_entries: Vec<Neighbor>,
}

impl LinkModel {
    /// Derives a link model from a topology with the default parameters.
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        Self::with_params(topo, seed, LinkModelParams::default())
    }

    /// Derives a link model from a topology with explicit parameters.
    ///
    /// The CSR table is built directly from the topology's neighbor lists.
    /// Those lists are exactly the in-range destinations in ascending order —
    /// the same pairs, in the same order, the historical dense `n × n` loop
    /// visited — so the two noise draws per directed in-range pair consume
    /// the seeded RNG stream identically and every probability is
    /// bit-identical to the dense-matrix era.
    pub fn with_params(topo: &Topology, seed: u64, params: LinkModelParams) -> Self {
        let n = topo.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11d4_11d4);
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbr_entries = Vec::new();
        nbr_offsets.push(0u32);
        for i in 0..n {
            let a = NodeId(i as u16);
            for &b in topo.neighbors(a) {
                let d = topo.distance(a, b).unwrap_or(f64::INFINITY);
                let frac = (d / topo.radio_range()).clamp(0.0, 1.0);
                // Decay from max_delivery at distance 0 to min_delivery at the
                // edge of range — linear when the exponent is 1 (the exact
                // comparison keeps the default bit-identical to the historical
                // model), shaped by `frac^k` otherwise — plus per-direction
                // Gaussian-ish noise (two uniform draws averaged keeps the
                // dependency set small).
                let shaped = if params.distance_exponent == 1.0 {
                    frac
                } else {
                    frac.powf(params.distance_exponent)
                };
                let base =
                    params.max_delivery - shaped * (params.max_delivery - params.min_delivery);
                let noise: f64 = (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0)) / 2.0
                    * params.asymmetry_noise
                    * 2.0;
                let p = (base + noise).clamp(params.min_delivery * 0.5, params.max_delivery);
                if p > 0.0 {
                    nbr_entries.push(Neighbor {
                        node: b,
                        delivery_prob: p.clamp(0.0, 1.0),
                    });
                }
            }
            nbr_offsets.push(nbr_entries.len() as u32);
        }
        LinkModel {
            n,
            params,
            nbr_offsets,
            nbr_entries,
        }
    }

    /// A loss-free link model over a topology: every in-range directed link
    /// delivers with probability 1. Useful for tests isolating protocol
    /// logic from loss.
    pub fn perfect(topo: &Topology) -> Self {
        let n = topo.len();
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbr_entries = Vec::new();
        nbr_offsets.push(0u32);
        for i in 0..n {
            for &b in topo.neighbors(NodeId(i as u16)) {
                nbr_entries.push(Neighbor {
                    node: b,
                    delivery_prob: 1.0,
                });
            }
            nbr_offsets.push(nbr_entries.len() as u32);
        }
        LinkModel {
            n,
            params: LinkModelParams {
                max_delivery: 1.0,
                min_delivery: 1.0,
                asymmetry_noise: 0.0,
                distance_exponent: 1.0,
            },
            nbr_offsets,
            nbr_entries,
        }
    }

    /// Assembles a model from a dense row-major `n × n` delivery matrix —
    /// the v1 wire schema. Usable entries (`p > 0`, off-diagonal) become CSR
    /// entries in the same ascending-destination order the dense scan used.
    fn from_dense(n: usize, delivery: Vec<f64>, params: LinkModelParams) -> Self {
        debug_assert_eq!(delivery.len(), n * n);
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbr_entries = Vec::new();
        nbr_offsets.push(0u32);
        for i in 0..n {
            for j in 0..n {
                let p = delivery[i * n + j];
                if i != j && p > 0.0 {
                    nbr_entries.push(Neighbor {
                        node: NodeId(j as u16),
                        delivery_prob: p.clamp(0.0, 1.0),
                    });
                }
            }
            nbr_offsets.push(nbr_entries.len() as u32);
        }
        LinkModel {
            n,
            params,
            nbr_offsets,
            nbr_entries,
        }
    }

    /// Builds the loss model described by a [`LinkSpec`]: the family it names
    /// with its calibration knobs applied. This is the single construction
    /// path the `LinkGen` factories use.
    pub fn from_spec(
        spec: &LinkSpec,
        topo: &Topology,
        seed: u64,
    ) -> Result<Self, scoop_types::ScoopError> {
        spec.validate()?;
        Ok(match spec.family {
            scoop_types::LinkFamily::DistanceDecay => {
                Self::with_params(topo, seed, LinkModelParams::from_spec(spec))
            }
            scoop_types::LinkFamily::Perfect => Self::perfect(topo),
        })
    }

    /// Number of nodes covered by the model.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false for a constructed model.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> LinkModelParams {
        self.params
    }

    /// The `nbr_entries` range holding transmitter `i`'s row.
    #[inline]
    fn row_bounds(&self, i: usize) -> (usize, usize) {
        (
            self.nbr_offsets[i] as usize,
            self.nbr_offsets[i + 1] as usize,
        )
    }

    /// Position of the `from → to` entry: `Ok(index into nbr_entries)` if the
    /// link is stored, `Err(insertion index)` otherwise. Rows are sorted by
    /// ascending destination, so this is a binary search of `from`'s slice.
    fn entry_position(&self, from: usize, to: NodeId) -> Result<usize, usize> {
        let (lo, hi) = self.row_bounds(from);
        self.nbr_entries[lo..hi]
            .binary_search_by(|e| e.node.cmp(&to))
            .map(|p| lo + p)
            .map_err(|p| lo + p)
    }

    /// Quality of the directed link `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkQuality {
        if from.index() >= self.n || to.index() >= self.n || from == to {
            return LinkQuality::DEAD;
        }
        match self.entry_position(from.index(), to) {
            Ok(i) => LinkQuality {
                delivery_prob: self.nbr_entries[i].delivery_prob,
            },
            Err(_) => LinkQuality::DEAD,
        }
    }

    /// Overrides the delivery probability of one directed link (used by tests
    /// and by failure-injection experiments). Setting a zero probability
    /// removes the entry; setting a positive probability on a previously
    /// unusable pair inserts one — even between nodes out of radio range,
    /// exactly like writes into the old dense matrix.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, delivery_prob: f64) {
        if from.index() >= self.n || to.index() >= self.n || from == to {
            return;
        }
        let p = delivery_prob.clamp(0.0, 1.0);
        // Overrides happen during scenario setup, never inside the event
        // loop; the O(links) offset shift on insert/remove is irrelevant.
        match self.entry_position(from.index(), to) {
            Ok(i) if p > 0.0 => self.nbr_entries[i].delivery_prob = p,
            Ok(i) => {
                self.nbr_entries.remove(i);
                for off in &mut self.nbr_offsets[from.index() + 1..] {
                    *off -= 1;
                }
            }
            Err(i) if p > 0.0 => {
                self.nbr_entries.insert(
                    i,
                    Neighbor {
                        node: to,
                        delivery_prob: p,
                    },
                );
                for off in &mut self.nbr_offsets[from.index() + 1..] {
                    *off += 1;
                }
            }
            Err(_) => {}
        }
    }

    /// The usable outgoing links of `node` (destinations ascending), with
    /// their pre-clamped delivery probabilities — the engine's allocation-free
    /// replacement for [`LinkModel::listeners`] + per-listener [`link`] calls.
    ///
    /// [`link`]: LinkModel::link
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[Neighbor] {
        let i = node.index();
        if i >= self.n {
            return &[];
        }
        let lo = self.nbr_offsets[i] as usize;
        let hi = self.nbr_offsets[i + 1] as usize;
        &self.nbr_entries[lo..hi]
    }

    /// Nodes with a usable link *from* `node` (i.e. nodes that can hear it).
    pub fn listeners(&self, node: NodeId) -> Vec<NodeId> {
        self.neighbors(node).iter().map(|nb| nb.node).collect()
    }

    /// Mean loss probability over all usable directed links.
    pub fn mean_loss(&self) -> f64 {
        if self.nbr_entries.is_empty() {
            return 0.0;
        }
        let total: f64 = self.nbr_entries.iter().map(|e| 1.0 - e.delivery_prob).sum();
        total / self.nbr_entries.len() as f64
    }

    /// Total number of usable directed links (size of the neighbor table).
    pub fn usable_link_count(&self) -> usize {
        self.nbr_entries.len()
    }

    /// Fraction of usable link pairs whose two directions differ by more than
    /// `threshold` in delivery probability — a measure of asymmetry.
    ///
    /// Enumerates unordered pairs `{i, j}` with at least one usable direction
    /// by walking the CSR entries: each `i → j` entry with `j > i` covers the
    /// pairs whose forward direction is usable; each `j → i` entry (`i < j`)
    /// whose reverse is *not* stored covers the rest, so every pair is
    /// counted exactly once.
    pub fn asymmetric_fraction(&self, threshold: f64) -> f64 {
        let mut asym = 0usize;
        let mut count = 0usize;
        for i in 0..self.n {
            let (lo, hi) = self.row_bounds(i);
            for e in &self.nbr_entries[lo..hi] {
                let j = e.node.index();
                let reverse = self.link(e.node, NodeId(i as u16)).delivery_prob;
                if j > i {
                    count += 1;
                    if (e.delivery_prob - reverse).abs() > threshold {
                        asym += 1;
                    }
                } else if reverse == 0.0 {
                    // Only this (higher → lower) direction exists; the pair
                    // was not seen when scanning row `j`.
                    count += 1;
                    if e.delivery_prob > threshold {
                        asym += 1;
                    }
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            asym as f64 / count as f64
        }
    }
}

// Hand-written (de)serialization. The v2 wire schema is sparse — `{n,
// params, offsets, targets, probs}`, the CSR split into parallel arrays — so
// file size scales with usable links, not n². Deserialization still accepts
// the historical dense v1 schema `{n, delivery, params}` (detected by its
// `delivery` key) and converts it through `from_dense`, so every committed
// artifact and golden file written before the sparse rewrite keeps loading.
impl Serialize for LinkModel {
    fn to_value(&self) -> serde::Value {
        let targets: Vec<u16> = self.nbr_entries.iter().map(|e| e.node.0).collect();
        let probs: Vec<f64> = self.nbr_entries.iter().map(|e| e.delivery_prob).collect();
        serde::Value::Object(vec![
            ("n".to_string(), Serialize::to_value(&self.n)),
            ("params".to_string(), Serialize::to_value(&self.params)),
            (
                "offsets".to_string(),
                Serialize::to_value(&self.nbr_offsets),
            ),
            ("targets".to_string(), Serialize::to_value(&targets)),
            ("probs".to_string(), Serialize::to_value(&probs)),
        ])
    }
}

impl Deserialize for LinkModel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let null = serde::Value::Null;
        let n: usize = Deserialize::from_value(v.get("n").unwrap_or(&null))?;
        let params: LinkModelParams = Deserialize::from_value(v.get("params").unwrap_or(&null))?;
        if let Some(dense) = v.get("delivery") {
            // v1 compat: the dense row-major matrix.
            let delivery: Vec<f64> = Deserialize::from_value(dense)?;
            if delivery.len() != n * n {
                return Err(serde::Error::custom(format!(
                    "LinkModel: delivery matrix has {} entries for n = {n}",
                    delivery.len()
                )));
            }
            return Ok(LinkModel::from_dense(n, delivery, params));
        }
        let nbr_offsets: Vec<u32> = Deserialize::from_value(v.get("offsets").unwrap_or(&null))?;
        let targets: Vec<u16> = Deserialize::from_value(v.get("targets").unwrap_or(&null))?;
        let probs: Vec<f64> = Deserialize::from_value(v.get("probs").unwrap_or(&null))?;
        if nbr_offsets.len() != n + 1 || nbr_offsets.first() != Some(&0) {
            return Err(serde::Error::custom(format!(
                "LinkModel: {} offsets for n = {n}",
                nbr_offsets.len()
            )));
        }
        if targets.len() != probs.len() || *nbr_offsets.last().unwrap() as usize != targets.len() {
            return Err(serde::Error::custom(
                "LinkModel: offsets/targets/probs disagree on link count".to_string(),
            ));
        }
        let mut nbr_entries = Vec::with_capacity(targets.len());
        for i in 0..n {
            let lo = nbr_offsets[i] as usize;
            let hi = nbr_offsets[i + 1] as usize;
            if lo > hi || hi > targets.len() {
                return Err(serde::Error::custom(format!(
                    "LinkModel: row {i} offsets are not monotonic"
                )));
            }
            let mut prev: Option<u16> = None;
            for k in lo..hi {
                let t = targets[k];
                let p = probs[k];
                if (t as usize) >= n || t as usize == i {
                    return Err(serde::Error::custom(format!(
                        "LinkModel: row {i} targets node {t} outside the model"
                    )));
                }
                if prev.is_some_and(|pv| pv >= t) {
                    return Err(serde::Error::custom(format!(
                        "LinkModel: row {i} destinations are not ascending"
                    )));
                }
                if !(p > 0.0 && p <= 1.0) {
                    return Err(serde::Error::custom(format!(
                        "LinkModel: row {i} stores unusable probability {p}"
                    )));
                }
                prev = Some(t);
                nbr_entries.push(Neighbor {
                    node: NodeId(t),
                    delivery_prob: p,
                });
            }
        }
        Ok(LinkModel {
            n,
            params,
            nbr_offsets,
            nbr_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn testbed() -> (Topology, LinkModel) {
        let topo = Topology::office_floor(62, 11).unwrap();
        let links = LinkModel::from_topology(&topo, 11);
        (topo, links)
    }

    #[test]
    fn loss_rates_match_paper_band() {
        let (topo, links) = testbed();
        let mut losses = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && topo.in_range(a, b) {
                    losses.push(links.link(a, b).loss_prob());
                }
            }
        }
        assert!(!losses.is_empty());
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = losses.iter().cloned().fold(0.0, f64::max);
        // Paper: loss rates vary from ~25 % to ~90 % among connected pairs.
        assert!(min < 0.35, "best links should lose < 35 %, got {min}");
        assert!(max > 0.70, "worst links should lose > 70 %, got {max}");
        assert!(max <= 0.97, "even the worst link should sometimes deliver");
    }

    #[test]
    fn out_of_range_links_are_dead() {
        let (topo, links) = testbed();
        let mut checked = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && !topo.in_range(a, b) {
                    assert!(!links.link(a, b).is_usable());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn links_are_asymmetric() {
        let (_, links) = testbed();
        assert!(
            links.asymmetric_fraction(0.02) > 0.3,
            "a substantial fraction of links should differ between directions"
        );
    }

    #[test]
    fn self_links_and_unknown_nodes_are_dead() {
        let (_, links) = testbed();
        assert!(!links.link(NodeId(4), NodeId(4)).is_usable());
        assert!(!links.link(NodeId(4), NodeId(120)).is_usable());
    }

    #[test]
    fn etx_is_inverse_delivery() {
        let q = LinkQuality { delivery_prob: 0.5 };
        assert!((q.etx() - 2.0).abs() < 1e-9);
        assert!(LinkQuality::DEAD.etx().is_infinite());
    }

    #[test]
    fn perfect_model_has_no_loss() {
        let topo = Topology::grid(4, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        assert_eq!(links.mean_loss(), 0.0);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && topo.in_range(a, b) {
                    assert_eq!(links.link(a, b).delivery_prob, 1.0);
                }
            }
        }
    }

    #[test]
    fn set_link_overrides_and_clamps() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        links.set_link(NodeId(0), NodeId(1), 0.25);
        assert!((links.link(NodeId(0), NodeId(1)).delivery_prob - 0.25).abs() < 1e-12);
        links.set_link(NodeId(0), NodeId(1), 7.0);
        assert_eq!(links.link(NodeId(0), NodeId(1)).delivery_prob, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::office_floor(20, 5).unwrap();
        let a = LinkModel::from_topology(&topo, 9);
        let b = LinkModel::from_topology(&topo, 9);
        let c = LinkModel::from_topology(&topo, 10);
        assert_eq!(
            a.link(NodeId(1), NodeId(2)).delivery_prob,
            b.link(NodeId(1), NodeId(2)).delivery_prob
        );
        // A different seed should perturb at least some link.
        let differs = topo.nodes().any(|x| {
            topo.nodes()
                .any(|y| a.link(x, y).delivery_prob != c.link(x, y).delivery_prob)
        });
        assert!(differs);
    }

    /// The old dense-row scan, reimplemented verbatim as the oracle for the
    /// CSR table: ascending destinations, usable links only.
    fn dense_scan(links: &LinkModel, from: NodeId) -> Vec<Neighbor> {
        (0..links.len())
            .map(|i| NodeId(i as u16))
            .filter(|&m| m != from && links.link(from, m).is_usable())
            .map(|m| Neighbor {
                node: m,
                delivery_prob: links.link(from, m).delivery_prob.clamp(0.0, 1.0),
            })
            .collect()
    }

    #[test]
    fn csr_table_matches_dense_scan_order_and_probs() {
        let (topo, links) = testbed();
        for a in topo.nodes() {
            assert_eq!(links.neighbors(a), dense_scan(&links, a).as_slice(), "{a}");
        }
        let total: usize = topo.nodes().map(|a| links.neighbors(a).len()).sum();
        assert_eq!(total, links.usable_link_count());
        // Out-of-model ids have no neighbors rather than panicking.
        assert!(links.neighbors(NodeId(5000)).is_empty());
    }

    #[test]
    fn csr_probs_are_pre_clamped() {
        let (topo, links) = testbed();
        for a in topo.nodes() {
            for nb in links.neighbors(a) {
                assert!((0.0..=1.0).contains(&nb.delivery_prob));
                assert!(nb.delivery_prob > 0.0, "dead links must not be listed");
            }
        }
    }

    #[test]
    fn set_link_rebuilds_the_csr_table() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        let before = links.neighbors(NodeId(0)).len();
        links.set_link(NodeId(0), NodeId(1), 0.0); // kill a link
        assert_eq!(links.neighbors(NodeId(0)).len(), before - 1);
        assert!(links
            .neighbors(NodeId(0))
            .iter()
            .all(|nb| nb.node != NodeId(1)));
        links.set_link(NodeId(0), NodeId(1), 0.4); // revive it
        assert_eq!(links.neighbors(NodeId(0)).len(), before);
        assert_eq!(links.neighbors(NodeId(0)), dense_scan(&links, NodeId(0)));
    }

    #[test]
    fn serialization_round_trips_and_rebuilds_the_table() {
        let (_, links) = testbed();
        let json = serde_json::to_string(&links).unwrap();
        // The v2 wire schema is the sparse CSR split into parallel arrays —
        // no dense matrix anywhere in the file.
        assert!(json.starts_with("{\"n\":"));
        assert!(json.contains("\"offsets\":"));
        assert!(!json.contains("\"delivery\":"));
        let back: LinkModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), links.len());
        for a in 0..links.len() {
            let a = NodeId(a as u16);
            assert_eq!(back.neighbors(a), links.neighbors(a), "{a}");
        }
        // A corrupt node count is rejected instead of building a bogus table.
        let bad = json.replacen("\"n\":63", "\"n\":62", 1);
        assert!(serde_json::from_str::<LinkModel>(&bad).is_err());
    }

    #[test]
    fn deserialization_accepts_the_dense_v1_schema() {
        // Reconstruct what the pre-sparse code wrote — `{n, delivery,
        // params}` with a dense row-major matrix — and check it loads into
        // the same model the sparse schema describes.
        let (_, links) = testbed();
        let n = links.len();
        let mut delivery = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                delivery[i * n + j] = links.link(NodeId(i as u16), NodeId(j as u16)).delivery_prob;
            }
        }
        let v1 = serde::Value::Object(vec![
            ("n".to_string(), serde::Serialize::to_value(&n)),
            (
                "delivery".to_string(),
                serde::Serialize::to_value(&delivery),
            ),
            (
                "params".to_string(),
                serde::Serialize::to_value(&links.params()),
            ),
        ]);
        let v1_json = serde_json::to_string(&v1).unwrap();
        assert!(v1_json.contains("\"delivery\":"));
        let back: LinkModel = serde_json::from_str(&v1_json).unwrap();
        assert_eq!(back.len(), links.len());
        for a in 0..n {
            let a = NodeId(a as u16);
            assert_eq!(back.neighbors(a), links.neighbors(a), "{a}");
        }
        // The corrupt-length rejection from the v1 era still holds.
        let bad = v1_json.replacen("\"n\":63", "\"n\":62", 1);
        assert!(serde_json::from_str::<LinkModel>(&bad).is_err());
    }

    #[test]
    fn set_link_inserts_out_of_range_pairs() {
        // The dense matrix allowed overriding *any* directed pair; the
        // sparse table must too (failure-injection scenarios rely on it).
        let topo = Topology::grid(3, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        let (a, b) = (NodeId(0), NodeId(8)); // opposite corners, out of range
        assert!(!links.link(a, b).is_usable());
        let before = links.usable_link_count();
        links.set_link(a, b, 0.6);
        assert_eq!(links.usable_link_count(), before + 1);
        assert!((links.link(a, b).delivery_prob - 0.6).abs() < 1e-12);
        assert_eq!(links.neighbors(a), dense_scan(&links, a).as_slice());
        // Other rows' slices are untouched by the offset shift.
        for i in 1..9 {
            let i = NodeId(i as u16);
            assert_eq!(links.neighbors(i), dense_scan(&links, i).as_slice());
        }
        links.set_link(a, b, 0.0);
        assert_eq!(links.usable_link_count(), before);
        assert!(!links.link(a, b).is_usable());
    }

    #[test]
    fn listeners_match_topology_neighbors() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        for n in topo.nodes() {
            let mut a = links.listeners(n);
            let mut b: Vec<NodeId> = topo.neighbors(n).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
