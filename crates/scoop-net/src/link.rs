//! Per-directed-pair link quality and loss model.
//!
//! Section 6 of the paper describes the simulated radio environment: among
//! pairs that can hear each other, "loss rates vary from twenty-five percent
//! to about ninety percent" and "connections are slightly asymmetric, as in
//! most real wireless networks". The [`LinkModel`] reproduces that: every
//! directed link within radio range gets a delivery probability that decays
//! with distance, plus per-direction random noise.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{LinkSpec, NodeId};
use serde::{Deserialize, Serialize};

/// Quality of one directed link.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Probability that a single transmission on this link is received.
    pub delivery_prob: f64,
}

impl LinkQuality {
    /// A link that never delivers anything (out of range).
    pub const DEAD: LinkQuality = LinkQuality { delivery_prob: 0.0 };

    /// Loss probability (complement of delivery).
    pub fn loss_prob(&self) -> f64 {
        1.0 - self.delivery_prob
    }

    /// Expected number of transmissions needed for one successful delivery
    /// (the ETX metric used by Woo et al. and De Couto et al.). Dead links
    /// report `f64::INFINITY`.
    pub fn etx(&self) -> f64 {
        if self.delivery_prob <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.delivery_prob
        }
    }

    /// Returns `true` if the link can deliver packets at all.
    pub fn is_usable(&self) -> bool {
        self.delivery_prob > 0.0
    }
}

/// Parameters controlling how link quality is derived from the topology.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkModelParams {
    /// Delivery probability of a link at (near-)zero distance.
    pub max_delivery: f64,
    /// Delivery probability of a link right at the edge of radio range.
    pub min_delivery: f64,
    /// Standard deviation of the per-direction noise added to delivery
    /// probability (produces asymmetry).
    pub asymmetry_noise: f64,
    /// Shape of the decay between the two endpoints: delivery falls with
    /// `(d / range) ^ distance_exponent`; `1.0` is the calibrated linear
    /// decay.
    pub distance_exponent: f64,
}

impl LinkModelParams {
    /// Translates the serializable [`LinkSpec`] calibration knobs into model
    /// parameters. This is the only place the mapping lives, so the
    /// spec-driven path and [`LinkModelParams::default`] cannot drift apart.
    pub fn from_spec(spec: &LinkSpec) -> Self {
        LinkModelParams {
            max_delivery: spec.max_delivery(),
            min_delivery: spec.edge_delivery,
            asymmetry_noise: spec.asymmetry_noise,
            distance_exponent: spec.distance_exponent,
        }
    }
}

impl Default for LinkModelParams {
    fn default() -> Self {
        // Calibrated so connected pairs land in the paper's 25–90 % loss band
        // (delivery 0.78 at distance 0, 0.10 at the range edge).
        Self::from_spec(&LinkSpec::paper_defaults())
    }
}

/// Delivery probabilities for every directed pair of nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkModel {
    n: usize,
    /// Row-major `n × n` matrix of delivery probabilities. Entry `(i, j)` is
    /// the probability that a packet transmitted by `i` is received by `j`.
    delivery: Vec<f64>,
    params: LinkModelParams,
}

impl LinkModel {
    /// Derives a link model from a topology with the default parameters.
    pub fn from_topology(topo: &Topology, seed: u64) -> Self {
        Self::with_params(topo, seed, LinkModelParams::default())
    }

    /// Derives a link model from a topology with explicit parameters.
    pub fn with_params(topo: &Topology, seed: u64, params: LinkModelParams) -> Self {
        let n = topo.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11d4_11d4);
        let mut delivery = vec![0.0; n * n];
        for i in 0..n {
            let a = NodeId(i as u16);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let b = NodeId(j as u16);
                if !topo.in_range(a, b) {
                    continue;
                }
                let d = topo.distance(a, b).unwrap_or(f64::INFINITY);
                let frac = (d / topo.radio_range()).clamp(0.0, 1.0);
                // Decay from max_delivery at distance 0 to min_delivery at the
                // edge of range — linear when the exponent is 1 (the exact
                // comparison keeps the default bit-identical to the historical
                // model), shaped by `frac^k` otherwise — plus per-direction
                // Gaussian-ish noise (two uniform draws averaged keeps the
                // dependency set small).
                let shaped = if params.distance_exponent == 1.0 {
                    frac
                } else {
                    frac.powf(params.distance_exponent)
                };
                let base =
                    params.max_delivery - shaped * (params.max_delivery - params.min_delivery);
                let noise: f64 = (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0)) / 2.0
                    * params.asymmetry_noise
                    * 2.0;
                delivery[i * n + j] =
                    (base + noise).clamp(params.min_delivery * 0.5, params.max_delivery);
            }
        }
        LinkModel {
            n,
            delivery,
            params,
        }
    }

    /// A loss-free link model over a topology: every in-range directed link
    /// delivers with probability 1. Useful for tests isolating protocol
    /// logic from loss.
    pub fn perfect(topo: &Topology) -> Self {
        let n = topo.len();
        let mut delivery = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j && topo.in_range(NodeId(i as u16), NodeId(j as u16)) {
                    delivery[i * n + j] = 1.0;
                }
            }
        }
        LinkModel {
            n,
            delivery,
            params: LinkModelParams {
                max_delivery: 1.0,
                min_delivery: 1.0,
                asymmetry_noise: 0.0,
                distance_exponent: 1.0,
            },
        }
    }

    /// Builds the loss model described by a [`LinkSpec`]: the family it names
    /// with its calibration knobs applied. This is the single construction
    /// path the `LinkGen` factories use.
    pub fn from_spec(
        spec: &LinkSpec,
        topo: &Topology,
        seed: u64,
    ) -> Result<Self, scoop_types::ScoopError> {
        spec.validate()?;
        Ok(match spec.family {
            scoop_types::LinkFamily::DistanceDecay => {
                Self::with_params(topo, seed, LinkModelParams::from_spec(spec))
            }
            scoop_types::LinkFamily::Perfect => Self::perfect(topo),
        })
    }

    /// Number of nodes covered by the model.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false for a constructed model.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> LinkModelParams {
        self.params
    }

    /// Quality of the directed link `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkQuality {
        if from.index() >= self.n || to.index() >= self.n || from == to {
            return LinkQuality::DEAD;
        }
        LinkQuality {
            delivery_prob: self.delivery[from.index() * self.n + to.index()],
        }
    }

    /// Overrides the delivery probability of one directed link (used by tests
    /// and by failure-injection experiments).
    pub fn set_link(&mut self, from: NodeId, to: NodeId, delivery_prob: f64) {
        if from.index() < self.n && to.index() < self.n && from != to {
            self.delivery[from.index() * self.n + to.index()] = delivery_prob.clamp(0.0, 1.0);
        }
    }

    /// Nodes with a usable link *from* `node` (i.e. nodes that can hear it).
    pub fn listeners(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.n)
            .map(|i| NodeId(i as u16))
            .filter(|&m| m != node && self.link(node, m).is_usable())
            .collect()
    }

    /// Mean loss probability over all usable directed links.
    pub fn mean_loss(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in 0..self.n {
                let p = self.delivery[i * self.n + j];
                if i != j && p > 0.0 {
                    total += 1.0 - p;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Fraction of usable link pairs whose two directions differ by more than
    /// `threshold` in delivery probability — a measure of asymmetry.
    pub fn asymmetric_fraction(&self, threshold: f64) -> f64 {
        let mut asym = 0usize;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let a = self.delivery[i * self.n + j];
                let b = self.delivery[j * self.n + i];
                if a > 0.0 || b > 0.0 {
                    count += 1;
                    if (a - b).abs() > threshold {
                        asym += 1;
                    }
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            asym as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn testbed() -> (Topology, LinkModel) {
        let topo = Topology::office_floor(62, 11).unwrap();
        let links = LinkModel::from_topology(&topo, 11);
        (topo, links)
    }

    #[test]
    fn loss_rates_match_paper_band() {
        let (topo, links) = testbed();
        let mut losses = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && topo.in_range(a, b) {
                    losses.push(links.link(a, b).loss_prob());
                }
            }
        }
        assert!(!losses.is_empty());
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = losses.iter().cloned().fold(0.0, f64::max);
        // Paper: loss rates vary from ~25 % to ~90 % among connected pairs.
        assert!(min < 0.35, "best links should lose < 35 %, got {min}");
        assert!(max > 0.70, "worst links should lose > 70 %, got {max}");
        assert!(max <= 0.97, "even the worst link should sometimes deliver");
    }

    #[test]
    fn out_of_range_links_are_dead() {
        let (topo, links) = testbed();
        let mut checked = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && !topo.in_range(a, b) {
                    assert!(!links.link(a, b).is_usable());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn links_are_asymmetric() {
        let (_, links) = testbed();
        assert!(
            links.asymmetric_fraction(0.02) > 0.3,
            "a substantial fraction of links should differ between directions"
        );
    }

    #[test]
    fn self_links_and_unknown_nodes_are_dead() {
        let (_, links) = testbed();
        assert!(!links.link(NodeId(4), NodeId(4)).is_usable());
        assert!(!links.link(NodeId(4), NodeId(120)).is_usable());
    }

    #[test]
    fn etx_is_inverse_delivery() {
        let q = LinkQuality { delivery_prob: 0.5 };
        assert!((q.etx() - 2.0).abs() < 1e-9);
        assert!(LinkQuality::DEAD.etx().is_infinite());
    }

    #[test]
    fn perfect_model_has_no_loss() {
        let topo = Topology::grid(4, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        assert_eq!(links.mean_loss(), 0.0);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && topo.in_range(a, b) {
                    assert_eq!(links.link(a, b).delivery_prob, 1.0);
                }
            }
        }
    }

    #[test]
    fn set_link_overrides_and_clamps() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let mut links = LinkModel::perfect(&topo);
        links.set_link(NodeId(0), NodeId(1), 0.25);
        assert!((links.link(NodeId(0), NodeId(1)).delivery_prob - 0.25).abs() < 1e-12);
        links.set_link(NodeId(0), NodeId(1), 7.0);
        assert_eq!(links.link(NodeId(0), NodeId(1)).delivery_prob, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::office_floor(20, 5).unwrap();
        let a = LinkModel::from_topology(&topo, 9);
        let b = LinkModel::from_topology(&topo, 9);
        let c = LinkModel::from_topology(&topo, 10);
        assert_eq!(
            a.link(NodeId(1), NodeId(2)).delivery_prob,
            b.link(NodeId(1), NodeId(2)).delivery_prob
        );
        // A different seed should perturb at least some link.
        let differs = topo.nodes().any(|x| {
            topo.nodes()
                .any(|y| a.link(x, y).delivery_prob != c.link(x, y).delivery_prob)
        });
        assert!(differs);
    }

    #[test]
    fn listeners_match_topology_neighbors() {
        let topo = Topology::grid(3, 10.0).unwrap();
        let links = LinkModel::perfect(&topo);
        for n in topo.nodes() {
            let mut a = links.listeners(n);
            let mut b: Vec<NodeId> = topo.neighbors(n).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
