//! Property-based tests for the network substrate: topology generators and
//! the link model must uphold their structural invariants for any size and
//! seed.

use proptest::prelude::*;
use scoop_net::{FaultSchedule, LinkModel, Neighbor, StdTopologyGen, Topology, TopologyGen};
use scoop_types::{LinkSpec, NodeId, ScoopError, SimTime, TopologyKind, TopologySpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Office-floor topologies of any supported size are connected, have
    /// symmetric radio-range adjacency, and keep every sensor within a
    /// bounded number of hops of the basestation.
    #[test]
    fn office_floor_structural_invariants(nodes in 4usize..100, seed in 0u64..500) {
        let topo = Topology::office_floor(nodes, seed).expect("within limits");
        prop_assert_eq!(topo.len(), nodes + 1);
        prop_assert!(topo.is_connected());
        // Adjacency is symmetric because range is distance-based.
        for a in topo.nodes() {
            for &b in topo.neighbors(a) {
                prop_assert!(topo.in_range(b, a), "asymmetric adjacency {a} {b}");
            }
        }
        // Depth stays moderate: the generator aims for a multi-hop but not
        // degenerate network.
        prop_assert!(topo.network_depth() >= 1);
        prop_assert!(topo.network_depth() <= 16, "depth {}", topo.network_depth());
    }

    /// Hop distances satisfy the triangle inequality over the radio graph.
    #[test]
    fn hop_distance_triangle_inequality(seed in 0u64..100) {
        let topo = Topology::office_floor(20, seed).expect("topology");
        let nodes: Vec<NodeId> = topo.nodes().collect();
        for &a in nodes.iter().step_by(3) {
            for &b in nodes.iter().step_by(4) {
                for &c in nodes.iter().step_by(5) {
                    if let (Some(ab), Some(bc), Some(ac)) = (
                        topo.hop_distance(a, b),
                        topo.hop_distance(b, c),
                        topo.hop_distance(a, c),
                    ) {
                        prop_assert!(ac <= ab + bc, "{a}->{c} {ac} > {a}->{b} {ab} + {b}->{c} {bc}");
                    }
                }
            }
        }
    }

    /// Link delivery probabilities are always within [0, 1], dead outside
    /// radio range, and usable (eventually deliverable) within range.
    #[test]
    fn link_model_probability_bounds(nodes in 4usize..60, seed in 0u64..300) {
        let topo = Topology::office_floor(nodes, seed).expect("topology");
        let links = LinkModel::from_topology(&topo, seed);
        for a in topo.nodes() {
            for b in topo.nodes() {
                let q = links.link(a, b);
                prop_assert!((0.0..=1.0).contains(&q.delivery_prob));
                if a == b {
                    prop_assert!(!q.is_usable());
                } else if topo.in_range(a, b) {
                    prop_assert!(q.is_usable(), "in-range link {a}->{b} must be usable");
                    prop_assert!(q.etx() >= 1.0);
                } else {
                    prop_assert!(!q.is_usable(), "out-of-range link {a}->{b} must be dead");
                }
            }
        }
    }

    /// Grid topologies have the expected regular structure regardless of
    /// spacing.
    #[test]
    fn grid_structure(side in 2usize..8, spacing in 1.0f64..50.0) {
        let topo = Topology::grid(side, spacing).expect("grid");
        prop_assert_eq!(topo.len(), side * side);
        prop_assert!(topo.is_connected());
        // Corner nodes always have exactly 3 neighbors.
        prop_assert_eq!(topo.neighbors(NodeId(0)).len(), 3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine's CSR neighbor table visits exactly the nodes the
    /// historical dense-row scan visited — same set, same ascending order,
    /// same (pre-clamped) delivery probabilities — for every placement
    /// family, node count, and seed. This is the structural half of the
    /// byte-identical-RNG guarantee: one `gen_bool` per listed neighbor in
    /// listing order reproduces the old random stream exactly.
    #[test]
    fn csr_neighbor_table_matches_dense_row_scan(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 2usize..80,
        seed in 0u64..200,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        let links = LinkModel::from_topology(&topo, seed);
        for a in topo.nodes() {
            // The old dense scan, reimplemented verbatim as the oracle.
            let dense: Vec<Neighbor> = (0..links.len())
                .map(|i| NodeId(i as u16))
                .filter(|&m| m != a && links.link(a, m).is_usable())
                .map(|m| Neighbor {
                    node: m,
                    delivery_prob: links.link(a, m).delivery_prob.clamp(0.0, 1.0),
                })
                .collect();
            prop_assert_eq!(
                links.neighbors(a), dense.as_slice(),
                "CSR row of {} diverges from the dense scan ({:?}, {} nodes, seed {})",
                a, spec.kind, nodes, seed
            );
        }
    }

    /// Reliability is monotone in the loss floor: with everything else held
    /// fixed (topology, seed — hence the exact same per-pair noise draws —
    /// edge delivery, exponent, noise level), lowering `loss_floor` toward 0
    /// never lowers any directed link's delivery probability, for every
    /// topology kind. This is the soundness property the calibration
    /// subsystem leans on when it reads the grid: gentler floors cannot
    /// secretly hurt delivery.
    #[test]
    fn delivery_is_monotone_as_loss_floor_falls(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 4usize..48,
        seed in 0u64..200,
        floor_harsh in 0.05f64..0.8,
        floor_scale in 0.0f64..1.0,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        let defaults = LinkSpec::default();
        let harsh_spec = LinkSpec {
            loss_floor: floor_harsh,
            edge_delivery: defaults.edge_delivery.min(1.0 - floor_harsh),
            ..defaults
        };
        let gentle_spec = LinkSpec {
            loss_floor: floor_harsh * floor_scale,
            ..harsh_spec
        };
        let harsh = LinkModel::from_spec(&harsh_spec, &topo, seed).expect("valid spec");
        let gentle = LinkModel::from_spec(&gentle_spec, &topo, seed).expect("valid spec");
        for a in topo.nodes() {
            for b in topo.nodes() {
                prop_assert!(
                    gentle.link(a, b).delivery_prob >= harsh.link(a, b).delivery_prob,
                    "lowering loss_floor {floor_harsh} -> {} reduced delivery {a}->{b}",
                    gentle_spec.loss_floor
                );
            }
        }
        prop_assert!(gentle.mean_loss() <= harsh.mean_loss());
    }

    /// Reliability is monotone in the edge delivery: raising `edge_delivery`
    /// toward 1 (capped by `1 - loss_floor`) never lowers any directed
    /// link's delivery probability, for every topology kind.
    #[test]
    fn delivery_is_monotone_as_edge_delivery_rises(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 4usize..48,
        seed in 0u64..200,
        floor in 0.0f64..0.5,
        edge_low in 0.01f64..0.4,
        edge_lift in 0.0f64..1.0,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        let low_spec = LinkSpec {
            loss_floor: floor,
            edge_delivery: edge_low.min(1.0 - floor),
            ..LinkSpec::default()
        };
        let high_spec = LinkSpec {
            edge_delivery: low_spec.edge_delivery
                + edge_lift * (1.0 - floor - low_spec.edge_delivery),
            ..low_spec
        };
        let low = LinkModel::from_spec(&low_spec, &topo, seed).expect("valid spec");
        let high = LinkModel::from_spec(&high_spec, &topo, seed).expect("valid spec");
        for a in topo.nodes() {
            for b in topo.nodes() {
                prop_assert!(
                    high.link(a, b).delivery_prob >= low.link(a, b).delivery_prob,
                    "raising edge_delivery {} -> {} reduced delivery {a}->{b}",
                    low_spec.edge_delivery, high_spec.edge_delivery
                );
            }
        }
        prop_assert!(high.mean_loss() <= low.mean_loss());
    }

    /// Adversarially *extreme but valid* LinkSpec values — floors at the top
    /// of the range, edge deliveries near the cap, exponents up to the
    /// maximum, huge asymmetry noise — always yield a CSR neighbor table
    /// whose pre-clamped probabilities land in [0, 1], for every topology
    /// kind. The engine samples these without a per-draw clamp, so an
    /// out-of-range entry here would corrupt the loss model silently.
    #[test]
    fn csr_probabilities_stay_in_unit_range_for_extreme_specs(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 2usize..40,
        seed in 0u64..200,
        floor in 0.0f64..0.89,
        exponent in 0.05f64..64.0,
        noise in 0.0f64..10.0,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        let link_spec = LinkSpec {
            loss_floor: floor,
            edge_delivery: (1.0 - floor).min(0.99),
            distance_exponent: exponent,
            asymmetry_noise: noise,
            ..LinkSpec::default()
        };
        link_spec.validate().expect("spec is in the valid range");
        let links = LinkModel::from_spec(&link_spec, &topo, seed).expect("valid spec");
        for a in topo.nodes() {
            for nb in links.neighbors(a) {
                prop_assert!(
                    (0.0..=1.0).contains(&nb.delivery_prob) && nb.delivery_prob > 0.0,
                    "CSR entry {a}->{} carries probability {}",
                    nb.node, nb.delivery_prob
                );
                prop_assert!(nb.delivery_prob.is_finite());
            }
        }
    }

    /// The spec-driven generator — the path `SimBuilder` builds every
    /// experiment through — yields a connected topology for *every* placement
    /// family at any supported node count and seed: the basestation (node 0)
    /// is reachable from every node.
    #[test]
    fn every_topology_spec_is_connected(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 2usize..120,
        seed in 0u64..300,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        prop_assert_eq!(topo.len(), nodes + 1);
        prop_assert!(topo.is_connected(), "{:?} disconnected at {} nodes seed {}",
            spec.kind, nodes, seed);
        for n in topo.nodes() {
            prop_assert!(
                topo.hop_distance(n, NodeId::BASESTATION).is_some(),
                "node {n} cannot reach the basestation ({:?}, {} nodes, seed {})",
                spec.kind, nodes, seed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Overlapping partition cuts union: a pair is severed at `t` iff at
    /// least one cut, applied alone, severs it at `t`. Composing cuts can
    /// only widen the blackout — never narrow, shift, or cancel it — for
    /// any mix of windows (overlapping, nested, disjoint, inverted) and any
    /// side assignment, including degenerate all-on-one-side cuts.
    #[test]
    fn partition_cuts_union_like_their_singletons(
        cuts in proptest::collection::vec(
            (
                0u64..120,
                0u64..120,
                proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 2..10),
            ),
            1..5,
        ),
        probe_t in 0u64..140,
    ) {
        let mut combined = FaultSchedule::empty();
        let mut singles = Vec::new();
        for (a, b, side) in &cuts {
            let (from, until) = (SimTime::from_secs(*a), SimTime::from_secs(*b));
            combined.add_partition(from, until, side.clone());
            let mut single = FaultSchedule::empty();
            single.add_partition(from, until, side.clone());
            singles.push(single);
        }
        let t = SimTime::from_secs(probe_t);
        // Probe every pair, including ids beyond the side vectors (which
        // belong to the majority side by definition).
        let n = cuts.iter().map(|(_, _, s)| s.len()).max().unwrap_or(0) as u16 + 2;
        for i in 0..n {
            for j in 0..n {
                let expected = singles.iter().any(|s| s.is_cut(NodeId(i), NodeId(j), t));
                prop_assert_eq!(
                    combined.is_cut(NodeId(i), NodeId(j), t), expected,
                    "pair ({i}, {j}) at t={probe_t}: union diverges from singleton OR"
                );
                prop_assert_eq!(
                    combined.is_cut(NodeId(i), NodeId(j), t),
                    combined.is_cut(NodeId(j), NodeId(i), t),
                    "cuts must stay symmetric"
                );
            }
        }
    }
}

/// Adversarial *invalid* LinkSpec values — NaN, negative, infinite, or
/// absurdly large knobs — are rejected by `LinkModel::from_spec` with a
/// typed `ScoopError::InvalidConfig`, never a panic and never a silently
/// NaN-ridden link table.
#[test]
fn adversarial_link_specs_get_typed_errors_not_panics() {
    let topo = Topology::grid(4, 10.0).expect("grid");
    let poisons: &[fn(&mut LinkSpec)] = &[
        |l| l.loss_floor = f64::NAN,
        |l| l.loss_floor = -0.2,
        |l| l.loss_floor = 1.0,
        |l| l.loss_floor = f64::INFINITY,
        |l| l.edge_delivery = f64::NAN,
        |l| l.edge_delivery = 0.0,
        |l| l.edge_delivery = -1.0,
        |l| l.edge_delivery = 2.0,
        |l| l.distance_exponent = f64::NAN,
        |l| l.distance_exponent = 0.0,
        |l| l.distance_exponent = -3.0,
        |l| l.distance_exponent = f64::INFINITY,
        |l| l.distance_exponent = 1e9,
        |l| l.asymmetry_noise = f64::NAN,
        |l| l.asymmetry_noise = -0.5,
        |l| l.asymmetry_noise = f64::INFINITY,
    ];
    for (i, poison) in poisons.iter().enumerate() {
        let mut spec = LinkSpec::default();
        poison(&mut spec);
        match LinkModel::from_spec(&spec, &topo, 1) {
            Err(ScoopError::InvalidConfig(_)) => {}
            other => panic!(
                "poisoned spec #{i} ({spec:?}) must yield InvalidConfig, got {:?}",
                other.map(|m| m.len())
            ),
        }
    }
    // The boundary itself stays accepted.
    let spec = LinkSpec {
        distance_exponent: LinkSpec::MAX_DISTANCE_EXPONENT,
        ..LinkSpec::default()
    };
    assert!(LinkModel::from_spec(&spec, &topo, 1).is_ok());
}
