//! Property-based tests for the network substrate: topology generators and
//! the link model must uphold their structural invariants for any size and
//! seed.

use proptest::prelude::*;
use scoop_net::{LinkModel, Neighbor, StdTopologyGen, Topology, TopologyGen};
use scoop_types::{NodeId, TopologyKind, TopologySpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Office-floor topologies of any supported size are connected, have
    /// symmetric radio-range adjacency, and keep every sensor within a
    /// bounded number of hops of the basestation.
    #[test]
    fn office_floor_structural_invariants(nodes in 4usize..100, seed in 0u64..500) {
        let topo = Topology::office_floor(nodes, seed).expect("within limits");
        prop_assert_eq!(topo.len(), nodes + 1);
        prop_assert!(topo.is_connected());
        // Adjacency is symmetric because range is distance-based.
        for a in topo.nodes() {
            for &b in topo.neighbors(a) {
                prop_assert!(topo.in_range(b, a), "asymmetric adjacency {a} {b}");
            }
        }
        // Depth stays moderate: the generator aims for a multi-hop but not
        // degenerate network.
        prop_assert!(topo.network_depth() >= 1);
        prop_assert!(topo.network_depth() <= 16, "depth {}", topo.network_depth());
    }

    /// Hop distances satisfy the triangle inequality over the radio graph.
    #[test]
    fn hop_distance_triangle_inequality(seed in 0u64..100) {
        let topo = Topology::office_floor(20, seed).expect("topology");
        let nodes: Vec<NodeId> = topo.nodes().collect();
        for &a in nodes.iter().step_by(3) {
            for &b in nodes.iter().step_by(4) {
                for &c in nodes.iter().step_by(5) {
                    if let (Some(ab), Some(bc), Some(ac)) = (
                        topo.hop_distance(a, b),
                        topo.hop_distance(b, c),
                        topo.hop_distance(a, c),
                    ) {
                        prop_assert!(ac <= ab + bc, "{a}->{c} {ac} > {a}->{b} {ab} + {b}->{c} {bc}");
                    }
                }
            }
        }
    }

    /// Link delivery probabilities are always within [0, 1], dead outside
    /// radio range, and usable (eventually deliverable) within range.
    #[test]
    fn link_model_probability_bounds(nodes in 4usize..60, seed in 0u64..300) {
        let topo = Topology::office_floor(nodes, seed).expect("topology");
        let links = LinkModel::from_topology(&topo, seed);
        for a in topo.nodes() {
            for b in topo.nodes() {
                let q = links.link(a, b);
                prop_assert!((0.0..=1.0).contains(&q.delivery_prob));
                if a == b {
                    prop_assert!(!q.is_usable());
                } else if topo.in_range(a, b) {
                    prop_assert!(q.is_usable(), "in-range link {a}->{b} must be usable");
                    prop_assert!(q.etx() >= 1.0);
                } else {
                    prop_assert!(!q.is_usable(), "out-of-range link {a}->{b} must be dead");
                }
            }
        }
    }

    /// Grid topologies have the expected regular structure regardless of
    /// spacing.
    #[test]
    fn grid_structure(side in 2usize..8, spacing in 1.0f64..50.0) {
        let topo = Topology::grid(side, spacing).expect("grid");
        prop_assert_eq!(topo.len(), side * side);
        prop_assert!(topo.is_connected());
        // Corner nodes always have exactly 3 neighbors.
        prop_assert_eq!(topo.neighbors(NodeId(0)).len(), 3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine's CSR neighbor table visits exactly the nodes the
    /// historical dense-row scan visited — same set, same ascending order,
    /// same (pre-clamped) delivery probabilities — for every placement
    /// family, node count, and seed. This is the structural half of the
    /// byte-identical-RNG guarantee: one `gen_bool` per listed neighbor in
    /// listing order reproduces the old random stream exactly.
    #[test]
    fn csr_neighbor_table_matches_dense_row_scan(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 2usize..80,
        seed in 0u64..200,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        let links = LinkModel::from_topology(&topo, seed);
        for a in topo.nodes() {
            // The old dense scan, reimplemented verbatim as the oracle.
            let dense: Vec<Neighbor> = (0..links.len())
                .map(|i| NodeId(i as u16))
                .filter(|&m| m != a && links.link(a, m).is_usable())
                .map(|m| Neighbor {
                    node: m,
                    delivery_prob: links.link(a, m).delivery_prob.clamp(0.0, 1.0),
                })
                .collect();
            prop_assert_eq!(
                links.neighbors(a), dense.as_slice(),
                "CSR row of {} diverges from the dense scan ({:?}, {} nodes, seed {})",
                a, spec.kind, nodes, seed
            );
        }
    }

    /// The spec-driven generator — the path `SimBuilder` builds every
    /// experiment through — yields a connected topology for *every* placement
    /// family at any supported node count and seed: the basestation (node 0)
    /// is reachable from every node.
    #[test]
    fn every_topology_spec_is_connected(
        kind_index in 0usize..TopologyKind::ALL.len(),
        nodes in 2usize..120,
        seed in 0u64..300,
    ) {
        let spec = TopologySpec {
            kind: TopologyKind::ALL[kind_index],
            ..TopologySpec::office_floor()
        };
        let topo = StdTopologyGen.generate(&spec, nodes, seed).expect("within limits");
        prop_assert_eq!(topo.len(), nodes + 1);
        prop_assert!(topo.is_connected(), "{:?} disconnected at {} nodes seed {}",
            spec.kind, nodes, seed);
        for n in topo.nodes() {
            prop_assert!(
                topo.hop_distance(n, NodeId::BASESTATION).is_some(),
                "node {n} cannot reach the basestation ({:?}, {} nodes, seed {})",
                spec.kind, nodes, seed
            );
        }
    }
}
