//! The hot-path allocation gate: once a simulation reaches steady state, the
//! engine's event loop (timer dispatch, broadcast fan-out, unicast retries
//! with snooping, send results) performs **zero heap allocations**.
//!
//! Measured with a counting global allocator around an application whose own
//! callbacks are allocation-free, so every counted allocation would belong to
//! the engine: the CSR neighbor table (no per-transmit listener `Vec`), the
//! reusable command buffer (no per-callback `Vec`), and the recycled event
//! queue capacity. The same run asserts the buffer-capacity invariant: queue
//! and command-buffer capacities established during warm-up never grow again.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a concurrently running test would pollute the window.

use scoop_net::{
    Engine, EngineConfig, LinkModel, NodeCtx, NodeLogic, Packet, TimerToken, Topology,
};
use scoop_types::{MessageKind, NodeId, SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A protocol exercising every hot-path shape without allocating itself:
/// every node broadcasts a heartbeat each second; nodes 1 and 2 additionally
/// unicast to a fixed peer (over lossy links, so the retry loop and snooping
/// both run); payloads are `Copy`.
#[derive(Default)]
struct FloodApp {
    received: u64,
    snooped: u64,
    send_results: u64,
}

const TICK: TimerToken = 1;

impl NodeLogic for FloodApp {
    type Payload = u64;

    fn on_init(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(500 + ctx.id().0 as u64 * 37), TICK);
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_, u64>, _packet: Packet<u64>, addressed: bool) {
        if addressed {
            self.received += 1;
        } else {
            self.snooped += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, u64>, _token: TimerToken) {
        ctx.send_broadcast(MessageKind::Heartbeat, None, self.received);
        let me = ctx.id();
        if me == NodeId(1) {
            ctx.send_unicast(NodeId(2), MessageKind::Data, None, self.received);
        } else if me == NodeId(2) {
            ctx.send_unicast(NodeId(1), MessageKind::Data, Some(NodeId(1)), self.received);
        }
        ctx.set_timer(SimDuration::from_secs(1), TICK);
    }

    fn on_send_result(&mut self, _ctx: &mut NodeCtx<'_, u64>, _delivered: bool, _p: Packet<u64>) {
        self.send_results += 1;
    }
}

#[test]
fn steady_state_event_loop_allocates_nothing() {
    let topo = Topology::grid(4, 10.0).expect("grid");
    // Lossy links: the unicast retry loop must actually retry sometimes.
    let links = LinkModel::from_topology(&topo, 42);
    let nodes = (0..topo.len()).map(|_| FloodApp::default()).collect();
    let mut engine = Engine::new(topo, links, nodes, EngineConfig::default()).expect("engine");

    // Warm-up: on_init runs, the queue and command buffer reach their
    // high-water capacities, every periodic pattern has repeated many times.
    engine.run_until(SimTime::from_secs(120));
    let events_before = engine.events_processed();
    assert!(events_before > 1_000, "warm-up must dispatch real traffic");

    let queue_cap = engine.queue_capacity();
    let cmd_cap = engine.command_buffer_capacity();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);

    // The measured window: ten more minutes of simulated traffic.
    engine.run_until(SimTime::from_secs(720));

    let allocs_after = ALLOCATIONS.load(Ordering::Relaxed);
    let events_after = engine.events_processed();
    assert!(
        events_after > events_before + 5_000,
        "the measured window must dispatch real traffic, got {}",
        events_after - events_before
    );
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state dispatch of {} events heap-allocated",
        events_after - events_before
    );

    // Buffer-capacity invariant: steady state reuses, never regrows.
    assert_eq!(engine.queue_capacity(), queue_cap, "event queue regrew");
    assert_eq!(
        engine.command_buffer_capacity(),
        cmd_cap,
        "command buffer regrew"
    );

    // Sanity: the workload really exercised broadcast, snoop, unicast ack,
    // and retry-exhaustion paths.
    let received: u64 = (0..16).map(|i| engine.node(NodeId(i)).received).sum();
    let snooped: u64 = (0..16).map(|i| engine.node(NodeId(i)).snooped).sum();
    let results: u64 = (0..16).map(|i| engine.node(NodeId(i)).send_results).sum();
    assert!(received > 0, "no packets delivered");
    assert!(snooped > 0, "no unicasts snooped");
    assert!(results > 0, "no unicast send results");
}
