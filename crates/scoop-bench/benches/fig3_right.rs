//! Regenerates Figure 3 (right): SCOOP over the UNIQUE, EQUAL, REAL,
//! GAUSSIAN, and RANDOM data sources.

use scoop_bench::fig3_bench;
use scoop_sim::experiments::fig3_right;

fn main() {
    fig3_bench("Figure 3 (right): Scoop across data sources", fig3_right);
}
