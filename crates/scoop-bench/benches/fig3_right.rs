//! Regenerates Figure 3 (right): SCOOP over the UNIQUE, EQUAL, REAL,
//! GAUSSIAN, and RANDOM data sources.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::fig3_right;
use scoop_sim::report;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Figure 3 (right): Scoop across data sources", || {
        let rows = fig3_right(&base, trials).expect("fig3 right");
        report::fig3_table("policy/source breakdown", &rows)
    });
}
