//! Regenerates Figure 3 (right): SCOOP over every data source.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Fig3Right);
}
