//! Regenerates the 256-node grid scaling scenario (exercises the raised
//! MAX_NODES cap).

fn main() {
    scoop_bench::regen(scoop_lab::ExperimentId::Scaling256);
}
