//! Regenerates the link-calibration ablation (LinkSpec loss-knob sweep).

fn main() {
    scoop_bench::regen(scoop_lab::ExperimentId::LinkCalibration);
}
