//! Regenerates the prose sample-interval sweep: as nodes sample less often,
//! the differences between data sources shrink because fixed overheads
//! (queries, mappings, summaries) dominate.

use scoop_bench::bench_experiment;
use scoop_sim::experiments::sample_interval_sweep;
use scoop_sim::report;
use scoop_types::DataSourceKind;

fn main() {
    bench_experiment(
        "Sample-interval sweep",
        |base, trials| {
            sample_interval_sweep(
                base,
                &[
                    DataSourceKind::Real,
                    DataSourceKind::Unique,
                    DataSourceKind::Random,
                ],
                &[15, 30, 60, 120],
                trials,
            )
        },
        |rows| report::sample_interval_table(rows),
    );
}
