//! Regenerates the sample-interval sweep: SCOOP cost as less data is stored.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::SampleInterval);
}
