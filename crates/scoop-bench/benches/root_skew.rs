//! Regenerates the root-skew analysis: what the root transmits and receives
//! versus an average sensor node, per policy.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::RootSkew);
}
