//! Regenerates the prose root-skew analysis: what the root transmits and
//! receives under SCOOP, BASE, and LOCAL, versus an average sensor node.

use scoop_bench::bench_experiment;
use scoop_sim::experiments::root_skew;
use scoop_sim::report;

fn main() {
    bench_experiment("Root-node skew", root_skew, |rows| {
        report::root_skew_table(rows)
    });
}
