//! Regenerates the prose root-skew analysis: what the root transmits and
//! receives under SCOOP, BASE, and LOCAL, versus an average sensor node.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::root_skew;
use scoop_sim::report;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Root-node skew", || {
        let rows = root_skew(&base, trials).expect("root skew");
        report::root_skew_table(&rows)
    });
}
