//! Criterion micro-benchmark of the `O(V · n²)` index-construction algorithm
//! (Figure 2) at the paper's scale: V ≈ 150 values, n = 62 nodes.
//!
//! The paper argues this is "very practical" for networks of a few hundred
//! nodes; this bench quantifies it and also measures the scaling in `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_core::histogram::SummaryHistogram;
use scoop_core::index::{IndexBuilder, IndexBuilderConfig};
use scoop_core::summary::{ReportedNeighbor, SummaryMessage};
use scoop_core::{CostParams, StatsStore};
use scoop_types::{NodeId, SimTime, StorageIndexId, Value, ValueRange};

/// Builds a stats store resembling a converged deployment: `n` sensors in a
/// chain, each producing values clustered around a node-specific mean.
fn stats_for(n_sensors: usize, domain_width: i32) -> StatsStore {
    let domain = ValueRange::new(0, domain_width - 1);
    let mut st = StatsStore::new(n_sensors + 1, domain);
    for i in 1..=n_sensors {
        let center = (i as i32 * domain_width / (n_sensors as i32 + 1)).clamp(0, domain_width - 1);
        let values: Vec<Value> = (0..30)
            .map(|k| (center + (k % 5) - 2).clamp(0, domain_width - 1))
            .collect();
        let mut neighbors = vec![ReportedNeighbor {
            node: NodeId((i - 1) as u16),
            quality: 0.8,
        }];
        if i < n_sensors {
            neighbors.push(ReportedNeighbor {
                node: NodeId((i + 1) as u16),
                quality: 0.8,
            });
        }
        st.record_summary(SummaryMessage {
            node: NodeId(i as u16),
            histogram: SummaryHistogram::build(&values, 10),
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            sum: values.iter().map(|&v| v as i64).sum(),
            count: values.len() as u32,
            data_rate_hz: 1.0 / 15.0,
            neighbors,
            parent: Some(NodeId((i - 1) as u16)),
            newest_complete_index: StorageIndexId(1),
            generated_at: SimTime::from_secs(100),
        });
    }
    for q in 0..20 {
        st.record_query(
            &ValueRange::new(
                q * 3 % domain_width,
                (q * 3 % domain_width + 5).min(domain_width - 1),
            ),
            SimTime::from_secs(600 + q as u64 * 15),
        );
    }
    st
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[16usize, 62, 100] {
        let st = stats_for(n, 150);
        group.bench_with_input(BenchmarkId::new("V150", n), &st, |b, st| {
            let builder = IndexBuilder::new(IndexBuilderConfig::default());
            b.iter(|| {
                builder.build(
                    st,
                    CostParams::with_query_rate(1.0 / 15.0),
                    StorageIndexId(2),
                    SimTime::from_secs(840),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
