//! Regenerates Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE over the
//! REAL light trace.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::fig3_middle;
use scoop_sim::report;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Figure 3 (middle): storage policies on the REAL trace", || {
        let rows = fig3_middle(&base, trials).expect("fig3 middle");
        report::fig3_table("policy/source breakdown", &rows)
    });
}
