//! Regenerates Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE over the
//! REAL light trace.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Fig3Middle);
}
