//! Regenerates Figure 3 (middle): SCOOP vs LOCAL vs HASH vs BASE over the
//! REAL light trace.

use scoop_bench::fig3_bench;
use scoop_sim::experiments::fig3_middle;

fn main() {
    fig3_bench(
        "Figure 3 (middle): storage policies on the REAL trace",
        fig3_middle,
    );
}
