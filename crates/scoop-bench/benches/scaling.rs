//! Regenerates the prose scaling study: SCOOP on networks of 25 to 100 nodes,
//! over the REAL and RANDOM sources (RANDOM is the one the paper found most
//! sensitive to network size).

use scoop_bench::bench_experiment;
use scoop_sim::experiments::scaling;
use scoop_sim::report;
use scoop_types::DataSourceKind;

fn main() {
    bench_experiment(
        "Scaling study",
        |base, trials| {
            let sizes: Vec<usize> = if base.num_nodes <= 16 {
                vec![8, 16, 25]
            } else {
                vec![25, 50, 62, 100]
            };
            scaling(
                base,
                &sizes,
                &[DataSourceKind::Real, DataSourceKind::Random],
                trials,
            )
        },
        |rows| report::scaling_table(rows),
    );
}
