//! Regenerates the scaling study: SCOOP over growing network sizes.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Scaling);
}
