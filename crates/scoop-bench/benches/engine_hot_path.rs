//! Criterion micro-benchmark of the discrete-event engine's hot path: the
//! per-event cost the whole reproduction is bottlenecked on (every paper
//! figure is a message count over 62–512-node lossy networks).
//!
//! Two shapes are measured, and each prints an **events/sec** figure — the
//! same throughput number `scoop-lab run` records into artifact provenance
//! and `BENCH_history.jsonl`:
//!
//! * `flood/<n>` — a synthetic allocation-free protocol (periodic broadcasts
//!   plus lossy unicasts with snooping) on an `n`-node grid. This isolates
//!   raw engine dispatch: CSR neighbor iteration, buffer reuse, queue
//!   recycling — no protocol logic in the way.
//! * `scoop/quick` — one full quick-scale SCOOP experiment through
//!   `run_experiment`, i.e. the real `SimNode` protocol over shared
//!   (`Arc`) payloads: the end-to-end hot path the figures pay for.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_net::{
    Engine, EngineConfig, LinkModel, NodeCtx, NodeLogic, Packet, TimerToken, Topology,
};
use scoop_sim::run_experiment;
use scoop_types::{
    DataSourceKind, ExperimentConfig, MessageKind, NodeId, SimDuration, SimTime, StoragePolicy,
};

/// The same allocation-free traffic shape as the `zero_alloc` gate test:
/// every node broadcasts each second, two nodes exchange lossy unicasts.
#[derive(Default)]
struct FloodApp {
    received: u64,
}

const TICK: TimerToken = 1;

impl NodeLogic for FloodApp {
    type Payload = u64;

    fn on_init(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(500 + ctx.id().0 as u64 * 37), TICK);
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_, u64>, _packet: Packet<u64>, addressed: bool) {
        if addressed {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, u64>, _token: TimerToken) {
        ctx.send_broadcast(MessageKind::Heartbeat, None, self.received);
        let me = ctx.id();
        if me == NodeId(1) {
            ctx.send_unicast(NodeId(2), MessageKind::Data, None, self.received);
        } else if me == NodeId(2) {
            ctx.send_unicast(NodeId(1), MessageKind::Data, Some(NodeId(1)), self.received);
        }
        ctx.set_timer(SimDuration::from_secs(1), TICK);
    }
}

/// Runs a fresh flood engine for `sim_secs` of simulated time, returning the
/// number of events dispatched (the bench divides by wall time afterwards).
fn run_flood(side: usize, sim_secs: u64) -> u64 {
    let topo = Topology::grid(side, 10.0).expect("grid");
    let links = LinkModel::from_topology(&topo, 42);
    let nodes = (0..topo.len()).map(|_| FloodApp::default()).collect();
    let mut engine = Engine::new(topo, links, nodes, EngineConfig::default()).expect("engine");
    engine.run_until(SimTime::from_secs(sim_secs));
    engine.events_processed()
}

/// A quick-scale SCOOP configuration (16 nodes, 12 simulated minutes).
fn quick_scoop_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.policy.kind = StoragePolicy::Scoop;
    cfg.workload.data_source = DataSourceKind::Gaussian;
    cfg
}

fn bench_engine_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hot_path");
    group.sample_size(10);

    for side in [4usize, 8] {
        let nodes = side * side;
        group.bench_with_input(BenchmarkId::new("flood", nodes), &side, |b, &side| {
            b.iter(|| black_box(run_flood(side, 180)));
        });
        // The throughput figure the mean time corresponds to.
        let events = run_flood(side, 180);
        let start = std::time::Instant::now();
        let _ = black_box(run_flood(side, 180));
        let secs = start.elapsed().as_secs_f64();
        println!(
            "  flood/{nodes}: {events} events per run -> {:.0} events/s",
            events as f64 / secs.max(1e-9)
        );
    }

    let cfg = quick_scoop_config();
    group.bench_with_input(BenchmarkId::new("scoop", "quick"), &cfg, |b, cfg| {
        b.iter(|| black_box(run_experiment(cfg).expect("quick run")));
    });
    let result = run_experiment(&cfg).expect("quick run");
    let start = std::time::Instant::now();
    let _ = black_box(run_experiment(&cfg).expect("quick run"));
    let secs = start.elapsed().as_secs_f64();
    println!(
        "  scoop/quick: {} events per run -> {:.0} events/s",
        result.events_processed,
        result.events_processed as f64 / secs.max(1e-9)
    );

    group.finish();
}

criterion_group!(benches, bench_engine_hot_path);
criterion_main!(benches);
