//! Regenerates Figure 5: total cost as a function of the query interval, for
//! SCOOP, LOCAL, and BASE.

use scoop_bench::bench_experiment;
use scoop_sim::experiments::fig5::{default_intervals, fig5_query_interval};
use scoop_sim::report;

fn main() {
    bench_experiment(
        "Figure 5: cost vs query interval",
        |base, trials| fig5_query_interval(base, &default_intervals(), trials),
        |rows| report::fig5_table(rows),
    );
}
