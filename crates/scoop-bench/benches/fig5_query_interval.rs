//! Regenerates Figure 5: total cost as a function of the query interval.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Fig5);
}
