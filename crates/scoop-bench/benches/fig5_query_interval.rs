//! Regenerates Figure 5: total cost as a function of the query interval, for
//! SCOOP, LOCAL, and BASE.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::fig5::{default_intervals, fig5_query_interval};
use scoop_sim::report;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Figure 5: cost vs query interval", || {
        let rows = fig5_query_interval(&base, &default_intervals(), trials).expect("fig5");
        report::fig5_table(&rows)
    });
}
