//! Regenerates the prose reliability numbers: the paper reports that about
//! 93 % of data messages are successfully stored, about 78 % of query results
//! are retrieved, and about 85 % of readings reach their designated owner
//! (the rest fall back to the root).

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::reliability;
use scoop_sim::report;
use scoop_types::StoragePolicy;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Reliability (storage / query success, destination accuracy)", || {
        let rows = reliability(
            &base,
            &[StoragePolicy::Scoop, StoragePolicy::Local, StoragePolicy::Base],
            trials,
        )
        .expect("reliability");
        report::reliability_table(&rows)
    });
}
