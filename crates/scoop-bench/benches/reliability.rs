//! Regenerates the prose reliability numbers: the paper reports that about
//! 93 % of data messages are successfully stored, about 78 % of query results
//! are retrieved, and about 85 % of readings reach their designated owner
//! (the rest fall back to the root).

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Reliability);
}
