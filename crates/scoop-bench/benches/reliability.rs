//! Regenerates the prose reliability numbers: the paper reports that about
//! 93 % of data messages are successfully stored, about 78 % of query results
//! are retrieved, and about 85 % of readings reach their designated owner
//! (the rest fall back to the root).

use scoop_bench::bench_experiment;
use scoop_sim::experiments::reliability;
use scoop_sim::report;
use scoop_types::StoragePolicy;

fn main() {
    bench_experiment(
        "Reliability (storage / query success, destination accuracy)",
        |base, trials| {
            reliability(
                base,
                &[
                    StoragePolicy::Scoop,
                    StoragePolicy::Local,
                    StoragePolicy::Base,
                ],
                trials,
            )
        },
        |rows| report::reliability_table(rows),
    );
}
