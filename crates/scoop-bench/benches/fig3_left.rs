//! Regenerates Figure 3 (left): the testbed comparison of SCOOP/UNIQUE,
//! SCOOP/GAUSSIAN, LOCAL/GAUSSIAN, and BASE/GAUSSIAN.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::fig3_left;
use scoop_sim::report;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Figure 3 (left): testbed message breakdown", || {
        let rows = fig3_left(&base, trials).expect("fig3 left");
        report::fig3_table("policy/source breakdown", &rows)
    });
}
