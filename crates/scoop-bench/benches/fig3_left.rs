//! Regenerates Figure 3 (left): the testbed comparison of SCOOP/UNIQUE,
//! SCOOP/GAUSSIAN, LOCAL/GAUSSIAN, and BASE/GAUSSIAN.

use scoop_bench::fig3_bench;
use scoop_sim::experiments::fig3_left;

fn main() {
    fig3_bench("Figure 3 (left): testbed message breakdown", fig3_left);
}
