//! Regenerates Figure 3 (left): the testbed comparison bars.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Fig3Left);
}
