//! Ablation benches for the design choices DESIGN.md calls out: batching,
//! index suppression, the neighbor-shortcut routing rule, and the
//! store-local fallback.
//!
//! The REAL-trace suite goes through `scoop-lab` (artifact-emitting, same as
//! `scoop-lab run`); the EQUAL source is re-run directly on top of it because
//! batching on single-owner data is the paper's cleanest ablation signal.

use scoop_bench::{bench_options, regen, run_and_print};
use scoop_lab::ExperimentId;
use scoop_sim::experiments::ablation_rows;
use scoop_sim::report;
use scoop_types::DataSourceKind;

fn main() {
    regen(ExperimentId::Ablations);
    let options = bench_options(ExperimentId::Ablations);
    run_and_print("Ablations over the equal source", || {
        let rows = ablation_rows(
            &options.base_config().expect("base spec"),
            DataSourceKind::Equal,
            options.trials,
        )
        .unwrap_or_else(|e| panic!("ablations/equal failed: {e}"));
        report::ablation_table(&rows)
    });
}
