//! Ablation benches for the design choices DESIGN.md calls out: batching,
//! index suppression, the neighbor-shortcut routing rule, and the
//! store-local fallback.

use scoop_bench::bench_experiment;
use scoop_sim::experiments::ablation_rows;
use scoop_sim::report;
use scoop_types::DataSourceKind;

fn main() {
    for source in [DataSourceKind::Real, DataSourceKind::Equal] {
        bench_experiment(
            &format!("Ablations over the {source} source"),
            |base, trials| ablation_rows(base, source, trials),
            |rows| report::ablation_table(rows),
        );
    }
}
