//! Ablation benches for the design choices DESIGN.md calls out: batching,
//! index suppression, the neighbor-shortcut routing rule, and the
//! store-local fallback.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::ablation_rows;
use scoop_sim::report;
use scoop_types::DataSourceKind;

fn main() {
    let (base, trials) = bench_setup();
    for source in [DataSourceKind::Real, DataSourceKind::Equal] {
        run_and_print(&format!("Ablations over the {source} source"), || {
            let rows = ablation_rows(&base, source, trials).expect("ablations");
            report::ablation_table(&rows)
        });
    }
}
