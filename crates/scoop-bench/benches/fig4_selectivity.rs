//! Regenerates Figure 4: total cost as a function of the percentage of nodes
//! queried, for SCOOP, LOCAL, and BASE.

use scoop_bench::bench_experiment;
use scoop_sim::experiments::fig4::{default_width_fracs, fig4_selectivity};
use scoop_sim::report;

fn main() {
    bench_experiment(
        "Figure 4: cost vs % of nodes queried",
        |base, trials| fig4_selectivity(base, &default_width_fracs(), trials),
        |rows| report::fig4_table(rows),
    );
}
