//! Regenerates Figure 4: total cost as a function of the percentage of nodes
//! queried, for SCOOP, LOCAL, and BASE.

use scoop_bench::{bench_setup, run_and_print};
use scoop_sim::experiments::fig4::{default_width_fracs, fig4_selectivity};
use scoop_sim::report;

fn main() {
    let (base, trials) = bench_setup();
    run_and_print("Figure 4: cost vs % of nodes queried", || {
        let rows = fig4_selectivity(&base, &default_width_fracs(), trials).expect("fig4");
        report::fig4_table(&rows)
    });
}
