//! Regenerates Figure 4: total cost as a function of the percentage of nodes
//! queried, for SCOOP, LOCAL, and BASE.

use scoop_bench::regen;
use scoop_lab::ExperimentId;

fn main() {
    regen(ExperimentId::Fig4);
}
