//! Shared helpers for the benchmark harness.
//!
//! Every figure/table of the paper has a `cargo bench` target in this crate.
//! Most of them are *experiment regenerators*: plain binaries (with
//! `harness = false`) that run the corresponding experiment from
//! [`scoop_sim::experiments`] and print the same rows the paper plots,
//! because what matters is the *shape* of the result, not nanosecond timing.
//! The `index_build` target is a conventional Criterion micro-benchmark of
//! the `O(V · n²)` index-construction algorithm.
//!
//! Regenerators share one code path: [`bench_experiment`] reads the
//! environment, runs the experiment (internally parallelized by
//! `scoop_sim::sweep::SweepRunner`), and prints the rendered table with
//! wall-clock timing. The Figure 3 panels additionally share
//! [`fig3_bench`], since all three differ only in which experiment function
//! they call.
//!
//! Scale is controlled with environment variables so CI can stay fast:
//!
//! * `SCOOP_BENCH_QUICK=1` — run the 16-node / 12-minute configuration
//!   instead of the paper's 62-node / 40-minute one.
//! * `SCOOP_BENCH_TRIALS=n` — number of trials to average (default 3 at
//!   paper scale, 1 in quick mode).
//! * `SCOOP_SWEEP_THREADS=n` — worker threads for the underlying sweep
//!   (default: available parallelism).

#![warn(missing_docs)]

use scoop_sim::experiments::{self, Fig3Row};
use scoop_sim::report;
use scoop_types::{ExperimentConfig, ScoopError};
use std::time::Instant;

/// Returns the base configuration and trial count selected by the
/// environment (see crate docs).
pub fn bench_setup() -> (ExperimentConfig, usize) {
    let quick = std::env::var("SCOOP_BENCH_QUICK")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let base = if quick {
        experiments::quick_base()
    } else {
        experiments::paper_base()
    };
    let default_trials = if quick { 1 } else { 3 };
    let trials = std::env::var("SCOOP_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_trials);
    (base, trials)
}

/// Runs `f`, prints its output together with wall-clock timing, and a header
/// naming the experiment.
pub fn run_and_print<F>(name: &str, f: F)
where
    F: FnOnce() -> String,
{
    println!("==== {name} ====");
    let start = Instant::now();
    let table = f();
    let elapsed = start.elapsed();
    println!("{table}");
    println!("({name} regenerated in {:.1} s)\n", elapsed.as_secs_f64());
}

/// The shared regenerator skeleton: environment setup, experiment run, table
/// rendering, timing. Every non-criterion bench target is one call to this.
pub fn bench_experiment<R>(
    name: &str,
    run: impl FnOnce(&ExperimentConfig, usize) -> Result<R, ScoopError>,
    render: impl FnOnce(&R) -> String,
) {
    let (base, trials) = bench_setup();
    run_and_print(name, || {
        let rows = run(&base, trials).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        render(&rows)
    });
}

/// The shared body of the three Figure 3 panel benches, which differ only in
/// the experiment function they call.
pub fn fig3_bench(
    name: &str,
    panel: impl FnOnce(&ExperimentConfig, usize) -> Result<Vec<Fig3Row>, ScoopError>,
) {
    bench_experiment(name, panel, |rows| {
        report::fig3_table("policy/source breakdown", rows)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes every test that mutates the process-global environment;
    /// without it the harness's parallel test threads race on the env vars.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_setup_respects_env() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SCOOP_BENCH_QUICK", "1");
        std::env::set_var("SCOOP_BENCH_TRIALS", "2");
        let (cfg, trials) = bench_setup();
        assert_eq!(cfg.num_nodes, 16);
        assert_eq!(trials, 2);
        std::env::remove_var("SCOOP_BENCH_QUICK");
        std::env::remove_var("SCOOP_BENCH_TRIALS");
    }

    #[test]
    fn run_and_print_executes_closure() {
        let mut ran = false;
        run_and_print("noop", || {
            ran = true;
            "ok".to_string()
        });
        assert!(ran);
    }

    #[test]
    fn bench_experiment_threads_config_through() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SCOOP_BENCH_QUICK", "1");
        let mut seen_nodes = 0;
        bench_experiment(
            "probe",
            |cfg, trials| {
                seen_nodes = cfg.num_nodes;
                Ok::<usize, scoop_types::ScoopError>(trials)
            },
            |trials| format!("trials={trials}"),
        );
        assert_eq!(seen_nodes, 16);
        std::env::remove_var("SCOOP_BENCH_QUICK");
    }
}
