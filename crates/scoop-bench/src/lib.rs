//! Shared helpers for the benchmark harness.
//!
//! Every figure/table of the paper has a `cargo bench` target in this crate.
//! Most of them are *experiment regenerators*: plain binaries (with
//! `harness = false`) that run the corresponding experiment and print the
//! same rows the paper plots, because what matters is the *shape* of the
//! result, not nanosecond timing. The `index_build` target is a conventional
//! Criterion micro-benchmark of the `O(V · n²)` index-construction
//! algorithm.
//!
//! Regenerators share one code path with the `scoop-lab` CLI: [`regen`]
//! resolves the environment into a [`SuiteOptions`], runs the experiment
//! through `scoop_lab::suite` (internally parallelized by
//! `scoop_sim::sweep::SweepRunner`), prints the rendered table with
//! wall-clock timing — and, when asked, persists the run through the
//! [`ArtifactStore`](scoop_lab::ArtifactStore) so bench output feeds the
//! same `EXPERIMENTS.md` / regression pipeline as `scoop-lab run`.
//!
//! Scale is controlled with environment variables so CI can stay fast:
//!
//! * `SCOOP_BENCH_QUICK=1` — run the 16-node / 12-minute configuration
//!   instead of the paper's 62-node / 40-minute one.
//! * `SCOOP_BENCH_TRIALS=n` — number of trials to average (default 3 at
//!   paper scale, 1 in quick mode).
//! * `SCOOP_BENCH_ARTIFACTS=dir` — also write the run's artifact JSON into
//!   `dir` (same schema as `scoop-lab run --results=dir`).
//! * `SCOOP_SWEEP_THREADS=n` — worker threads for the underlying sweep
//!   (default: available parallelism).

#![warn(missing_docs)]

use scoop_lab::{ArtifactStore, ExperimentId, PointSet, Scale, SuiteOptions};
use std::time::Instant;

/// Returns the suite options selected by the environment (see crate docs).
pub fn bench_options(id: ExperimentId) -> SuiteOptions {
    let quick = std::env::var("SCOOP_BENCH_QUICK")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let default_trials = if quick { 1 } else { 3 };
    let trials = std::env::var("SCOOP_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_trials);
    SuiteOptions {
        scale,
        trials,
        seed: scale.base_config().seed,
        points: PointSet::Full,
        experiments: vec![id],
        overrides: Vec::new(),
    }
}

/// Runs `f`, prints its output together with wall-clock timing, and a header
/// naming the experiment.
pub fn run_and_print<F>(name: &str, f: F)
where
    F: FnOnce() -> String,
{
    println!("==== {name} ====");
    let start = Instant::now();
    let table = f();
    let elapsed = start.elapsed();
    println!("{table}");
    println!("({name} regenerated in {:.1} s)\n", elapsed.as_secs_f64());
}

/// The shared regenerator skeleton: environment setup, experiment run, table
/// rendering, timing, optional artifact emission. Every non-criterion bench
/// target is one call to this.
pub fn regen(id: ExperimentId) {
    let options = bench_options(id);
    run_and_print(id.title(), || {
        let artifacts = scoop_lab::run_suite(&options, |_| ())
            .unwrap_or_else(|e| panic!("{} failed: {e}", id.slug()));
        let artifact = artifacts.into_iter().next().expect("one experiment");
        let mut table = artifact.rows.table(id.title());
        if let Ok(dir) = std::env::var("SCOOP_BENCH_ARTIFACTS") {
            let store = ArtifactStore::new(dir);
            match store.save(&artifact) {
                Ok(path) => table.push_str(&format!("(artifact: {})\n", path.display())),
                Err(e) => panic!("{}: artifact emission failed: {e}", id.slug()),
            }
        }
        table
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes every test that mutates the process-global environment;
    /// without it the harness's parallel test threads race on the env vars.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_options_respect_env() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("SCOOP_BENCH_QUICK", "1");
        std::env::set_var("SCOOP_BENCH_TRIALS", "2");
        let options = bench_options(ExperimentId::Fig3Middle);
        assert_eq!(options.scale, Scale::Quick);
        assert_eq!(options.base_config().unwrap().num_nodes, 16);
        assert_eq!(options.trials, 2);
        assert_eq!(options.experiments, vec![ExperimentId::Fig3Middle]);
        std::env::remove_var("SCOOP_BENCH_QUICK");
        std::env::remove_var("SCOOP_BENCH_TRIALS");
        let options = bench_options(ExperimentId::Fig4);
        assert_eq!(options.scale, Scale::Paper);
        assert_eq!(options.trials, 3);
    }

    #[test]
    fn run_and_print_executes_closure() {
        let mut ran = false;
        run_and_print("noop", || {
            ran = true;
            "ok".to_string()
        });
        assert!(ran);
    }

    #[test]
    fn regen_emits_an_artifact_when_asked() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("scoop-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("SCOOP_BENCH_QUICK", "1");
        std::env::set_var("SCOOP_BENCH_TRIALS", "1");
        std::env::set_var("SCOOP_BENCH_ARTIFACTS", &dir);
        regen(ExperimentId::Fig5);
        std::env::remove_var("SCOOP_BENCH_ARTIFACTS");
        std::env::remove_var("SCOOP_BENCH_TRIALS");
        std::env::remove_var("SCOOP_BENCH_QUICK");
        let artifact = ArtifactStore::new(&dir).load("fig5").unwrap();
        assert_eq!(artifact.experiment, "fig5");
        assert_eq!(artifact.scale, "quick");
        assert!(!artifact.rows.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
