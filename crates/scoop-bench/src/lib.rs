//! Shared helpers for the benchmark harness.
//!
//! Every figure/table of the paper has a `cargo bench` target in this crate.
//! Most of them are *experiment regenerators*: plain binaries (with
//! `harness = false`) that run the corresponding experiment from
//! [`scoop_sim::experiments`] and print the same rows the paper plots,
//! because what matters is the *shape* of the result, not nanosecond timing.
//! The `index_build` target is a conventional Criterion micro-benchmark of
//! the `O(V · n²)` index-construction algorithm.
//!
//! Scale is controlled with environment variables so CI can stay fast:
//!
//! * `SCOOP_BENCH_QUICK=1` — run the 16-node / 12-minute configuration
//!   instead of the paper's 62-node / 40-minute one.
//! * `SCOOP_BENCH_TRIALS=n` — number of trials to average (default 3 at
//!   paper scale, 1 in quick mode).

#![warn(missing_docs)]

use scoop_sim::experiments;
use scoop_types::ExperimentConfig;
use std::time::Instant;

/// Returns the base configuration and trial count selected by the
/// environment (see crate docs).
pub fn bench_setup() -> (ExperimentConfig, usize) {
    let quick = std::env::var("SCOOP_BENCH_QUICK")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let base = if quick {
        experiments::quick_base()
    } else {
        experiments::paper_base()
    };
    let default_trials = if quick { 1 } else { 3 };
    let trials = std::env::var("SCOOP_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_trials);
    (base, trials)
}

/// Runs `f`, prints its output together with wall-clock timing, and a header
/// naming the experiment.
pub fn run_and_print<F>(name: &str, f: F)
where
    F: FnOnce() -> String,
{
    println!("==== {name} ====");
    let start = Instant::now();
    let table = f();
    let elapsed = start.elapsed();
    println!("{table}");
    println!("({name} regenerated in {:.1} s)\n", elapsed.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_respects_env() {
        std::env::set_var("SCOOP_BENCH_QUICK", "1");
        std::env::set_var("SCOOP_BENCH_TRIALS", "2");
        let (cfg, trials) = bench_setup();
        assert_eq!(cfg.num_nodes, 16);
        assert_eq!(trials, 2);
        std::env::remove_var("SCOOP_BENCH_QUICK");
        std::env::remove_var("SCOOP_BENCH_TRIALS");
    }

    #[test]
    fn run_and_print_executes_closure() {
        let mut ran = false;
        run_and_print("noop", || {
            ran = true;
            "ok".to_string()
        });
        assert!(ran);
    }
}
