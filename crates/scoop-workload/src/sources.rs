//! The five sensor data sources from Section 6.
//!
//! Every source is a *pure function* of its construction parameters and the
//! `(node, now)` sample coordinates: per-sample randomness is derived by
//! hashing `(seed, node, now)` rather than by advancing shared generator
//! state. Two sources built from the same arguments therefore return
//! identical values no matter how calls interleave — which is what lets the
//! simulation give every node its own owned copy (no `Rc<RefCell<...>>`
//! sharing, every run is `Send`) and still behave exactly like a single
//! shared source.

use crate::real_trace::RealTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{DataSourceKind, NodeId, SimTime, Value, ValueRange};
use std::sync::Arc;

/// A generator of sensor readings for every node in the network.
///
/// Implementations must be deterministic given their construction arguments:
/// the same `(node, now)` pair always produces the same value, independent of
/// call order. This order-independence is load-bearing — the scenario runner
/// builds one owned copy per node and relies on copies agreeing.
pub trait DataSource: Send {
    /// Which of the paper's data sources this is.
    fn kind(&self) -> DataSourceKind;

    /// The value domain readings are drawn from.
    fn domain(&self) -> ValueRange;

    /// Samples the sensor of `node` at time `now`.
    fn sample(&mut self, node: NodeId, now: SimTime) -> Value;

    /// Cheap copy of this source. Copies agree exactly with the original
    /// (sources are pure in `(node, now)`); bulky immutable state such as the
    /// REAL trace's toggle schedules is shared behind an `Arc`.
    fn clone_box(&self) -> Box<dyn DataSource>;
}

/// SplitMix64 finalizer: one 64-bit hash step.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes the per-sample coordinates into one 64-bit value.
pub(crate) fn sample_hash(seed: u64, node: NodeId, now: SimTime, salt: u64) -> u64 {
    mix64(mix64(mix64(seed ^ salt) ^ node.0 as u64) ^ now.as_millis())
}

/// Maps a hash to a uniform float in `[0, 1)`.
pub(crate) fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Approximate standard normal from a hash (Irwin–Hall sum of 12 uniforms).
fn std_normal(h: u64) -> f64 {
    let mut state = h;
    let mut sum = 0.0;
    for _ in 0..12 {
        state = mix64(state);
        sum += unit_f64(state);
    }
    sum - 6.0
}

/// UNIQUE: each node always produces its own node id.
#[derive(Clone, Debug)]
pub struct UniqueSource {
    domain: ValueRange,
}

impl UniqueSource {
    /// Creates the source over the given domain.
    pub fn new(domain: ValueRange) -> Self {
        UniqueSource { domain }
    }
}

impl DataSource for UniqueSource {
    fn clone_box(&self) -> Box<dyn DataSource> {
        Box::new(self.clone())
    }
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Unique
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, node: NodeId, _now: SimTime) -> Value {
        (self.domain.lo + node.0 as Value).min(self.domain.hi)
    }
}

/// EQUAL: all nodes produce the same constant value for the whole run.
#[derive(Clone, Debug)]
pub struct EqualSource {
    domain: ValueRange,
    value: Value,
}

impl EqualSource {
    /// Creates the source; the shared constant is drawn from the domain using
    /// `seed` so different trials differ.
    pub fn new(domain: ValueRange, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe10a1);
        let value = rng.gen_range(domain.lo..=domain.hi);
        EqualSource { domain, value }
    }

    /// The constant value every node produces.
    pub fn value(&self) -> Value {
        self.value
    }
}

impl DataSource for EqualSource {
    fn clone_box(&self) -> Box<dyn DataSource> {
        Box::new(self.clone())
    }
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Equal
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, _node: NodeId, _now: SimTime) -> Value {
        self.value
    }
}

/// RANDOM: uniformly random values, no temporal or spatial structure at all.
#[derive(Clone, Debug)]
pub struct RandomSource {
    domain: ValueRange,
    seed: u64,
}

impl RandomSource {
    /// Creates the source.
    pub fn new(domain: ValueRange, seed: u64) -> Self {
        RandomSource { domain, seed }
    }
}

impl DataSource for RandomSource {
    fn clone_box(&self) -> Box<dyn DataSource> {
        Box::new(self.clone())
    }
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Random
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, node: NodeId, now: SimTime) -> Value {
        let width = self.domain.width();
        let h = sample_hash(self.seed, node, now, 0x4a4d04);
        self.domain.lo + (h % width) as Value
    }
}

/// GAUSSIAN: each node has a fixed mean drawn uniformly from the domain and
/// produces readings from a Gaussian with variance 10 around it.
#[derive(Clone, Debug)]
pub struct GaussianSource {
    domain: ValueRange,
    means: Arc<Vec<f64>>,
    std_dev: f64,
    seed: u64,
}

impl GaussianSource {
    /// Creates the source for `num_nodes + 1` nodes (the basestation never
    /// samples but keeping slot 0 keeps indexing simple).
    pub fn new(domain: ValueRange, num_nodes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a55);
        let means = (0..=num_nodes)
            .map(|_| rng.gen_range(domain.lo as f64..=domain.hi as f64))
            .collect();
        GaussianSource {
            domain,
            means: Arc::new(means),
            // Paper: "variance of 10" → standard deviation sqrt(10).
            std_dev: 10.0_f64.sqrt(),
            seed,
        }
    }

    /// The per-node mean (for tests).
    pub fn mean_of(&self, node: NodeId) -> Option<f64> {
        self.means.get(node.index()).copied()
    }
}

impl DataSource for GaussianSource {
    fn clone_box(&self) -> Box<dyn DataSource> {
        Box::new(self.clone())
    }
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Gaussian
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, node: NodeId, now: SimTime) -> Value {
        let mean = self
            .means
            .get(node.index())
            .copied()
            .unwrap_or((self.domain.lo + self.domain.hi) as f64 / 2.0);
        let h = sample_hash(self.seed, node, now, 0x6a555a);
        let v = (mean + self.std_dev * std_normal(h)).round() as Value;
        v.clamp(self.domain.lo, self.domain.hi)
    }
}

/// Constructs the data source for an experiment.
///
/// * `kind` — which of the paper's sources to build;
/// * `domain` — attribute value domain (the synthetic sources use `[0, 100]`
///   in the paper; REAL uses ~150 values);
/// * `num_nodes` — sensor count (excluding the basestation);
/// * `seed` — all randomness derives from this.
///
/// Sources are pure in `(node, now)`, so callers that need one source per
/// node (the simulation harness does) simply call this once per node with
/// identical arguments.
pub fn make_source(
    kind: DataSourceKind,
    domain: ValueRange,
    num_nodes: usize,
    seed: u64,
) -> Box<dyn DataSource> {
    match kind {
        DataSourceKind::Unique => Box::new(UniqueSource::new(domain)),
        DataSourceKind::Equal => Box::new(EqualSource::new(domain, seed)),
        DataSourceKind::Random => Box::new(RandomSource::new(domain, seed)),
        DataSourceKind::Gaussian => Box::new(GaussianSource::new(domain, num_nodes, seed)),
        DataSourceKind::Real => Box::new(RealTrace::new(domain, num_nodes, seed)),
    }
}

/// Builds the data source named by a [`WorkloadSpec`](scoop_types::WorkloadSpec)
/// over its value domain — the spec-driven twin of [`make_source`] used by
/// `scoop_sim::SimBuilder`.
pub fn make_source_for(
    workload: &scoop_types::WorkloadSpec,
    num_nodes: usize,
    seed: u64,
) -> Box<dyn DataSource> {
    make_source(workload.data_source, workload.value_domain, num_nodes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 100 };

    #[test]
    fn unique_source_returns_node_id() {
        let mut s = UniqueSource::new(DOMAIN);
        assert_eq!(s.sample(NodeId(7), SimTime::ZERO), 7);
        assert_eq!(s.sample(NodeId(42), SimTime::from_secs(99)), 42);
        // Values are clamped into the domain.
        assert_eq!(s.sample(NodeId(120), SimTime::ZERO), 100);
    }

    #[test]
    fn equal_source_is_constant_across_nodes_and_time() {
        let mut s = EqualSource::new(DOMAIN, 3);
        let v = s.sample(NodeId(1), SimTime::ZERO);
        for n in 1..20u16 {
            for t in 0..5 {
                assert_eq!(s.sample(NodeId(n), SimTime::from_secs(t)), v);
            }
        }
        assert!(DOMAIN.contains(v));
    }

    #[test]
    fn random_source_covers_domain_without_structure() {
        let mut s = RandomSource::new(DOMAIN, 5);
        let vals: Vec<Value> = (0..2000)
            .map(|i| s.sample(NodeId(1), SimTime::from_secs(i)))
            .collect();
        assert!(vals.iter().all(|v| DOMAIN.contains(*v)));
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 60, "should cover most of the domain");
    }

    #[test]
    fn gaussian_source_clusters_around_per_node_mean() {
        let mut s = GaussianSource::new(DOMAIN, 30, 7);
        for n in [1u16, 5, 20] {
            let mean = s.mean_of(NodeId(n)).unwrap();
            let vals: Vec<Value> = (0..200)
                .map(|i| s.sample(NodeId(n), SimTime::from_secs(i)))
                .collect();
            let avg = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
            assert!(
                (avg - mean.clamp(0.0, 100.0)).abs() < 3.0,
                "node {n}: sample mean {avg} vs configured {mean}"
            );
            // Variance 10 → almost everything within ±4σ ≈ 12.6 of the mean.
            assert!(vals
                .iter()
                .all(|&v| (v as f64 - mean).abs() < 15.0 || v == 0 || v == 100));
        }
    }

    #[test]
    fn gaussian_means_differ_between_nodes() {
        let s = GaussianSource::new(DOMAIN, 30, 7);
        let m1 = s.mean_of(NodeId(1)).unwrap();
        let distinct = (2..=30).any(|n| (s.mean_of(NodeId(n)).unwrap() - m1).abs() > 1.0);
        assert!(distinct);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in DataSourceKind::ALL {
            let mut s = make_source(kind, DOMAIN, 16, 1);
            assert_eq!(s.kind(), kind);
            let v = s.sample(NodeId(3), SimTime::from_secs(30));
            assert!(s.domain().contains(v), "{kind}: {v} outside domain");
        }
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        for kind in DataSourceKind::ALL {
            let mut a = make_source(kind, DOMAIN, 16, 9);
            let mut b = make_source(kind, DOMAIN, 16, 9);
            for t in 0..50 {
                let node = NodeId((t % 16 + 1) as u16);
                assert_eq!(
                    a.sample(node, SimTime::from_secs(t * 15)),
                    b.sample(node, SimTime::from_secs(t * 15)),
                    "{kind} not deterministic"
                );
            }
        }
    }

    /// The property the parallel scenario runner depends on: sampling is a
    /// pure function of `(node, now)`, so interleaving order cannot matter
    /// and per-node copies agree with any shared-source call sequence.
    #[test]
    fn sources_are_order_independent() {
        for kind in DataSourceKind::ALL {
            // `a` samples nodes in interleaved order; `b` samples one node at
            // a time. Every (node, time) coordinate must agree.
            let mut a = make_source(kind, DOMAIN, 8, 11);
            let mut b = make_source(kind, DOMAIN, 8, 11);
            let coords: Vec<(NodeId, SimTime)> = (0..40)
                .map(|i| (NodeId((i % 8 + 1) as u16), SimTime::from_secs(i * 7)))
                .collect();
            let interleaved: Vec<Value> = coords.iter().map(|&(n, t)| a.sample(n, t)).collect();
            let mut by_node: std::collections::HashMap<(u16, u64), Value> =
                std::collections::HashMap::new();
            for node in 1..=8u16 {
                for &(n, t) in &coords {
                    if n.0 == node {
                        by_node.insert((n.0, t.as_millis()), b.sample(n, t));
                    }
                }
            }
            for (&(n, t), got) in coords.iter().zip(&interleaved) {
                assert_eq!(
                    by_node[&(n.0, t.as_millis())],
                    *got,
                    "{kind}: order dependence at node {n}, t={t}"
                );
            }
        }
    }
}
