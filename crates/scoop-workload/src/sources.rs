//! The five sensor data sources from Section 6.

use crate::real_trace::RealTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use scoop_types::{DataSourceKind, NodeId, SimTime, Value, ValueRange};

/// A generator of sensor readings for every node in the network.
///
/// Implementations must be deterministic given their construction seed: the
/// same `(node, now)` call sequence produces the same values.
pub trait DataSource: Send {
    /// Which of the paper's data sources this is.
    fn kind(&self) -> DataSourceKind;

    /// The value domain readings are drawn from.
    fn domain(&self) -> ValueRange;

    /// Samples the sensor of `node` at time `now`.
    fn sample(&mut self, node: NodeId, now: SimTime) -> Value;
}

/// UNIQUE: each node always produces its own node id.
#[derive(Clone, Debug)]
pub struct UniqueSource {
    domain: ValueRange,
}

impl UniqueSource {
    /// Creates the source over the given domain.
    pub fn new(domain: ValueRange) -> Self {
        UniqueSource { domain }
    }
}

impl DataSource for UniqueSource {
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Unique
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, node: NodeId, _now: SimTime) -> Value {
        (self.domain.lo + node.0 as Value).min(self.domain.hi)
    }
}

/// EQUAL: all nodes produce the same constant value for the whole run.
#[derive(Clone, Debug)]
pub struct EqualSource {
    domain: ValueRange,
    value: Value,
}

impl EqualSource {
    /// Creates the source; the shared constant is drawn from the middle of
    /// the domain using `seed` so different trials differ.
    pub fn new(domain: ValueRange, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe10a_1);
        let value = rng.gen_range(domain.lo..=domain.hi);
        EqualSource { domain, value }
    }

    /// The constant value every node produces.
    pub fn value(&self) -> Value {
        self.value
    }
}

impl DataSource for EqualSource {
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Equal
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, _node: NodeId, _now: SimTime) -> Value {
        self.value
    }
}

/// RANDOM: uniformly random values, no temporal or spatial structure at all.
#[derive(Clone, Debug)]
pub struct RandomSource {
    domain: ValueRange,
    rng: StdRng,
}

impl RandomSource {
    /// Creates the source.
    pub fn new(domain: ValueRange, seed: u64) -> Self {
        RandomSource {
            domain,
            rng: StdRng::seed_from_u64(seed ^ 0x4a4d_04),
        }
    }
}

impl DataSource for RandomSource {
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Random
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, _node: NodeId, _now: SimTime) -> Value {
        self.rng.gen_range(self.domain.lo..=self.domain.hi)
    }
}

/// GAUSSIAN: each node has a fixed mean drawn uniformly from the domain and
/// produces readings from a Gaussian with variance 10 around it.
#[derive(Clone, Debug)]
pub struct GaussianSource {
    domain: ValueRange,
    means: Vec<f64>,
    std_dev: f64,
    rng: StdRng,
}

impl GaussianSource {
    /// Creates the source for `num_nodes + 1` nodes (the basestation never
    /// samples but keeping slot 0 keeps indexing simple).
    pub fn new(domain: ValueRange, num_nodes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a55);
        let means = (0..=num_nodes)
            .map(|_| rng.gen_range(domain.lo as f64..=domain.hi as f64))
            .collect();
        GaussianSource {
            domain,
            means,
            // Paper: "variance of 10" → standard deviation sqrt(10).
            std_dev: 10.0_f64.sqrt(),
            rng,
        }
    }

    /// The per-node mean (for tests).
    pub fn mean_of(&self, node: NodeId) -> Option<f64> {
        self.means.get(node.index()).copied()
    }
}

impl DataSource for GaussianSource {
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Gaussian
    }
    fn domain(&self) -> ValueRange {
        self.domain
    }
    fn sample(&mut self, node: NodeId, _now: SimTime) -> Value {
        let mean = self
            .means
            .get(node.index())
            .copied()
            .unwrap_or((self.domain.lo + self.domain.hi) as f64 / 2.0);
        let normal = Normal::new(mean, self.std_dev).expect("valid normal");
        let v = normal.sample(&mut self.rng).round() as Value;
        v.clamp(self.domain.lo, self.domain.hi)
    }
}

/// Constructs the data source for an experiment.
///
/// * `kind` — which of the paper's sources to build;
/// * `domain` — attribute value domain (the synthetic sources use `[0, 100]`
///   in the paper; REAL uses ~150 values);
/// * `num_nodes` — sensor count (excluding the basestation);
/// * `seed` — all randomness derives from this.
pub fn make_source(
    kind: DataSourceKind,
    domain: ValueRange,
    num_nodes: usize,
    seed: u64,
) -> Box<dyn DataSource> {
    match kind {
        DataSourceKind::Unique => Box::new(UniqueSource::new(domain)),
        DataSourceKind::Equal => Box::new(EqualSource::new(domain, seed)),
        DataSourceKind::Random => Box::new(RandomSource::new(domain, seed)),
        DataSourceKind::Gaussian => Box::new(GaussianSource::new(domain, num_nodes, seed)),
        DataSourceKind::Real => Box::new(RealTrace::new(domain, num_nodes, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 100 };

    #[test]
    fn unique_source_returns_node_id() {
        let mut s = UniqueSource::new(DOMAIN);
        assert_eq!(s.sample(NodeId(7), SimTime::ZERO), 7);
        assert_eq!(s.sample(NodeId(42), SimTime::from_secs(99)), 42);
        // Values are clamped into the domain.
        assert_eq!(s.sample(NodeId(120), SimTime::ZERO), 100);
    }

    #[test]
    fn equal_source_is_constant_across_nodes_and_time() {
        let mut s = EqualSource::new(DOMAIN, 3);
        let v = s.sample(NodeId(1), SimTime::ZERO);
        for n in 1..20u16 {
            for t in 0..5 {
                assert_eq!(s.sample(NodeId(n), SimTime::from_secs(t)), v);
            }
        }
        assert!(DOMAIN.contains(v));
    }

    #[test]
    fn random_source_covers_domain_without_structure() {
        let mut s = RandomSource::new(DOMAIN, 5);
        let vals: Vec<Value> = (0..2000).map(|i| s.sample(NodeId(1), SimTime::from_secs(i))).collect();
        assert!(vals.iter().all(|v| DOMAIN.contains(*v)));
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 60, "should cover most of the domain");
    }

    #[test]
    fn gaussian_source_clusters_around_per_node_mean() {
        let mut s = GaussianSource::new(DOMAIN, 30, 7);
        for n in [1u16, 5, 20] {
            let mean = s.mean_of(NodeId(n)).unwrap();
            let vals: Vec<Value> = (0..200).map(|i| s.sample(NodeId(n), SimTime::from_secs(i))).collect();
            let avg = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
            assert!(
                (avg - mean.clamp(0.0, 100.0)).abs() < 3.0,
                "node {n}: sample mean {avg} vs configured {mean}"
            );
            // Variance 10 → almost everything within ±4σ ≈ 12.6 of the mean.
            assert!(vals
                .iter()
                .all(|&v| (v as f64 - mean).abs() < 15.0 || v == 0 || v == 100));
        }
    }

    #[test]
    fn gaussian_means_differ_between_nodes() {
        let s = GaussianSource::new(DOMAIN, 30, 7);
        let m1 = s.mean_of(NodeId(1)).unwrap();
        let distinct = (2..=30).any(|n| (s.mean_of(NodeId(n)).unwrap() - m1).abs() > 1.0);
        assert!(distinct);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in DataSourceKind::ALL {
            let mut s = make_source(kind, DOMAIN, 16, 1);
            assert_eq!(s.kind(), kind);
            let v = s.sample(NodeId(3), SimTime::from_secs(30));
            assert!(s.domain().contains(v), "{kind}: {v} outside domain");
        }
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        for kind in DataSourceKind::ALL {
            let mut a = make_source(kind, DOMAIN, 16, 9);
            let mut b = make_source(kind, DOMAIN, 16, 9);
            for t in 0..50 {
                let node = NodeId((t % 16 + 1) as u16);
                assert_eq!(
                    a.sample(node, SimTime::from_secs(t * 15)),
                    b.sample(node, SimTime::from_secs(t * 15)),
                    "{kind} not deterministic"
                );
            }
        }
    }
}
