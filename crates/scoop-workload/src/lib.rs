//! Workload generation: sensor data sources and query workloads.
//!
//! The paper drives its experiments with five data sources (Section 6):
//!
//! | name     | behaviour                                                        |
//! |----------|------------------------------------------------------------------|
//! | REAL     | replay of a real, highly correlated indoor light trace            |
//! | UNIQUE   | every node always produces its own node id                        |
//! | EQUAL    | every node produces the same constant value                       |
//! | RANDOM   | uniformly random values in `[0, 100]`                             |
//! | GAUSSIAN | per-node mean drawn from `[0, 100]`, readings ~ N(mean, var 10)   |
//!
//! The original REAL workload replayed the Intel Lab light trace, which we do
//! not redistribute; [`real_trace::RealTrace`] synthesizes an equivalent
//! trace with the two properties Scoop exploits — temporal stationarity on
//! each node and spatial correlation between nearby nodes — over a ~150-value
//! domain (see DESIGN.md, "Substitutions").
//!
//! Queries are value-range queries covering 1–5 % of the attribute domain by
//! default, issued every 15 seconds ([`queries::QueryGenerator`]).

#![warn(missing_docs)]

pub mod evaluate;
pub mod queries;
pub mod real_trace;
pub mod sources;

pub use queries::{QueryGenerator, QuerySpec};
pub use real_trace::RealTrace;
pub use sources::{make_source, make_source_for, DataSource};
