//! A synthetic stand-in for the Intel Lab light trace ("REAL" / "FILE"
//! workload).
//!
//! The paper replays "a trace of real light data collected from a 50-node
//! indoor sensor network deployment. ... Because these sensors were deployed
//! in the same building, their light readings are highly correlated."
//! (Section 6). We cannot redistribute that trace, so this module generates
//! an equivalent one with the two properties Scoop's index exploits:
//!
//! * **temporal stationarity** — a node's readings drift slowly, so its
//!   recent histogram predicts its near-future values;
//! * **spatial correlation** — nodes in the same region (adjacent node ids on
//!   the office-floor layout) see similar light levels, so a handful of
//!   owners can cover many producers.
//!
//! The generated signal is: a shared diurnal component (slow sinusoid over
//! the run), plus a smooth per-region offset (nodes are grouped into rooms of
//! `ROOM_SIZE` consecutive ids that share a lighting state), plus occasional
//! room-level step changes (lights switched on/off), plus small per-sample
//! noise. Values are clamped to the configured domain (~150 distinct values,
//! matching the paper's V ≈ 150).
//!
//! The whole trace — including every room's light-toggle schedule — is fixed
//! at construction time from the seed, and per-sample noise is hashed from
//! `(seed, node, now)`. Sampling is therefore a pure function of
//! `(node, now)`: per-node copies of the trace agree exactly, which is the
//! contract the parallel scenario runner relies on (see
//! [`DataSource`](crate::sources::DataSource)).

use crate::sources::{sample_hash, unit_f64, DataSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{DataSourceKind, NodeId, SimTime, Value, ValueRange};
use std::sync::Arc;

/// Number of consecutive node ids that share a "room" (and therefore a
/// lighting state).
const ROOM_SIZE: usize = 6;

/// How often (on average) a room's lights toggle, in seconds of simulated time.
const TOGGLE_MEAN_SECS: f64 = 600.0;

/// Toggle schedules are materialized out to this simulated horizon (far
/// longer than any experiment run); beyond it rooms keep toggling on a
/// regular `TOGGLE_MEAN_SECS` cadence (see [`RoomState::lights_on`]).
const SCHEDULE_HORIZON_SECS: f64 = 400_000.0;

#[derive(Clone, Debug)]
struct RoomState {
    /// Baseline light level of the room as a fraction of the domain.
    baseline: f64,
    /// Whether the artificial lights start out on.
    initially_on: bool,
    /// Ascending times (seconds) at which the lights flip, fixed at
    /// construction so sampling never mutates shared state.
    toggles: Vec<f64>,
}

impl RoomState {
    fn lights_on(&self, now_secs: f64) -> bool {
        let mut flips = self.toggles.partition_point(|&t| t <= now_secs);
        // Past the materialized schedule the lights keep toggling on a
        // regular cadence (rather than silently freezing), so arbitrarily
        // long runs retain temporal dynamics while staying pure.
        if let Some(&last) = self.toggles.last() {
            if now_secs > last {
                flips += ((now_secs - last) / TOGGLE_MEAN_SECS) as usize;
            }
        }
        self.initially_on ^ (flips % 2 == 1)
    }
}

/// Synthetic, spatially and temporally correlated light trace.
#[derive(Clone, Debug)]
pub struct RealTrace {
    domain: ValueRange,
    rooms: Arc<Vec<RoomState>>,
    /// Per-node fixed offset within its room (sensor placement / calibration).
    node_offset: Arc<Vec<f64>>,
    /// Amplitude of the shared diurnal component, as a fraction of the domain.
    diurnal_amplitude: f64,
    /// Period of the diurnal component in seconds. Chosen shorter than a real
    /// day so that a 40-minute experiment sees meaningful drift.
    diurnal_period_secs: f64,
    noise_std: f64,
    seed: u64,
}

impl RealTrace {
    /// Creates a trace generator for `num_nodes` sensors over `domain`.
    pub fn new(domain: ValueRange, num_nodes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4ea111);
        let num_rooms = (num_nodes + 1).div_ceil(ROOM_SIZE).max(1);
        let rooms = (0..num_rooms)
            .map(|_| {
                let baseline = rng.gen_range(0.25..0.75);
                let initially_on = rng.gen_bool(0.6);
                let mut toggles = Vec::new();
                let mut next = rng.gen_range(0.0..TOGGLE_MEAN_SECS * 2.0);
                while next < SCHEDULE_HORIZON_SECS {
                    toggles.push(next);
                    next += rng.gen_range(TOGGLE_MEAN_SECS * 0.5..TOGGLE_MEAN_SECS * 1.5);
                }
                RoomState {
                    baseline,
                    initially_on,
                    toggles,
                }
            })
            .collect();
        let node_offset = (0..=num_nodes)
            .map(|_| rng.gen_range(-0.06..0.06))
            .collect();
        RealTrace {
            domain,
            rooms: Arc::new(rooms),
            node_offset: Arc::new(node_offset),
            diurnal_amplitude: 0.18,
            diurnal_period_secs: 3_600.0,
            noise_std: 0.015,
            seed,
        }
    }

    fn room_of(&self, node: NodeId) -> usize {
        (node.index() / ROOM_SIZE).min(self.rooms.len() - 1)
    }
}

impl DataSource for RealTrace {
    fn clone_box(&self) -> Box<dyn DataSource> {
        Box::new(self.clone())
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Real
    }

    fn domain(&self) -> ValueRange {
        self.domain
    }

    fn sample(&mut self, node: NodeId, now: SimTime) -> Value {
        let now_secs = now.as_secs_f64();
        let room_state = &self.rooms[self.room_of(node)];

        let diurnal = self.diurnal_amplitude
            * (2.0 * std::f64::consts::PI * now_secs / self.diurnal_period_secs).sin();
        let lights = if room_state.lights_on(now_secs) {
            0.22
        } else {
            0.0
        };
        let offset = self.node_offset.get(node.index()).copied().unwrap_or(0.0);
        let h = sample_hash(self.seed, node, now, 0x4ea15e);
        let noise = (unit_f64(h) * 2.0 - 1.0) * self.noise_std;

        let frac = (room_state.baseline + diurnal + lights + offset + noise).clamp(0.0, 1.0);
        let span = (self.domain.hi - self.domain.lo) as f64;
        (self.domain.lo as f64 + frac * span).round() as Value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 149 };

    fn collect_series(trace: &mut RealTrace, node: NodeId, samples: usize) -> Vec<Value> {
        (0..samples)
            .map(|i| trace.sample(node, SimTime::from_secs(i as u64 * 15)))
            .collect()
    }

    #[test]
    fn values_stay_in_domain() {
        let mut t = RealTrace::new(DOMAIN, 62, 1);
        for n in 1..=62u16 {
            for i in 0..50 {
                let v = t.sample(NodeId(n), SimTime::from_secs(i * 15));
                assert!(DOMAIN.contains(v), "node {n}: {v}");
            }
        }
    }

    #[test]
    fn temporal_correlation_consecutive_samples_are_close() {
        let mut t = RealTrace::new(DOMAIN, 62, 2);
        let series = collect_series(&mut t, NodeId(10), 80);
        let mut small_steps = 0;
        for w in series.windows(2) {
            if (w[0] - w[1]).abs() <= 15 {
                small_steps += 1;
            }
        }
        // The vast majority of 15-second steps are small; only light toggles
        // produce jumps.
        assert!(
            small_steps as f64 / (series.len() - 1) as f64 > 0.85,
            "only {small_steps}/{} steps were small",
            series.len() - 1
        );
    }

    #[test]
    fn spatial_correlation_same_room_nodes_track_each_other() {
        let mut t = RealTrace::new(DOMAIN, 62, 3);
        // Nodes 12 and 13 share a room; 12 and 40 do not.
        let mut same_diffs = Vec::new();
        let mut far_diffs = Vec::new();
        for i in 0..60u64 {
            let now = SimTime::from_secs(i * 15);
            let a = t.sample(NodeId(12), now);
            let b = t.sample(NodeId(13), now);
            let c = t.sample(NodeId(40), now);
            same_diffs.push((a - b).abs() as f64);
            far_diffs.push((a - c).abs() as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same_diffs) < mean(&far_diffs) + 1.0,
            "same-room difference {} should not exceed cross-room difference {}",
            mean(&same_diffs),
            mean(&far_diffs)
        );
        assert!(mean(&same_diffs) < 20.0, "same-room nodes should be close");
    }

    #[test]
    fn different_rooms_have_different_levels() {
        let mut t = RealTrace::new(DOMAIN, 62, 4);
        let now = SimTime::from_secs(300);
        let values: Vec<Value> = (1..=62u16).map(|n| t.sample(NodeId(n), now)).collect();
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        assert!(
            distinct.len() > 8,
            "the network should see a spread of light levels"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RealTrace::new(DOMAIN, 30, 9);
        let mut b = RealTrace::new(DOMAIN, 30, 9);
        for i in 0..40u64 {
            let n = NodeId((i % 30 + 1) as u16);
            assert_eq!(
                a.sample(n, SimTime::from_secs(i * 15)),
                b.sample(n, SimTime::from_secs(i * 15))
            );
        }
    }

    #[test]
    fn sampling_never_mutates_observable_state() {
        // Two copies disagree only if sampling mutates shared state; hammer
        // one copy, then check it still agrees with a fresh one.
        let mut a = RealTrace::new(DOMAIN, 12, 6);
        for i in 0..500u64 {
            a.sample(NodeId((i % 12 + 1) as u16), SimTime::from_secs(i * 3));
        }
        let mut fresh = RealTrace::new(DOMAIN, 12, 6);
        for i in 0..50u64 {
            let n = NodeId((i % 12 + 1) as u16);
            let t = SimTime::from_secs(i * 15);
            assert_eq!(a.sample(n, t), fresh.sample(n, t));
        }
    }

    #[test]
    fn lights_keep_toggling_beyond_schedule_horizon() {
        let mut t = RealTrace::new(DOMAIN, 12, 5);
        // Sample a window starting well past SCHEDULE_HORIZON_SECS; room
        // light toggles must still produce visible jumps there.
        let base = 500_000u64;
        let series: Vec<Value> = (0..400)
            .map(|i| t.sample(NodeId(3), SimTime::from_secs(base + i * 15)))
            .collect();
        let max_jump = series
            .windows(2)
            .map(|w| (w[0] - w[1]).abs())
            .max()
            .unwrap();
        assert!(
            max_jump > 15,
            "lights froze beyond the schedule horizon (max jump {max_jump})"
        );
    }

    #[test]
    fn lights_toggle_eventually() {
        let mut t = RealTrace::new(DOMAIN, 12, 5);
        let series = collect_series(&mut t, NodeId(3), 400);
        let max_jump = series
            .windows(2)
            .map(|w| (w[0] - w[1]).abs())
            .max()
            .unwrap();
        assert!(
            max_jump > 15,
            "over 100 minutes at least one room light toggle should be visible"
        );
    }
}
