//! A synthetic stand-in for the Intel Lab light trace ("REAL" / "FILE"
//! workload).
//!
//! The paper replays "a trace of real light data collected from a 50-node
//! indoor sensor network deployment. ... Because these sensors were deployed
//! in the same building, their light readings are highly correlated."
//! (Section 6). We cannot redistribute that trace, so this module generates
//! an equivalent one with the two properties Scoop's index exploits:
//!
//! * **temporal stationarity** — a node's readings drift slowly, so its
//!   recent histogram predicts its near-future values;
//! * **spatial correlation** — nodes in the same region (adjacent node ids on
//!   the office-floor layout) see similar light levels, so a handful of
//!   owners can cover many producers.
//!
//! The generated signal is: a shared diurnal component (slow sinusoid over
//! the run), plus a smooth per-region offset (nodes are grouped into rooms of
//! `ROOM_SIZE` consecutive ids that share a lighting state), plus occasional
//! room-level step changes (lights switched on/off), plus small per-sample
//! noise. Values are clamped to the configured domain (~150 distinct values,
//! matching the paper's V ≈ 150).

use crate::sources::DataSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{DataSourceKind, NodeId, SimTime, Value, ValueRange};

/// Number of consecutive node ids that share a "room" (and therefore a
/// lighting state).
const ROOM_SIZE: usize = 6;

/// How often (on average) a room's lights toggle, in seconds of simulated time.
const TOGGLE_MEAN_SECS: f64 = 600.0;

#[derive(Clone, Debug)]
struct RoomState {
    /// Baseline light level of the room as a fraction of the domain.
    baseline: f64,
    /// Whether the artificial lights are currently on.
    lights_on: bool,
    /// Next time the lights toggle.
    next_toggle: f64,
}

/// Synthetic, spatially and temporally correlated light trace.
#[derive(Clone, Debug)]
pub struct RealTrace {
    domain: ValueRange,
    rooms: Vec<RoomState>,
    /// Per-node fixed offset within its room (sensor placement / calibration).
    node_offset: Vec<f64>,
    /// Amplitude of the shared diurnal component, as a fraction of the domain.
    diurnal_amplitude: f64,
    /// Period of the diurnal component in seconds. Chosen shorter than a real
    /// day so that a 40-minute experiment sees meaningful drift.
    diurnal_period_secs: f64,
    noise_std: f64,
    rng: StdRng,
}

impl RealTrace {
    /// Creates a trace generator for `num_nodes` sensors over `domain`.
    pub fn new(domain: ValueRange, num_nodes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4ea1_11);
        let num_rooms = (num_nodes + 1).div_ceil(ROOM_SIZE).max(1);
        let rooms = (0..num_rooms)
            .map(|_| RoomState {
                baseline: rng.gen_range(0.25..0.75),
                lights_on: rng.gen_bool(0.6),
                next_toggle: rng.gen_range(0.0..TOGGLE_MEAN_SECS * 2.0),
            })
            .collect();
        let node_offset = (0..=num_nodes)
            .map(|_| rng.gen_range(-0.06..0.06))
            .collect();
        RealTrace {
            domain,
            rooms,
            node_offset,
            diurnal_amplitude: 0.18,
            diurnal_period_secs: 3_600.0,
            noise_std: 0.015,
            rng,
        }
    }

    fn room_of(&self, node: NodeId) -> usize {
        (node.index() / ROOM_SIZE).min(self.rooms.len() - 1)
    }

    fn advance_room(&mut self, room: usize, now_secs: f64) {
        while now_secs >= self.rooms[room].next_toggle {
            let flip_after: f64 = self.rng.gen_range(TOGGLE_MEAN_SECS * 0.5..TOGGLE_MEAN_SECS * 1.5);
            let r = &mut self.rooms[room];
            r.lights_on = !r.lights_on;
            r.next_toggle += flip_after;
        }
    }
}

impl DataSource for RealTrace {
    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Real
    }

    fn domain(&self) -> ValueRange {
        self.domain
    }

    fn sample(&mut self, node: NodeId, now: SimTime) -> Value {
        let now_secs = now.as_secs_f64();
        let room = self.room_of(node);
        self.advance_room(room, now_secs);

        let diurnal = self.diurnal_amplitude
            * (2.0 * std::f64::consts::PI * now_secs / self.diurnal_period_secs).sin();
        let room_state = &self.rooms[room];
        let lights = if room_state.lights_on { 0.22 } else { 0.0 };
        let offset = self
            .node_offset
            .get(node.index())
            .copied()
            .unwrap_or(0.0);
        let noise: f64 = self.rng.gen_range(-1.0..1.0) * self.noise_std;

        let frac = (room_state.baseline + diurnal + lights + offset + noise).clamp(0.0, 1.0);
        let span = (self.domain.hi - self.domain.lo) as f64;
        (self.domain.lo as f64 + frac * span).round() as Value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 149 };

    fn collect_series(trace: &mut RealTrace, node: NodeId, samples: usize) -> Vec<Value> {
        (0..samples)
            .map(|i| trace.sample(node, SimTime::from_secs(i as u64 * 15)))
            .collect()
    }

    #[test]
    fn values_stay_in_domain() {
        let mut t = RealTrace::new(DOMAIN, 62, 1);
        for n in 1..=62u16 {
            for i in 0..50 {
                let v = t.sample(NodeId(n), SimTime::from_secs(i * 15));
                assert!(DOMAIN.contains(v), "node {n}: {v}");
            }
        }
    }

    #[test]
    fn temporal_correlation_consecutive_samples_are_close() {
        let mut t = RealTrace::new(DOMAIN, 62, 2);
        let series = collect_series(&mut t, NodeId(10), 80);
        let mut small_steps = 0;
        for w in series.windows(2) {
            if (w[0] - w[1]).abs() <= 15 {
                small_steps += 1;
            }
        }
        // The vast majority of 15-second steps are small; only light toggles
        // produce jumps.
        assert!(
            small_steps as f64 / (series.len() - 1) as f64 > 0.85,
            "only {small_steps}/{} steps were small",
            series.len() - 1
        );
    }

    #[test]
    fn spatial_correlation_same_room_nodes_track_each_other() {
        let mut t = RealTrace::new(DOMAIN, 62, 3);
        // Nodes 12 and 13 share a room; 12 and 40 do not.
        let mut same_diffs = Vec::new();
        let mut far_diffs = Vec::new();
        for i in 0..60u64 {
            let now = SimTime::from_secs(i * 15);
            let a = t.sample(NodeId(12), now);
            let b = t.sample(NodeId(13), now);
            let c = t.sample(NodeId(40), now);
            same_diffs.push((a - b).abs() as f64);
            far_diffs.push((a - c).abs() as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same_diffs) < mean(&far_diffs) + 1.0,
            "same-room difference {} should not exceed cross-room difference {}",
            mean(&same_diffs),
            mean(&far_diffs)
        );
        assert!(mean(&same_diffs) < 20.0, "same-room nodes should be close");
    }

    #[test]
    fn different_rooms_have_different_levels() {
        let mut t = RealTrace::new(DOMAIN, 62, 4);
        let now = SimTime::from_secs(300);
        let values: Vec<Value> = (1..=62u16).map(|n| t.sample(NodeId(n), now)).collect();
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        assert!(distinct.len() > 8, "the network should see a spread of light levels");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RealTrace::new(DOMAIN, 30, 9);
        let mut b = RealTrace::new(DOMAIN, 30, 9);
        for i in 0..40u64 {
            let n = NodeId((i % 30 + 1) as u16);
            assert_eq!(
                a.sample(n, SimTime::from_secs(i * 15)),
                b.sample(n, SimTime::from_secs(i * 15))
            );
        }
    }

    #[test]
    fn lights_toggle_eventually() {
        let mut t = RealTrace::new(DOMAIN, 12, 5);
        let series = collect_series(&mut t, NodeId(3), 400);
        let max_jump = series.windows(2).map(|w| (w[0] - w[1]).abs()).max().unwrap();
        assert!(
            max_jump > 15,
            "over 100 minutes at least one room light toggle should be visible"
        );
    }
}
