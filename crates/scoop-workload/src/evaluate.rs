//! The naive reference evaluator: exact answers by full scan.
//!
//! Every query semantics the simulation answers in-network — range scans and
//! the aggregate operators — is re-implemented here as the obvious
//! linear-scan program over a god's-eye list of readings. The property-based
//! suites compare the protocol's answers (partial aggregates merged up the
//! routing tree, q-digest quantiles) against this evaluator; it is the
//! specification the distributed path must honor, so keep it boring.

use scoop_types::{AggregateOp, Reading, SimTime, Value, ValueRange};

/// The readings matching a value range and time window, by full scan.
/// Preserves input order; the caller sorts if it needs a canonical order.
pub fn scan<'a>(
    readings: &'a [Reading],
    values: &ValueRange,
    time_lo: SimTime,
    time_hi: SimTime,
) -> Vec<&'a Reading> {
    readings
        .iter()
        .filter(|r| values.contains(r.value) && r.timestamp >= time_lo && r.timestamp <= time_hi)
        .collect()
}

/// An exact aggregate over a set of values: the ground truth the in-network
/// partial aggregates (and their q-digest quantiles) are checked against.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactAggregate {
    /// Number of values aggregated.
    pub count: u64,
    /// Smallest value (`None` when empty).
    pub min: Option<Value>,
    /// Largest value (`None` when empty).
    pub max: Option<Value>,
    /// Sum of values.
    pub sum: i64,
    /// All values, sorted ascending — the exact quantile reference.
    pub sorted: Vec<Value>,
}

impl ExactAggregate {
    /// Aggregates `values` by scan and sort.
    pub fn over(values: impl IntoIterator<Item = Value>) -> Self {
        let mut sorted: Vec<Value> = values.into_iter().collect();
        sorted.sort_unstable();
        ExactAggregate {
            count: sorted.len() as u64,
            min: sorted.first().copied(),
            max: sorted.last().copied(),
            sum: sorted.iter().map(|&v| v as i64).sum(),
            sorted,
        }
    }

    /// The mean (`None` when empty).
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The exact `q`-quantile: the value at rank `ceil(q * n)` (1-based,
    /// clamped to `[1, n]`). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Value> {
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// The exact scalar answer for `op` (`None` when empty).
    pub fn answer(&self, op: AggregateOp) -> Option<f64> {
        match op {
            AggregateOp::Min => self.min.map(|v| v as f64),
            AggregateOp::Max => self.max.map(|v| v as f64),
            AggregateOp::Avg => self.avg(),
            AggregateOp::Quantile(q) => self.quantile(q).map(|v| v as f64),
        }
    }

    /// The rank interval `[lo, hi]` (1-based, inclusive) that `v` occupies in
    /// the sorted reference: `lo` = 1 + count of strictly smaller values,
    /// `hi` = count of values `<= v`. A sketch answer for target rank `r`
    /// with error budget `slack` is correct iff this interval intersects
    /// `[r - slack, r + slack]`.
    pub fn rank_interval(&self, v: Value) -> (u64, u64) {
        let below = self.sorted.partition_point(|&x| x < v) as u64;
        let at_most = self.sorted.partition_point(|&x| x <= v) as u64;
        (below + 1, at_most)
    }

    /// Whether `got` is an acceptable `q`-quantile answer within rank error
    /// `epsilon * n` (the q-digest contract). Exact on the empty set: only
    /// `None` is acceptable there.
    pub fn quantile_within(&self, q: f64, epsilon: f64, got: Option<Value>) -> bool {
        let Some(got) = got else {
            return self.sorted.is_empty();
        };
        let n = self.count;
        if n == 0 {
            return false;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let slack = (epsilon * n as f64).ceil() as u64;
        let (lo, hi) = self.rank_interval(got);
        lo <= rank + slack && hi + slack >= rank
    }
}

/// Exact aggregate over the readings matching a predicate — `scan` composed
/// with [`ExactAggregate::over`], the one-call reference for sim-level tests.
pub fn aggregate_scan(
    readings: &[Reading],
    values: &ValueRange,
    time_lo: SimTime,
    time_hi: SimTime,
) -> ExactAggregate {
    ExactAggregate::over(
        scan(readings, values, time_lo, time_hi)
            .iter()
            .map(|r| r.value),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_types::{Attribute, NodeId};

    fn reading(node: u16, v: Value, secs: u64) -> Reading {
        Reading::new(NodeId(node), Attribute::Light, v, SimTime::from_secs(secs))
    }

    #[test]
    fn scan_filters_by_value_and_time() {
        let rs = vec![
            reading(1, 10, 100),
            reading(2, 20, 200),
            reading(3, 30, 300),
            reading(4, 20, 400),
        ];
        let hits = scan(
            &rs,
            &ValueRange::new(15, 25),
            SimTime::from_secs(150),
            SimTime::from_secs(350),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].value, 20);
        // Window edges are inclusive.
        let hits = scan(
            &rs,
            &ValueRange::new(0, 149),
            SimTime::from_secs(100),
            SimTime::from_secs(400),
        );
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn exact_aggregate_basics() {
        let agg = ExactAggregate::over([5, 1, 9, 5]);
        assert_eq!(agg.count, 4);
        assert_eq!(agg.min, Some(1));
        assert_eq!(agg.max, Some(9));
        assert_eq!(agg.sum, 20);
        assert_eq!(agg.avg(), Some(5.0));
        assert_eq!(agg.quantile(0.5), Some(5));
        assert_eq!(agg.quantile(0.0), Some(1));
        assert_eq!(agg.quantile(1.0), Some(9));
        assert_eq!(agg.answer(AggregateOp::Min), Some(1.0));
        assert_eq!(agg.answer(AggregateOp::Quantile(0.5)), Some(5.0));

        let empty = ExactAggregate::over([]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.avg(), None);
        assert_eq!(empty.quantile(0.5), None);
        for op in [AggregateOp::Min, AggregateOp::Max, AggregateOp::Avg] {
            assert_eq!(empty.answer(op), None);
        }
    }

    #[test]
    fn rank_interval_handles_duplicates() {
        let agg = ExactAggregate::over([3, 3, 3, 7]);
        assert_eq!(agg.rank_interval(3), (1, 3));
        assert_eq!(agg.rank_interval(7), (4, 4));
        assert_eq!(agg.rank_interval(5), (4, 3)); // absent: lo > hi
    }

    #[test]
    fn quantile_within_accepts_exact_and_rejects_far() {
        let agg = ExactAggregate::over((0..100).collect::<Vec<_>>());
        assert!(agg.quantile_within(0.5, 0.05, Some(49)));
        assert!(agg.quantile_within(0.5, 0.05, Some(53)));
        assert!(!agg.quantile_within(0.5, 0.05, Some(70)));
        assert!(!agg.quantile_within(0.5, 0.05, None));
        let empty = ExactAggregate::over([]);
        assert!(empty.quantile_within(0.5, 0.05, None));
        assert!(!empty.quantile_within(0.5, 0.05, Some(0)));
    }
}
