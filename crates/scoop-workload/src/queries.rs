//! Query workload generation.
//!
//! "The basestation issues a query once every 15 seconds over 1-5% of the
//! attribute's value domain (the query width)." (Section 6). A query consists
//! of a value range and a time range of interest (Section 5.5); Figure 4
//! sweeps how much of the network a query touches by widening the value
//! range, and Figure 5 sweeps the query interval.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_types::{Attribute, QueryWorkloadConfig, SimDuration, SimTime, Value, ValueRange};
use serde::{Deserialize, Serialize};

/// One query as issued by the user at the basestation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Attribute being queried.
    pub attribute: Attribute,
    /// Value range of interest.
    pub values: ValueRange,
    /// Earliest sample timestamp of interest.
    pub time_lo: SimTime,
    /// Latest sample timestamp of interest.
    pub time_hi: SimTime,
    /// When the query was issued.
    pub issued_at: SimTime,
}

impl QuerySpec {
    /// Width of the query's value range as a fraction of `domain`.
    pub fn width_fraction(&self, domain: &ValueRange) -> f64 {
        self.values.width() as f64 / domain.width() as f64
    }
}

/// Generates the stream of user queries for an experiment run.
#[derive(Clone, Debug)]
pub struct QueryGenerator {
    attribute: Attribute,
    domain: ValueRange,
    config: QueryWorkloadConfig,
    /// How far back each query looks.
    history: SimDuration,
    /// If set, every query uses exactly this width fraction (used by the
    /// Figure 4 selectivity sweep instead of the default 1–5 % band).
    fixed_width_frac: Option<f64>,
    rng: StdRng,
}

impl QueryGenerator {
    /// Creates a generator over `domain` for `attribute`.
    ///
    /// `sample_interval` is used to size the historical window each query
    /// covers (`history_samples` sample intervals back from "now").
    pub fn new(
        attribute: Attribute,
        domain: ValueRange,
        config: QueryWorkloadConfig,
        sample_interval: SimDuration,
        seed: u64,
    ) -> Self {
        let history =
            SimDuration::from_millis(sample_interval.as_millis() * config.history_samples.max(1));
        QueryGenerator {
            attribute,
            domain,
            config,
            history,
            fixed_width_frac: None,
            rng: StdRng::seed_from_u64(seed ^ 0x9e41),
        }
    }

    /// Creates a generator from a [`WorkloadSpec`](scoop_types::WorkloadSpec):
    /// its attribute, domain, query distribution, sampling cadence, and
    /// workload kind. The spec-driven twin of [`QueryGenerator::new`] used by
    /// the simulation nodes.
    ///
    /// The kind shapes the value ranges drawn: `Point` keeps the seed width
    /// band, `Range` pins every query to its fixed width fraction, and
    /// `Aggregate` covers the whole domain (an aggregate asks about all
    /// values; full-width draws also consume zero RNG, so the stream matches
    /// a by-hand full-width generator exactly).
    pub fn from_spec(workload: &scoop_types::WorkloadSpec, seed: u64) -> Self {
        let gen = Self::new(
            workload.attribute,
            workload.value_domain,
            workload.queries.clone(),
            workload.sample_interval,
            seed,
        );
        match workload.kind {
            scoop_types::WorkloadKind::Point => gen,
            scoop_types::WorkloadKind::Range(range) => gen.with_fixed_width(range.width_frac),
            scoop_types::WorkloadKind::Aggregate(_) => gen.with_fixed_width(1.0),
        }
    }

    /// Forces every query to cover exactly `frac` of the value domain
    /// (clamped to `[0, 1]`). Used by the selectivity sweep.
    pub fn with_fixed_width(mut self, frac: f64) -> Self {
        self.fixed_width_frac = Some(frac.clamp(0.0, 1.0));
        self
    }

    /// The interval between queries.
    pub fn interval(&self) -> SimDuration {
        self.config.query_interval
    }

    /// Generates the query issued at time `now`.
    pub fn next_query(&mut self, now: SimTime) -> QuerySpec {
        let domain_width = self.domain.width() as f64;
        let frac = match self.fixed_width_frac {
            Some(f) => f,
            None => self
                .rng
                .gen_range(self.config.min_width_frac..=self.config.max_width_frac),
        };
        let width = ((domain_width * frac).round() as i64).max(1) as Value;
        let max_lo = (self.domain.hi - (width - 1)).max(self.domain.lo);
        let lo = if max_lo > self.domain.lo {
            self.rng.gen_range(self.domain.lo..=max_lo)
        } else {
            self.domain.lo
        };
        let hi = (lo + width - 1).min(self.domain.hi);
        let time_lo =
            SimTime::from_millis(now.as_millis().saturating_sub(self.history.as_millis()));
        QuerySpec {
            attribute: self.attribute,
            values: ValueRange::new(lo, hi),
            time_lo,
            time_hi: now,
            issued_at: now,
        }
    }

    /// Convenience: all query issue times in `[start, end)` given the
    /// configured interval.
    pub fn schedule(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        let mut times = Vec::new();
        let mut t = start;
        while t < end {
            times.push(t);
            t += self.config.query_interval;
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 149 };

    fn generator(seed: u64) -> QueryGenerator {
        QueryGenerator::new(
            Attribute::Light,
            DOMAIN,
            QueryWorkloadConfig::default(),
            SimDuration::from_secs(15),
            seed,
        )
    }

    #[test]
    fn widths_stay_in_the_configured_band() {
        let mut g = generator(1);
        for i in 0..200u64 {
            let q = g.next_query(SimTime::from_secs(600 + i * 15));
            let frac = q.width_fraction(&DOMAIN);
            assert!(
                (0.005..=0.06).contains(&frac),
                "width fraction {frac} outside ~1-5 %"
            );
            assert!(
                DOMAIN.covers(&q.values),
                "query {:?} outside domain",
                q.values
            );
        }
    }

    #[test]
    fn query_time_range_looks_back_over_history() {
        let mut g = generator(2);
        let q = g.next_query(SimTime::from_secs(1000));
        assert_eq!(q.time_hi, SimTime::from_secs(1000));
        assert_eq!(q.time_lo, SimTime::from_secs(1000 - 8 * 15));
        assert_eq!(q.issued_at, SimTime::from_secs(1000));
        // Early in the run the window is clipped at zero rather than
        // underflowing.
        let early = g.next_query(SimTime::from_secs(10));
        assert_eq!(early.time_lo, SimTime::ZERO);
    }

    #[test]
    fn fixed_width_sweep() {
        for frac in [0.1, 0.5, 1.0] {
            let mut g = generator(3).with_fixed_width(frac);
            let q = g.next_query(SimTime::from_secs(600));
            let got = q.width_fraction(&DOMAIN);
            assert!((got - frac).abs() < 0.02, "asked for {frac}, got {got}");
        }
    }

    #[test]
    fn full_domain_query_covers_everything() {
        let mut g = generator(4).with_fixed_width(1.0);
        let q = g.next_query(SimTime::from_secs(600));
        assert_eq!(q.values, DOMAIN);
    }

    #[test]
    fn query_positions_vary_across_the_domain() {
        let mut g = generator(5);
        let positions: std::collections::HashSet<Value> = (0..100u64)
            .map(|i| g.next_query(SimTime::from_secs(i * 15)).values.lo)
            .collect();
        assert!(positions.len() > 30, "query centers should spread out");
    }

    #[test]
    fn schedule_matches_interval() {
        let g = generator(6);
        let times = g.schedule(SimTime::from_secs(600), SimTime::from_secs(600 + 150));
        assert_eq!(times.len(), 10);
        assert_eq!(times[0], SimTime::from_secs(600));
        assert_eq!(times[9], SimTime::from_secs(600 + 135));
    }

    #[test]
    fn from_spec_applies_the_workload_kind() {
        use scoop_types::{AggregateOp, WorkloadKind, WorkloadSpec};
        let mut spec = WorkloadSpec::paper_defaults();

        spec.kind = WorkloadKind::range(0.25);
        let mut g = QueryGenerator::from_spec(&spec, 11);
        for i in 0..20u64 {
            let q = g.next_query(SimTime::from_secs(600 + i * 15));
            let frac = q.width_fraction(&spec.value_domain);
            assert!((frac - 0.25).abs() < 0.02, "range width drifted: {frac}");
        }

        spec.kind = WorkloadKind::aggregate(AggregateOp::Quantile(0.5), 0.05);
        let mut g = QueryGenerator::from_spec(&spec, 11);
        for i in 0..5u64 {
            let q = g.next_query(SimTime::from_secs(600 + i * 15));
            assert_eq!(q.values, spec.value_domain, "aggregates span the domain");
        }

        // Point keeps the seed behavior bit-for-bit.
        spec.kind = WorkloadKind::Point;
        let mut from_spec = QueryGenerator::from_spec(&spec, 11);
        let mut by_hand = QueryGenerator::new(
            spec.attribute,
            spec.value_domain,
            spec.queries.clone(),
            spec.sample_interval,
            11,
        );
        for i in 0..20u64 {
            let t = SimTime::from_secs(600 + i * 15);
            assert_eq!(from_spec.next_query(t), by_hand.next_query(t));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = generator(7);
        let mut b = generator(7);
        for i in 0..50u64 {
            assert_eq!(
                a.next_query(SimTime::from_secs(i * 15)),
                b.next_query(SimTime::from_secs(i * 15))
            );
        }
    }
}
