//! The q-digest contract, model-tested against the exact evaluator: for
//! arbitrary streams, arbitrary partitionings into per-node partials, and
//! arbitrary merge orders (left fold, pairwise tree, reversed), every
//! quantile read off the digest has rank error at most `epsilon * n`, and the
//! exact fields of a [`PartialAggregate`] (count/min/max/sum) survive any
//! merge grouping bit-for-bit. A lossy-delivery property checks the same
//! against the subset of partials that actually arrived.

use proptest::prelude::*;
use scoop_types::{AggregateOp, AggregateSpec, PartialAggregate, QDigest, Value, ValueRange};
use scoop_workload::evaluate::ExactAggregate;

const DOMAIN: ValueRange = ValueRange { lo: 0, hi: 149 };

/// Epsilons and quantile targets are drawn from fixed grids (the shim has no
/// float strategies); together they cover loose, paper-typical, and maximal
/// compression.
const EPSILONS: [f64; 3] = [0.05, 0.1, 0.5];
const QS: [f64; 5] = [0.05, 0.25, 0.5, 0.75, 0.95];

fn clamp_into_domain(v: i32) -> Value {
    v.rem_euclid(DOMAIN.width() as i32)
}

/// Splits `values` into `parts` per-node digests (round-robin), mirroring
/// readings scattered across sensor nodes.
fn partials_of(values: &[Value], parts: usize, epsilon: f64) -> Vec<QDigest> {
    let parts = parts.clamp(1, values.len().max(1));
    let mut digests: Vec<QDigest> = (0..parts).map(|_| QDigest::new(DOMAIN, epsilon)).collect();
    for (i, &v) in values.iter().enumerate() {
        digests[i % parts].insert(v);
    }
    digests
}

fn left_fold(parts: &[QDigest], epsilon: f64) -> QDigest {
    let mut acc = QDigest::new(DOMAIN, epsilon);
    for p in parts {
        acc.merge(p);
    }
    acc
}

fn tree_fold(parts: &[QDigest], epsilon: f64) -> QDigest {
    let mut layer: Vec<QDigest> = parts.to_vec();
    if layer.is_empty() {
        return QDigest::new(DOMAIN, epsilon);
    }
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            let mut m = pair[0].clone();
            if let Some(b) = pair.get(1) {
                m.merge(b);
            }
            next.push(m);
        }
        layer = next;
    }
    layer.pop().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single digest over an arbitrary stream answers every grid quantile
    /// within `epsilon * n` rank error, at every epsilon.
    #[test]
    fn single_stream_respects_the_rank_bound(
        raw in proptest::collection::vec(-300i32..300, 1..400),
        eps_i in 0usize..3,
    ) {
        let epsilon = EPSILONS[eps_i];
        let values: Vec<Value> = raw.iter().map(|&v| clamp_into_domain(v)).collect();
        let exact = ExactAggregate::over(values.iter().copied());
        let mut d = QDigest::new(DOMAIN, epsilon);
        for &v in &values {
            d.insert(v);
        }
        prop_assert_eq!(d.count(), exact.count);
        for &q in &QS {
            prop_assert!(
                exact.quantile_within(q, epsilon, d.quantile(q)),
                "q={} eps={} got={:?} n={}", q, epsilon, d.quantile(q), exact.count
            );
        }
    }

    /// Arbitrary partitioning + arbitrary merge shape: left fold, pairwise
    /// tree, and reversed order all keep the exact count and the rank bound.
    /// (Merge is commutative/associative up to the error contract — the
    /// answers need not be identical across orders, but every order must be
    /// within epsilon of the truth.)
    #[test]
    fn any_merge_order_respects_the_rank_bound(
        raw in proptest::collection::vec(-300i32..300, 1..300),
        parts in 1usize..12,
        eps_i in 0usize..3,
    ) {
        let epsilon = EPSILONS[eps_i];
        let values: Vec<Value> = raw.iter().map(|&v| clamp_into_domain(v)).collect();
        let exact = ExactAggregate::over(values.iter().copied());
        let partials = partials_of(&values, parts, epsilon);

        let folded = left_fold(&partials, epsilon);
        let tree = tree_fold(&partials, epsilon);
        let mut reversed_parts = partials.clone();
        reversed_parts.reverse();
        let reversed = left_fold(&reversed_parts, epsilon);

        for d in [&folded, &tree, &reversed] {
            prop_assert_eq!(d.count(), exact.count, "merge never loses mass");
            for &q in &QS {
                prop_assert!(
                    exact.quantile_within(q, epsilon, d.quantile(q)),
                    "q={} eps={} parts={} got={:?}", q, epsilon, parts, d.quantile(q)
                );
            }
        }
    }

    /// PartialAggregate: the exact fields (count, min, max, sum — hence avg)
    /// equal the reference evaluator under any partitioning and both merge
    /// shapes, and the digest-backed quantile answer stays within epsilon.
    #[test]
    fn partial_aggregates_match_the_exact_evaluator(
        raw in proptest::collection::vec(-300i32..300, 0..250),
        parts in 1usize..10,
        eps_i in 0usize..3,
        q_i in 0usize..5,
    ) {
        let epsilon = EPSILONS[eps_i];
        let q = QS[q_i];
        let spec = AggregateSpec { op: AggregateOp::Quantile(q), epsilon };
        let values: Vec<Value> = raw.iter().map(|&v| clamp_into_domain(v)).collect();
        let exact = ExactAggregate::over(values.iter().copied());

        let n_parts = parts.clamp(1, values.len().max(1));
        let mut partials: Vec<PartialAggregate> =
            (0..n_parts).map(|_| PartialAggregate::for_spec(&spec, DOMAIN)).collect();
        for (i, &v) in values.iter().enumerate() {
            partials[i % n_parts].observe(v);
        }

        let mut folded = PartialAggregate::for_spec(&spec, DOMAIN);
        for p in &partials {
            folded.merge(p);
        }
        let mut layer = partials.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let mut m = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                next.push(m);
            }
            layer = next;
        }
        let tree = layer.pop().unwrap();

        for merged in [&folded, &tree] {
            prop_assert_eq!(merged.count, exact.count);
            prop_assert_eq!(merged.sum, exact.sum);
            if exact.count > 0 {
                prop_assert_eq!(Some(merged.min), exact.min);
                prop_assert_eq!(Some(merged.max), exact.max);
                let avg = merged.avg().unwrap();
                prop_assert!((avg - exact.avg().unwrap()).abs() < 1e-9);
                let got = merged.answer(AggregateOp::Quantile(q)).map(|v| v as Value);
                prop_assert!(exact.quantile_within(q, epsilon, got));
            } else {
                prop_assert_eq!(merged.answer(AggregateOp::Quantile(q)), None);
                prop_assert_eq!(merged.avg(), None);
            }
        }
    }

    /// Lossy delivery: when only a subset of partials reaches the collector,
    /// the merged answer is exact (and epsilon-correct) over exactly the
    /// values that arrived — losses never corrupt what did get through.
    #[test]
    fn lossy_subsets_aggregate_exactly_what_arrived(
        raw in proptest::collection::vec(-300i32..300, 1..200),
        parts in 2usize..10,
        drop_mask in 0u32..1024,
        eps_i in 0usize..3,
    ) {
        let epsilon = EPSILONS[eps_i];
        let values: Vec<Value> = raw.iter().map(|&v| clamp_into_domain(v)).collect();
        let spec = AggregateSpec { op: AggregateOp::Quantile(0.5), epsilon };

        let n_parts = parts.clamp(1, values.len());
        let mut partials: Vec<PartialAggregate> =
            (0..n_parts).map(|_| PartialAggregate::for_spec(&spec, DOMAIN)).collect();
        let mut per_part: Vec<Vec<Value>> = vec![Vec::new(); n_parts];
        for (i, &v) in values.iter().enumerate() {
            partials[i % n_parts].observe(v);
            per_part[i % n_parts].push(v);
        }

        let mut survivors = Vec::new();
        let mut merged = PartialAggregate::for_spec(&spec, DOMAIN);
        for (i, p) in partials.iter().enumerate() {
            if drop_mask & (1 << (i as u32 % 10)) != 0 {
                continue; // this node's reply was lost
            }
            survivors.extend(per_part[i].iter().copied());
            merged.merge(p);
        }
        let exact = ExactAggregate::over(survivors.iter().copied());
        prop_assert_eq!(merged.count, exact.count);
        prop_assert_eq!(merged.sum, exact.sum);
        if exact.count > 0 {
            prop_assert_eq!(Some(merged.min), exact.min);
            prop_assert_eq!(Some(merged.max), exact.max);
        }
        let got = merged.answer(AggregateOp::Quantile(0.5)).map(|v| v as Value);
        prop_assert!(exact.quantile_within(0.5, epsilon, got));
    }
}
