//! Property-based tests for the workload generators: every source stays in
//! its domain for arbitrary nodes and times, and the query generator always
//! produces well-formed queries within the configured width band.

use proptest::prelude::*;
use scoop_types::{
    Attribute, DataSourceKind, NodeId, QueryWorkloadConfig, SimDuration, SimTime, ValueRange,
};
use scoop_workload::{make_source, QueryGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every data source produces values inside its configured domain for any
    /// node id and sample time, and is reproducible from its seed.
    #[test]
    fn sources_respect_domain_and_are_deterministic(
        kind_idx in 0usize..5,
        num_nodes in 2usize..80,
        seed in 0u64..1000,
        lo in 0i32..50,
        width in 5i32..200,
        times in proptest::collection::vec(0u64..4000, 1..40),
    ) {
        let kind = DataSourceKind::ALL[kind_idx];
        let domain = ValueRange::new(lo, lo + width);
        let mut a = make_source(kind, domain, num_nodes, seed);
        let mut b = make_source(kind, domain, num_nodes, seed);
        for (i, &t) in times.iter().enumerate() {
            let node = NodeId((i % num_nodes + 1) as u16);
            let now = SimTime::from_secs(t);
            let va = a.sample(node, now);
            let vb = b.sample(node, now);
            prop_assert!(domain.contains(va), "{kind}: {va} outside {domain}");
            prop_assert_eq!(va, vb, "{} not deterministic", kind);
        }
    }

    /// Queries always lie inside the domain and inside the requested width
    /// band, and their time window never extends into the future.
    #[test]
    fn query_generator_produces_well_formed_queries(
        seed in 0u64..1000,
        min_frac in 0.005f64..0.2,
        extra_frac in 0.0f64..0.3,
        issue_times in proptest::collection::vec(0u64..10_000, 1..50),
    ) {
        let domain = ValueRange::new(0, 149);
        let cfg = QueryWorkloadConfig {
            query_interval: SimDuration::from_secs(15),
            min_width_frac: min_frac,
            max_width_frac: (min_frac + extra_frac).min(1.0),
            history_samples: 8,
        };
        let mut gen = QueryGenerator::new(Attribute::Light, domain, cfg.clone(), SimDuration::from_secs(15), seed);
        for &t in &issue_times {
            let now = SimTime::from_secs(t);
            let q = gen.next_query(now);
            prop_assert!(domain.covers(&q.values), "query {:?} outside domain", q.values);
            let frac = q.width_fraction(&domain);
            // Rounding to whole values can push the width slightly past the
            // bound; allow one value of slack.
            let slack = 1.0 / domain.width() as f64;
            prop_assert!(frac + 1e-9 >= cfg.min_width_frac.min(1.0) - slack);
            prop_assert!(frac <= cfg.max_width_frac + slack, "width {frac}");
            prop_assert!(q.time_hi == now);
            prop_assert!(q.time_lo <= q.time_hi);
            prop_assert_eq!(q.issued_at, now);
        }
    }
}
