//! Property-based tests for the routing layer: link estimation, neighbor
//! table, and tree state invariants under arbitrary observation sequences.

use proptest::prelude::*;
use scoop_routing::{Beacon, LinkEstimator, NeighborTable, TreeState};
use scoop_types::{NodeId, SeqNo, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence numbers arrive (including duplicates, reordering,
    /// and giant jumps), the quality estimate stays a probability and the
    /// reception ratio stays in [0, 1].
    #[test]
    fn estimator_outputs_stay_bounded(
        seqnos in proptest::collection::vec(0u32..10_000, 1..200),
    ) {
        let mut est = LinkEstimator::new();
        for (i, &s) in seqnos.iter().enumerate() {
            est.observe(NodeId(7), SeqNo(s), SimTime::from_secs(i as u64));
        }
        let q = est.quality(NodeId(7)).unwrap();
        prop_assert!((0.0..=1.0).contains(&q), "quality {q}");
        let rr = est.reception_ratio(NodeId(7)).unwrap();
        prop_assert!((0.0..=1.0).contains(&rr), "reception ratio {rr}");
        prop_assert!(est.etx(NodeId(7)).unwrap() >= 1.0);
    }

    /// The neighbor table never exceeds its capacity and never evicts a
    /// better neighbor to admit a worse one.
    #[test]
    fn neighbor_table_capacity_and_quality_invariant(
        capacity in 1usize..16,
        observations in proptest::collection::vec((0u16..40, 0.0f64..1.0), 1..200),
    ) {
        let mut table = NeighborTable::new(capacity);
        for (t, &(node, quality)) in observations.iter().enumerate() {
            table.observe(NodeId(node), quality, SimTime::from_secs(t as u64));
        }
        prop_assert!(table.len() <= capacity);
        // best(k) is sorted by descending quality.
        let best = table.best(capacity);
        for pair in best.windows(2) {
            prop_assert!(pair[0].quality >= pair[1].quality);
        }
    }

    /// A node never selects itself or an unusable link as parent, and its hop
    /// count is always one more than the advertised hop count of its parent
    /// beacon at selection time.
    #[test]
    fn tree_state_parent_invariants(
        beacons in proptest::collection::vec(
            (1u16..20, 0u16..10, 0.0f64..1.0, 0.0f64..20.0),
            1..100,
        ),
    ) {
        let me = NodeId(0xAA);
        let mut tree = TreeState::new(me);
        for (t, &(from, hops, quality, path_etx)) in beacons.iter().enumerate() {
            let beacon = Beacon { hops, path_etx, parent: None };
            tree.on_beacon(NodeId(from), &beacon, quality, SimTime::from_secs(t as u64 * 10));
            if let Some(parent) = tree.parent() {
                prop_assert_ne!(parent, me);
            }
            if tree.is_attached() {
                prop_assert!(tree.hops() >= 1);
                prop_assert!(tree.path_etx().is_finite());
                prop_assert!(tree.path_etx() >= 1.0, "path etx {}", tree.path_etx());
            }
        }
    }
}
