//! Spanning-tree formation by beaconing.
//!
//! "The basic idea is to repeatedly broadcast a tree-join message from the
//! root down the tree. Nodes pick as their parent one of the nodes from which
//! they heard the tree-join message." (Section 2.2). As in Woo et al., our
//! beacons advertise the sender's cumulative path cost (expected
//! transmissions to the root); a node picks the parent minimizing that cost
//! plus the cost of the link to the parent, with hysteresis so marginal
//! improvements do not cause route churn.

use scoop_types::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// The content of a tree-join (heartbeat) message.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    /// The sender's hop distance from the basestation (0 for the root).
    pub hops: u16,
    /// The sender's cumulative expected-transmission cost to reach the root
    /// (0 for the root).
    pub path_etx: f64,
    /// The sender's current parent, if any (lets the basestation and
    /// neighbors learn tree edges passively).
    pub parent: Option<NodeId>,
}

/// Parent-selection state for one node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeState {
    id: NodeId,
    parent: Option<NodeId>,
    hops: u16,
    path_etx: f64,
    last_parent_heard: SimTime,
    /// A candidate must beat the current route by this much (in expected
    /// transmissions) before we switch parents.
    hysteresis: f64,
    /// How long we keep a parent we have not heard from before declaring the
    /// route stale.
    parent_timeout_ms: u64,
}

impl TreeState {
    /// Creates tree state for `id`. The basestation is its own root with cost
    /// zero; everyone else starts unattached.
    pub fn new(id: NodeId) -> Self {
        let is_root = id.is_basestation();
        TreeState {
            id,
            parent: None,
            hops: if is_root { 0 } else { u16::MAX },
            path_etx: if is_root { 0.0 } else { f64::INFINITY },
            last_parent_heard: SimTime::ZERO,
            hysteresis: 0.5,
            parent_timeout_ms: 90_000,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current parent, or `None` if the node has not joined the tree.
    pub fn parent(&self) -> Option<NodeId> {
        if self.id.is_basestation() {
            None
        } else {
            self.parent
        }
    }

    /// Hop distance from the root (`0` for the root itself, `u16::MAX` if
    /// unattached).
    pub fn hops(&self) -> u16 {
        self.hops
    }

    /// Cumulative expected transmissions to the root along the current route.
    pub fn path_etx(&self) -> f64 {
        self.path_etx
    }

    /// `true` once the node has a route to the root (always true for the
    /// basestation).
    pub fn is_attached(&self) -> bool {
        self.id.is_basestation() || self.parent.is_some()
    }

    /// The beacon this node would broadcast right now.
    pub fn my_beacon(&self) -> Beacon {
        Beacon {
            hops: self.hops,
            path_etx: self.path_etx,
            parent: self.parent(),
        }
    }

    /// Processes a beacon heard from `from` over a link whose inbound quality
    /// we estimate as `link_quality` (probability in `(0, 1]`). Returns
    /// `true` if the parent changed.
    pub fn on_beacon(
        &mut self,
        from: NodeId,
        beacon: &Beacon,
        link_quality: f64,
        now: SimTime,
    ) -> bool {
        if self.id.is_basestation() || from == self.id {
            return false;
        }
        // Never pick a node that routes through us (simple loop avoidance).
        if beacon.parent == Some(self.id) {
            return false;
        }
        let link_etx = if link_quality > 0.0 {
            1.0 / link_quality
        } else {
            f64::INFINITY
        };
        let candidate_cost = beacon.path_etx + link_etx;
        if !candidate_cost.is_finite() {
            return false;
        }

        if self.parent == Some(from) {
            // Refresh the existing route.
            self.path_etx = candidate_cost;
            self.hops = beacon.hops.saturating_add(1);
            self.last_parent_heard = now;
            return false;
        }

        let current_stale = now
            .as_millis()
            .saturating_sub(self.last_parent_heard.as_millis())
            > self.parent_timeout_ms;
        let better = candidate_cost + self.hysteresis < self.path_etx;
        if self.parent.is_none() || current_stale || better {
            self.parent = Some(from);
            self.path_etx = candidate_cost;
            self.hops = beacon.hops.saturating_add(1);
            self.last_parent_heard = now;
            return true;
        }
        false
    }

    /// Declares the current parent unusable (e.g. repeated send failures) so
    /// the next beacon from anyone can re-attach the node.
    pub fn drop_parent(&mut self) {
        if !self.id.is_basestation() {
            self.parent = None;
            self.hops = u16::MAX;
            self.path_etx = f64::INFINITY;
        }
    }

    /// When the current parent was last heard.
    pub fn last_parent_heard(&self) -> SimTime {
        self.last_parent_heard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_beacon() -> Beacon {
        Beacon {
            hops: 0,
            path_etx: 0.0,
            parent: None,
        }
    }

    #[test]
    fn basestation_is_always_attached_with_zero_cost() {
        let t = TreeState::new(NodeId::BASESTATION);
        assert!(t.is_attached());
        assert_eq!(t.hops(), 0);
        assert_eq!(t.path_etx(), 0.0);
        assert_eq!(t.parent(), None);
    }

    #[test]
    fn first_beacon_attaches_node() {
        let mut t = TreeState::new(NodeId(5));
        assert!(!t.is_attached());
        let changed = t.on_beacon(
            NodeId::BASESTATION,
            &root_beacon(),
            0.8,
            SimTime::from_secs(1),
        );
        assert!(changed);
        assert_eq!(t.parent(), Some(NodeId::BASESTATION));
        assert_eq!(t.hops(), 1);
        assert!((t.path_etx() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn better_route_causes_switch_with_hysteresis() {
        let mut t = TreeState::new(NodeId(5));
        t.on_beacon(
            NodeId(2),
            &Beacon {
                hops: 2,
                path_etx: 4.0,
                parent: Some(NodeId(1)),
            },
            0.5,
            SimTime::from_secs(1),
        );
        assert_eq!(t.parent(), Some(NodeId(2)));
        // Marginally better candidate (6.0 - 5.9 = 0.1 < hysteresis): no switch.
        let switched = t.on_beacon(
            NodeId(3),
            &Beacon {
                hops: 1,
                path_etx: 4.9,
                parent: Some(NodeId(0)),
            },
            1.0,
            SimTime::from_secs(2),
        );
        assert!(!switched);
        assert_eq!(t.parent(), Some(NodeId(2)));
        // Clearly better candidate: switch.
        let switched = t.on_beacon(
            NodeId(4),
            &Beacon {
                hops: 1,
                path_etx: 1.0,
                parent: Some(NodeId(0)),
            },
            1.0,
            SimTime::from_secs(3),
        );
        assert!(switched);
        assert_eq!(t.parent(), Some(NodeId(4)));
        assert_eq!(t.hops(), 2);
    }

    #[test]
    fn refreshing_current_parent_updates_cost_without_switch() {
        let mut t = TreeState::new(NodeId(5));
        t.on_beacon(
            NodeId(2),
            &Beacon {
                hops: 1,
                path_etx: 1.0,
                parent: None,
            },
            1.0,
            SimTime::from_secs(1),
        );
        let before = t.path_etx();
        let switched = t.on_beacon(
            NodeId(2),
            &Beacon {
                hops: 1,
                path_etx: 3.0,
                parent: None,
            },
            1.0,
            SimTime::from_secs(2),
        );
        assert!(!switched);
        assert!(t.path_etx() > before);
        assert_eq!(t.last_parent_heard(), SimTime::from_secs(2));
    }

    #[test]
    fn ignores_children_as_parents() {
        let mut t = TreeState::new(NodeId(5));
        t.on_beacon(
            NodeId(2),
            &Beacon {
                hops: 1,
                path_etx: 1.0,
                parent: None,
            },
            1.0,
            SimTime::from_secs(1),
        );
        // Node 9 claims node 5 as its parent; it must not become 5's parent.
        let switched = t.on_beacon(
            NodeId(9),
            &Beacon {
                hops: 2,
                path_etx: 0.1,
                parent: Some(NodeId(5)),
            },
            1.0,
            SimTime::from_secs(2),
        );
        assert!(!switched);
        assert_eq!(t.parent(), Some(NodeId(2)));
    }

    #[test]
    fn stale_parent_is_replaced_even_by_worse_route() {
        let mut t = TreeState::new(NodeId(5));
        t.on_beacon(
            NodeId(2),
            &Beacon {
                hops: 1,
                path_etx: 1.0,
                parent: None,
            },
            1.0,
            SimTime::from_secs(1),
        );
        // Long silence from the parent; a worse candidate shows up.
        let switched = t.on_beacon(
            NodeId(3),
            &Beacon {
                hops: 3,
                path_etx: 6.0,
                parent: None,
            },
            0.5,
            SimTime::from_secs(500),
        );
        assert!(switched);
        assert_eq!(t.parent(), Some(NodeId(3)));
    }

    #[test]
    fn drop_parent_detaches() {
        let mut t = TreeState::new(NodeId(5));
        t.on_beacon(NodeId(2), &root_beacon(), 1.0, SimTime::from_secs(1));
        t.drop_parent();
        assert!(!t.is_attached());
        assert_eq!(t.hops(), u16::MAX);
    }

    #[test]
    fn dead_links_are_never_selected() {
        let mut t = TreeState::new(NodeId(5));
        let switched = t.on_beacon(NodeId(2), &root_beacon(), 0.0, SimTime::from_secs(1));
        assert!(!switched);
        assert!(!t.is_attached());
    }
}
