//! Tree routing, link estimation, and neighbor/descendant tracking.
//!
//! This crate is the Rust equivalent of the TinyOS multihop collection tree
//! the paper builds on (Woo et al. [23]): nodes organize into a spanning tree
//! rooted at the basestation by listening to periodic tree-join beacons and
//! picking as parent the neighbor offering the cheapest path (hop count plus
//! expected transmissions). In addition to the tree, every node maintains
//!
//! * a **neighbor list** (capacity 32, of which the 12 best-connected are
//!   reported in summaries) with per-neighbor link quality estimated by
//!   snooping the channel and counting gaps in the sequence numbers all
//!   nodes stamp on their outgoing packets, and
//! * a **descendants list** (capacity 32) of nodes whose packets it has
//!   forwarded up the tree, remembering which child branch each descendant
//!   lives under so data and queries can also be routed *down* the tree
//!   (routing rules 3 and 5 in Section 5.4).
//!
//! The types here are pure state machines: they make routing decisions but do
//! not send packets. The simulation harness (`scoop-sim`) owns the send loop.

#![warn(missing_docs)]

pub mod descendants;
pub mod link_estimator;
pub mod neighbor_table;
pub mod router;
pub mod tree;

pub use descendants::DescendantsList;
pub use link_estimator::LinkEstimator;
pub use neighbor_table::{NeighborEntry, NeighborTable};
pub use router::{NextHop, RoutingConfig, RoutingState};
pub use tree::{Beacon, TreeState};
