//! The bounded descendants list.
//!
//! "A node maintains a 'descendants list' of all its children, children's
//! children, and so on, by tracking all nodes on whose behalf it routes
//! packets up the routing tree. This list contains at most n entries (32, in
//! our experiments) and is used for routing data and routing queries."
//! (Section 5.1). Each entry remembers which immediate child branch the
//! descendant was last seen under so that packets can be routed *down* the
//! appropriate branch (routing rule 5).

use scoop_types::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct DescendantEntry {
    descendant: NodeId,
    via_child: NodeId,
    last_seen: SimTime,
}

/// A capacity-bounded map from descendant to the child branch it lives under.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DescendantsList {
    entries: Vec<DescendantEntry>,
    capacity: usize,
}

impl DescendantsList {
    /// Creates an empty list with the given capacity (32 in the paper).
    pub fn new(capacity: usize) -> Self {
        DescendantsList {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of descendants tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no descendants are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The list's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records that a packet originated by `descendant` was received from the
    /// immediate child `via_child` (i.e. we are routing on its behalf).
    ///
    /// When the list is full the least-recently-seen entry is evicted — the
    /// paper notes the routing still works with a full list, just with
    /// "somewhat degraded performance", because packets for unknown
    /// descendants fall back to the parent path (rule 6).
    pub fn note(&mut self, descendant: NodeId, via_child: NodeId, now: SimTime) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.descendant == descendant) {
            e.via_child = via_child;
            e.last_seen = now;
            return;
        }
        let entry = DescendantEntry {
            descendant,
            via_child,
            last_seen: now,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else if let Some(oldest) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_seen)
            .map(|(i, _)| i)
        {
            self.entries[oldest] = entry;
        }
    }

    /// Returns the immediate child to forward to in order to reach
    /// `descendant`, if it is known.
    pub fn next_hop(&self, descendant: NodeId) -> Option<NodeId> {
        self.entries
            .iter()
            .find(|e| e.descendant == descendant)
            .map(|e| e.via_child)
    }

    /// Returns `true` if `descendant` is in the list.
    pub fn contains(&self, descendant: NodeId) -> bool {
        self.next_hop(descendant).is_some()
    }

    /// Forgets every descendant last seen before `cutoff`, and every
    /// descendant reached through `removed_child` if one is given (used when
    /// a child is evicted from the neighbor table).
    pub fn evict(&mut self, cutoff: SimTime, removed_child: Option<NodeId>) {
        self.entries
            .retain(|e| e.last_seen >= cutoff && Some(e.via_child) != removed_child);
    }

    /// All tracked descendant ids.
    pub fn descendants(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.descendant).collect()
    }

    /// Returns `true` if any of `targets` is a known descendant (used by the
    /// query dissemination filter).
    pub fn contains_any<I: IntoIterator<Item = NodeId>>(&self, targets: I) -> bool {
        targets.into_iter().any(|t| self.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_and_next_hop() {
        let mut d = DescendantsList::new(4);
        d.note(NodeId(9), NodeId(3), SimTime::from_secs(1));
        d.note(NodeId(8), NodeId(3), SimTime::from_secs(2));
        d.note(NodeId(7), NodeId(4), SimTime::from_secs(3));
        assert_eq!(d.next_hop(NodeId(9)), Some(NodeId(3)));
        assert_eq!(d.next_hop(NodeId(7)), Some(NodeId(4)));
        assert_eq!(d.next_hop(NodeId(6)), None);
        assert!(d.contains(NodeId(8)));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn renoting_updates_branch_and_timestamp() {
        let mut d = DescendantsList::new(4);
        d.note(NodeId(9), NodeId(3), SimTime::from_secs(1));
        // The descendant moved to a different branch.
        d.note(NodeId(9), NodeId(5), SimTime::from_secs(2));
        assert_eq!(d.len(), 1);
        assert_eq!(d.next_hop(NodeId(9)), Some(NodeId(5)));
    }

    #[test]
    fn capacity_evicts_least_recently_seen() {
        let mut d = DescendantsList::new(2);
        d.note(NodeId(1), NodeId(10), SimTime::from_secs(1));
        d.note(NodeId(2), NodeId(10), SimTime::from_secs(2));
        d.note(NodeId(3), NodeId(10), SimTime::from_secs(3));
        assert_eq!(d.len(), 2);
        assert!(!d.contains(NodeId(1)), "oldest entry should be evicted");
        assert!(d.contains(NodeId(2)));
        assert!(d.contains(NodeId(3)));
    }

    #[test]
    fn evict_by_time_and_child() {
        let mut d = DescendantsList::new(8);
        d.note(NodeId(1), NodeId(10), SimTime::from_secs(1));
        d.note(NodeId(2), NodeId(11), SimTime::from_secs(100));
        d.note(NodeId(3), NodeId(12), SimTime::from_secs(100));
        d.evict(SimTime::from_secs(50), Some(NodeId(12)));
        assert!(!d.contains(NodeId(1)), "stale entry evicted");
        assert!(
            !d.contains(NodeId(3)),
            "entries via the removed child evicted"
        );
        assert!(d.contains(NodeId(2)));
    }

    #[test]
    fn contains_any() {
        let mut d = DescendantsList::new(4);
        d.note(NodeId(5), NodeId(2), SimTime::ZERO);
        assert!(d.contains_any([NodeId(1), NodeId(5)]));
        assert!(!d.contains_any([NodeId(1), NodeId(6)]));
        assert!(!d.contains_any(std::iter::empty()));
    }
}
