//! Passive link-quality estimation by snooping sequence numbers.
//!
//! "A node establishes link-quality from its neighbors by snooping the
//! network and, per neighbor, counting the number of packets it did not
//! receive using a monotonically increasing number that all nodes put in the
//! header of all their outgoing packets." (Section 5.2)

use scoop_types::{NodeId, SeqNo, SimTime};
use std::collections::HashMap;

/// Per-neighbor reception bookkeeping.
#[derive(Clone, Copy, Debug)]
struct LinkRecord {
    last_seqno: SeqNo,
    received: u64,
    missed: u64,
    /// Exponentially weighted reception ratio in `[0, 1]`.
    ewma: f64,
    last_heard: SimTime,
}

/// Sequence-number gaps larger than this are treated as packet reordering
/// (or a neighbor reboot) rather than loss: with wrapping arithmetic a packet
/// that arrives *out of order* would otherwise look like billions of missed
/// packets. Radios reorder over at most a handful of in-flight packets.
const REORDER_WINDOW: u32 = 128;

/// Estimates inbound link quality (the fraction of a neighbor's transmissions
/// this node actually hears) for every neighbor it has ever overheard.
#[derive(Clone, Debug, Default)]
pub struct LinkEstimator {
    records: HashMap<NodeId, LinkRecord>,
    /// EWMA smoothing factor applied per observation.
    alpha: f64,
}

impl LinkEstimator {
    /// Creates an estimator with the default smoothing factor.
    pub fn new() -> Self {
        LinkEstimator {
            records: HashMap::new(),
            alpha: 0.1,
        }
    }

    /// Creates an estimator with an explicit EWMA smoothing factor in
    /// `(0, 1]`; larger values react faster to changes.
    pub fn with_alpha(alpha: f64) -> Self {
        LinkEstimator {
            records: HashMap::new(),
            alpha: alpha.clamp(0.001, 1.0),
        }
    }

    /// Records that a packet from `src` carrying sequence number `seqno` was
    /// heard (whether addressed to us or snooped) at time `now`.
    pub fn observe(&mut self, src: NodeId, seqno: SeqNo, now: SimTime) {
        match self.records.get_mut(&src) {
            None => {
                self.records.insert(
                    src,
                    LinkRecord {
                        last_seqno: seqno,
                        received: 1,
                        missed: 0,
                        ewma: 1.0,
                        last_heard: now,
                    },
                );
            }
            Some(rec) => {
                let gap = seqno.distance_from(rec.last_seqno);
                // gap == 0 is a duplicate; gaps beyond the reorder window are
                // out-of-order arrivals (e.g. a retransmitted packet overtaken
                // by a newer one). Both count as a reception with no misses
                // and do not move the high-water sequence number backwards.
                let reordered = gap == 0 || gap > REORDER_WINDOW;
                let missed_now = if reordered { 0 } else { (gap - 1) as u64 };
                rec.received += 1;
                rec.missed += missed_now;
                if !reordered {
                    rec.last_seqno = seqno;
                }
                rec.last_heard = now;
                // Decay the EWMA once per missed packet (closed form) so
                // bursts of loss push the estimate down, then credit the
                // received packet.
                rec.ewma *= (1.0 - self.alpha).powi(missed_now.min(1_000) as i32);
                rec.ewma = (1.0 - self.alpha) * rec.ewma + self.alpha;
            }
        }
    }

    /// The estimated probability of hearing a transmission from `src`, or
    /// `None` if `src` has never been heard.
    pub fn quality(&self, src: NodeId) -> Option<f64> {
        self.records.get(&src).map(|r| r.ewma)
    }

    /// Long-run reception ratio (received / (received + missed)) for `src`.
    pub fn reception_ratio(&self, src: NodeId) -> Option<f64> {
        self.records.get(&src).map(|r| {
            let total = r.received + r.missed;
            if total == 0 {
                0.0
            } else {
                r.received as f64 / total as f64
            }
        })
    }

    /// Expected number of transmissions for `src` to get one packet through
    /// to us (inverse of quality).
    pub fn etx(&self, src: NodeId) -> Option<f64> {
        self.quality(src)
            .map(|q| if q > 0.0 { 1.0 / q } else { f64::INFINITY })
    }

    /// When `src` was last heard.
    pub fn last_heard(&self, src: NodeId) -> Option<SimTime> {
        self.records.get(&src).map(|r| r.last_heard)
    }

    /// Forgets every neighbor not heard since `cutoff`. Returns the ids that
    /// were evicted.
    pub fn evict_silent_since(&mut self, cutoff: SimTime) -> Vec<NodeId> {
        let stale: Vec<NodeId> = self
            .records
            .iter()
            .filter(|(_, r)| r.last_heard < cutoff)
            .map(|(&n, _)| n)
            .collect();
        for n in &stale {
            self.records.remove(n);
        }
        stale
    }

    /// Every neighbor currently tracked.
    pub fn tracked(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.records.keys().copied()
    }

    /// Number of neighbors tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no neighbor has ever been heard.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_has_quality_one() {
        let mut est = LinkEstimator::new();
        for i in 0..50u32 {
            est.observe(NodeId(3), SeqNo(i), SimTime::from_secs(i as u64));
        }
        let q = est.quality(NodeId(3)).unwrap();
        assert!(q > 0.99, "quality {q}");
        assert_eq!(est.reception_ratio(NodeId(3)), Some(1.0));
        assert!((est.etx(NodeId(3)).unwrap() - 1.0).abs() < 0.02);
    }

    #[test]
    fn gaps_reduce_quality() {
        let mut est = LinkEstimator::with_alpha(0.2);
        // Hear every other packet: seqnos 0, 2, 4, ...
        for i in 0..100u32 {
            est.observe(NodeId(7), SeqNo(i * 2), SimTime::from_secs(i as u64));
        }
        let q = est.quality(NodeId(7)).unwrap();
        assert!((0.3..0.7).contains(&q), "expected ~0.5, got {q}");
        let rr = est.reception_ratio(NodeId(7)).unwrap();
        assert!((rr - 0.5).abs() < 0.02, "reception ratio {rr}");
    }

    #[test]
    fn unknown_neighbor_is_none() {
        let est = LinkEstimator::new();
        assert_eq!(est.quality(NodeId(1)), None);
        assert_eq!(est.etx(NodeId(1)), None);
        assert!(est.is_empty());
    }

    #[test]
    fn duplicate_seqno_does_not_count_as_loss() {
        let mut est = LinkEstimator::new();
        est.observe(NodeId(1), SeqNo(5), SimTime::from_secs(1));
        est.observe(NodeId(1), SeqNo(5), SimTime::from_secs(2));
        assert_eq!(est.reception_ratio(NodeId(1)), Some(1.0));
    }

    #[test]
    fn out_of_order_arrival_is_not_a_giant_loss_burst() {
        let mut est = LinkEstimator::new();
        // Seqno 20 arrives, then an older retransmission (seq 17) overtaken by
        // it. With naive wrapping arithmetic this would look like ~4 billion
        // missed packets.
        est.observe(NodeId(1), SeqNo(20), SimTime::from_secs(1));
        est.observe(NodeId(1), SeqNo(17), SimTime::from_secs(2));
        let q = est.quality(NodeId(1)).unwrap();
        assert!(q > 0.9, "reordering must not crater the estimate, got {q}");
        assert_eq!(est.reception_ratio(NodeId(1)), Some(1.0));
        // Subsequent in-order packets keep working off the high-water mark.
        est.observe(NodeId(1), SeqNo(21), SimTime::from_secs(3));
        assert_eq!(est.reception_ratio(NodeId(1)), Some(1.0));
    }

    #[test]
    fn neighbor_reboot_resets_cleanly() {
        let mut est = LinkEstimator::new();
        est.observe(NodeId(1), SeqNo(1_000_000), SimTime::from_secs(1));
        // The neighbor reboots and starts from zero: far outside the reorder
        // window, so it must not be treated as a billion lost packets.
        est.observe(NodeId(1), SeqNo(0), SimTime::from_secs(2));
        assert_eq!(est.reception_ratio(NodeId(1)), Some(1.0));
        assert!(est.quality(NodeId(1)).unwrap() > 0.9);
    }

    #[test]
    fn eviction_removes_silent_neighbors() {
        let mut est = LinkEstimator::new();
        est.observe(NodeId(1), SeqNo(0), SimTime::from_secs(10));
        est.observe(NodeId(2), SeqNo(0), SimTime::from_secs(100));
        let evicted = est.evict_silent_since(SimTime::from_secs(50));
        assert_eq!(evicted, vec![NodeId(1)]);
        assert_eq!(est.len(), 1);
        assert!(est.quality(NodeId(2)).is_some());
    }

    #[test]
    fn worse_links_have_higher_etx() {
        let mut good = LinkEstimator::with_alpha(0.3);
        let mut bad = LinkEstimator::with_alpha(0.3);
        for i in 0..60u32 {
            good.observe(NodeId(1), SeqNo(i), SimTime::from_secs(i as u64));
            bad.observe(NodeId(1), SeqNo(i * 4), SimTime::from_secs(i as u64));
        }
        assert!(bad.etx(NodeId(1)).unwrap() > good.etx(NodeId(1)).unwrap() * 1.5);
    }
}
