//! The bounded neighbor list.
//!
//! "each node keeps track of the nodes in its direct network neighborhood,
//! independent of the routing tree. This list, too, has a maximum size (32,
//! in our experiments) and is used to optimize routing. A node evicts other
//! nodes from its lists after not hearing from them for a long time"
//! (Section 5.1). Summaries report the node's 12 best-connected neighbors,
//! sorted by link quality (Section 5.2).

use scoop_types::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// One entry in the neighbor table.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// The neighbor's id.
    pub node: NodeId,
    /// Estimated probability of hearing the neighbor's transmissions.
    pub quality: f64,
    /// When the neighbor was last heard.
    pub last_heard: SimTime,
}

/// A capacity-bounded table of radio neighbors ordered by link quality.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NeighborTable {
    entries: Vec<NeighborEntry>,
    capacity: usize,
}

impl NeighborTable {
    /// Creates an empty table holding at most `capacity` neighbors.
    pub fn new(capacity: usize) -> Self {
        NeighborTable {
            entries: Vec::with_capacity(capacity.min(64)),
            capacity: capacity.max(1),
        }
    }

    /// Number of neighbors currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no neighbors are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The table's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if `node` is in the table.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// The entry for `node`, if present.
    pub fn get(&self, node: NodeId) -> Option<NeighborEntry> {
        self.entries.iter().find(|e| e.node == node).copied()
    }

    /// Inserts or refreshes a neighbor observation. When the table is full,
    /// the new neighbor replaces the worst existing entry only if its quality
    /// is higher; otherwise the observation is dropped.
    pub fn observe(&mut self, node: NodeId, quality: f64, now: SimTime) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.node == node) {
            e.quality = quality;
            e.last_heard = now;
        } else if self.entries.len() < self.capacity {
            self.entries.push(NeighborEntry {
                node,
                quality,
                last_heard: now,
            });
        } else if let Some((worst_idx, worst)) = self
            .entries
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.quality.partial_cmp(&b.1.quality).unwrap())
            .map(|(i, e)| (i, *e))
        {
            if quality > worst.quality {
                self.entries[worst_idx] = NeighborEntry {
                    node,
                    quality,
                    last_heard: now,
                };
            }
        }
    }

    /// Removes `node` from the table.
    pub fn remove(&mut self, node: NodeId) {
        self.entries.retain(|e| e.node != node);
    }

    /// Evicts every neighbor not heard since `cutoff`. Returns the evicted ids.
    pub fn evict_silent_since(&mut self, cutoff: SimTime) -> Vec<NodeId> {
        let stale: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|e| e.last_heard < cutoff)
            .map(|e| e.node)
            .collect();
        self.entries.retain(|e| e.last_heard >= cutoff);
        stale
    }

    /// The `k` best-connected neighbors, sorted by descending quality — the
    /// list a summary message reports (k = 12 in the paper).
    pub fn best(&self, k: usize) -> Vec<NeighborEntry> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| b.quality.partial_cmp(&a.quality).unwrap());
        sorted.truncate(k);
        sorted
    }

    /// Iterates over every tracked neighbor (unsorted).
    pub fn iter(&self) -> impl Iterator<Item = &NeighborEntry> {
        self.entries.iter()
    }

    /// All tracked neighbor ids (unsorted).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_get() {
        let mut t = NeighborTable::new(4);
        t.observe(NodeId(1), 0.8, SimTime::from_secs(1));
        t.observe(NodeId(2), 0.5, SimTime::from_secs(2));
        assert_eq!(t.len(), 2);
        assert!(t.contains(NodeId(1)));
        assert_eq!(t.get(NodeId(2)).unwrap().quality, 0.5);
        // Refreshing updates in place rather than duplicating.
        t.observe(NodeId(1), 0.9, SimTime::from_secs(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(NodeId(1)).unwrap().quality, 0.9);
    }

    #[test]
    fn capacity_evicts_worst_only_for_better() {
        let mut t = NeighborTable::new(2);
        t.observe(NodeId(1), 0.9, SimTime::ZERO);
        t.observe(NodeId(2), 0.4, SimTime::ZERO);
        // Worse than both: dropped.
        t.observe(NodeId(3), 0.1, SimTime::ZERO);
        assert!(!t.contains(NodeId(3)));
        // Better than the worst: replaces node 2.
        t.observe(NodeId(4), 0.6, SimTime::ZERO);
        assert!(t.contains(NodeId(4)));
        assert!(!t.contains(NodeId(2)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn best_k_is_sorted_by_quality() {
        let mut t = NeighborTable::new(10);
        for (i, q) in [(1u16, 0.3), (2, 0.9), (3, 0.6), (4, 0.1)] {
            t.observe(NodeId(i), q, SimTime::ZERO);
        }
        let best = t.best(3);
        let ids: Vec<NodeId> = best.iter().map(|e| e.node).collect();
        assert_eq!(ids, vec![NodeId(2), NodeId(3), NodeId(1)]);
    }

    #[test]
    fn eviction_of_silent_neighbors() {
        let mut t = NeighborTable::new(10);
        t.observe(NodeId(1), 0.9, SimTime::from_secs(10));
        t.observe(NodeId(2), 0.9, SimTime::from_secs(200));
        let evicted = t.evict_silent_since(SimTime::from_secs(100));
        assert_eq!(evicted, vec![NodeId(1)]);
        assert!(!t.contains(NodeId(1)));
        assert!(t.contains(NodeId(2)));
    }

    #[test]
    fn remove_is_idempotent() {
        let mut t = NeighborTable::new(4);
        t.observe(NodeId(1), 0.5, SimTime::ZERO);
        t.remove(NodeId(1));
        t.remove(NodeId(1));
        assert!(t.is_empty());
    }
}
