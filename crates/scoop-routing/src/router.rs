//! The per-node routing facade.
//!
//! [`RoutingState`] bundles the tree state, link estimator, neighbor table,
//! and descendants list of one node and exposes the decisions the rest of the
//! system needs: who is my parent, can I reach node X directly, which child
//! branch leads down to X, and which neighbors should my summary report.

use crate::descendants::DescendantsList;
use crate::link_estimator::LinkEstimator;
use crate::neighbor_table::{NeighborEntry, NeighborTable};
use crate::tree::{Beacon, TreeState};
use scoop_net::PacketMeta;
use scoop_types::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the routing layer (capacities and timeouts).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Neighbor table capacity (paper: 32).
    pub neighbor_cap: usize,
    /// Descendants list capacity (paper: 32).
    pub descendants_cap: usize,
    /// How many best-connected neighbors a summary reports (paper: 12).
    pub summary_neighbors: usize,
    /// Neighbors and descendants silent for longer than this are evicted.
    pub stale_timeout: SimDuration,
    /// EWMA smoothing factor for the link estimator.
    pub estimator_alpha: f64,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            neighbor_cap: 32,
            descendants_cap: 32,
            summary_neighbors: 12,
            stale_timeout: SimDuration::from_secs(300),
            estimator_alpha: 0.1,
        }
    }
}

/// Where to send a packet next in order to reach some destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// The destination is this node itself.
    Local,
    /// The destination is a direct radio neighbor; send straight to it
    /// (routing rule 3's shortcut).
    Neighbor(NodeId),
    /// The destination is a known descendant; send down the given child
    /// branch (routing rule 5).
    DownTree(NodeId),
    /// Not known locally; send up to the parent (routing rule 6).
    UpTree(NodeId),
    /// The node is not attached to the tree and has no way to make progress.
    Stuck,
}

/// The complete routing state of one node.
#[derive(Clone, Debug)]
pub struct RoutingState {
    id: NodeId,
    tree: TreeState,
    estimator: LinkEstimator,
    neighbors: NeighborTable,
    descendants: DescendantsList,
    config: RoutingConfig,
}

impl RoutingState {
    /// Creates routing state for node `id`.
    pub fn new(id: NodeId, config: RoutingConfig) -> Self {
        RoutingState {
            id,
            tree: TreeState::new(id),
            estimator: LinkEstimator::with_alpha(config.estimator_alpha),
            neighbors: NeighborTable::new(config.neighbor_cap),
            descendants: DescendantsList::new(config.descendants_cap),
            config,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The routing configuration in use.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Current parent in the routing tree.
    pub fn parent(&self) -> Option<NodeId> {
        self.tree.parent()
    }

    /// Hop distance from the basestation.
    pub fn hops(&self) -> u16 {
        self.tree.hops()
    }

    /// `true` once the node has joined the routing tree.
    pub fn is_attached(&self) -> bool {
        self.tree.is_attached()
    }

    /// The tree-join beacon this node would broadcast right now.
    pub fn my_beacon(&self) -> Beacon {
        self.tree.my_beacon()
    }

    /// Cumulative expected transmissions from this node to the basestation.
    pub fn path_etx(&self) -> f64 {
        self.tree.path_etx()
    }

    /// Records that a packet with header `meta` was heard (addressed or
    /// snooped). Updates the link estimator and neighbor table, and — if the
    /// packet's origin lists us as its parent — the descendants list.
    pub fn observe_packet(&mut self, meta: &PacketMeta, now: SimTime) {
        if meta.link_src == self.id {
            return;
        }
        self.estimator.observe(meta.link_src, meta.seqno, now);
        let quality = self.estimator.quality(meta.link_src).unwrap_or(0.0);
        self.neighbors.observe(meta.link_src, quality, now);
        if meta.origin_parent == Some(self.id) && meta.origin != self.id {
            // The origin is our direct child: it is trivially a descendant
            // reached through itself.
            self.descendants.note(meta.origin, meta.origin, now);
        }
    }

    /// Processes a tree-join beacon heard from `from`.
    /// Returns `true` if the parent changed.
    pub fn on_beacon(&mut self, from: NodeId, beacon: &Beacon, now: SimTime) -> bool {
        let quality = self.estimator.quality(from).unwrap_or(0.0);
        self.tree.on_beacon(from, beacon, quality, now)
    }

    /// Records that this node forwarded a packet up the tree on behalf of
    /// `origin`, which arrived from the immediate child `from_child`.
    pub fn note_routed_up(&mut self, origin: NodeId, from_child: NodeId, now: SimTime) {
        if origin != self.id {
            self.descendants.note(origin, from_child, now);
        }
    }

    /// Declares the current parent unusable after repeated send failures.
    pub fn drop_parent(&mut self) {
        self.tree.drop_parent();
    }

    /// Estimated inbound link quality from `node`, if it has been heard.
    pub fn quality_of(&self, node: NodeId) -> Option<f64> {
        self.estimator.quality(node)
    }

    /// Returns `true` if `node` is currently in the neighbor table.
    pub fn is_neighbor(&self, node: NodeId) -> bool {
        self.neighbors.contains(node)
    }

    /// Returns `true` if `node` is a known descendant.
    pub fn is_descendant(&self, node: NodeId) -> bool {
        self.descendants.contains(node)
    }

    /// The best-connected neighbors to report in a summary message.
    pub fn summary_neighbors(&self) -> Vec<NeighborEntry> {
        self.neighbors.best(self.config.summary_neighbors)
    }

    /// The full neighbor table (bounded at `neighbor_cap`).
    pub fn neighbor_table(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// The descendants list.
    pub fn descendants(&self) -> &DescendantsList {
        &self.descendants
    }

    /// Decides the next hop for a packet that must reach `dst`, applying the
    /// neighbor-shortcut and down-tree rules before falling back to the
    /// parent. `allow_neighbor_shortcut` corresponds to routing rule 3 and
    /// can be disabled for ablation experiments.
    pub fn next_hop_for(&self, dst: NodeId, allow_neighbor_shortcut: bool) -> NextHop {
        if dst == self.id {
            return NextHop::Local;
        }
        if allow_neighbor_shortcut && self.neighbors.contains(dst) {
            return NextHop::Neighbor(dst);
        }
        if let Some(child) = self.descendants.next_hop(dst) {
            return NextHop::DownTree(child);
        }
        match self.parent() {
            Some(p) => NextHop::UpTree(p),
            None => {
                if self.id.is_basestation() {
                    // The basestation has no parent; if it cannot reach the
                    // destination directly or down the tree it is stuck.
                    NextHop::Stuck
                } else {
                    NextHop::Stuck
                }
            }
        }
    }

    /// Periodic maintenance: evicts neighbors and descendants that have been
    /// silent longer than the stale timeout.
    pub fn maintenance(&mut self, now: SimTime) {
        let cutoff = SimTime::from_millis(
            now.as_millis()
                .saturating_sub(self.config.stale_timeout.as_millis()),
        );
        let evicted = self.neighbors.evict_silent_since(cutoff);
        self.estimator.evict_silent_since(cutoff);
        self.descendants.evict(cutoff, None);
        for gone in evicted {
            self.descendants.evict(SimTime::ZERO, Some(gone));
            if self.parent() == Some(gone) {
                self.tree.drop_parent();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_net::LinkDst;
    use scoop_types::{MessageKind, SeqNo};

    fn meta(src: NodeId, origin: NodeId, origin_parent: Option<NodeId>, seq: u32) -> PacketMeta {
        PacketMeta {
            link_src: src,
            link_dst: LinkDst::Broadcast,
            origin,
            origin_parent,
            seqno: SeqNo(seq),
            kind: MessageKind::Data,
            hops: 0,
        }
    }

    fn hear(rs: &mut RoutingState, from: NodeId, n: u32) {
        for i in 0..n {
            rs.observe_packet(&meta(from, from, None, i), SimTime::from_secs(i as u64));
        }
    }

    #[test]
    fn observing_packets_builds_neighbor_table() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        hear(&mut rs, NodeId(2), 10);
        hear(&mut rs, NodeId(3), 10);
        assert!(rs.is_neighbor(NodeId(2)));
        assert!(rs.is_neighbor(NodeId(3)));
        assert!(!rs.is_neighbor(NodeId(9)));
        assert!(rs.quality_of(NodeId(2)).unwrap() > 0.5);
    }

    #[test]
    fn beacon_attaches_and_next_hop_defaults_to_parent() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        hear(&mut rs, NodeId(1), 20);
        let attached = rs.on_beacon(
            NodeId(1),
            &Beacon {
                hops: 0,
                path_etx: 0.0,
                parent: None,
            },
            SimTime::from_secs(30),
        );
        assert!(attached);
        assert_eq!(rs.parent(), Some(NodeId(1)));
        assert_eq!(rs.hops(), 1);
        // An unknown destination goes up the tree.
        assert_eq!(
            rs.next_hop_for(NodeId(40), true),
            NextHop::UpTree(NodeId(1))
        );
    }

    #[test]
    fn beacons_from_unheard_nodes_are_ignored() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        let attached = rs.on_beacon(
            NodeId(1),
            &Beacon {
                hops: 0,
                path_etx: 0.0,
                parent: None,
            },
            SimTime::from_secs(1),
        );
        assert!(
            !attached,
            "cannot attach over a link with no quality estimate"
        );
    }

    #[test]
    fn neighbor_shortcut_and_descendant_routing() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        hear(&mut rs, NodeId(1), 10);
        rs.on_beacon(
            NodeId(1),
            &Beacon {
                hops: 0,
                path_etx: 0.0,
                parent: None,
            },
            SimTime::from_secs(20),
        );
        hear(&mut rs, NodeId(7), 10);
        rs.note_routed_up(NodeId(30), NodeId(7), SimTime::from_secs(25));

        // A direct neighbor takes the shortcut (rule 3)...
        assert_eq!(
            rs.next_hop_for(NodeId(7), true),
            NextHop::Neighbor(NodeId(7))
        );
        // ...unless the shortcut is disabled, in which case it is still a
        // descendant of nobody so it goes up the tree.
        assert_eq!(
            rs.next_hop_for(NodeId(7), false),
            NextHop::UpTree(NodeId(1))
        );
        // Known descendants go down the right branch (rule 5).
        assert_eq!(
            rs.next_hop_for(NodeId(30), true),
            NextHop::DownTree(NodeId(7))
        );
        // Our own id is local (rule 2).
        assert_eq!(rs.next_hop_for(NodeId(5), true), NextHop::Local);
    }

    #[test]
    fn children_are_learned_from_origin_parent_header() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        rs.observe_packet(
            &meta(NodeId(9), NodeId(9), Some(NodeId(5)), 0),
            SimTime::from_secs(1),
        );
        assert!(rs.is_descendant(NodeId(9)));
        assert_eq!(
            rs.next_hop_for(NodeId(9), false),
            NextHop::DownTree(NodeId(9))
        );
    }

    #[test]
    fn unattached_node_with_no_route_is_stuck() {
        let rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        assert_eq!(rs.next_hop_for(NodeId(9), true), NextHop::Stuck);
    }

    #[test]
    fn basestation_routes_down_only() {
        let mut rs = RoutingState::new(NodeId::BASESTATION, RoutingConfig::default());
        rs.observe_packet(
            &meta(NodeId(2), NodeId(2), Some(NodeId(0)), 0),
            SimTime::from_secs(1),
        );
        assert_eq!(
            rs.next_hop_for(NodeId(2), false),
            NextHop::DownTree(NodeId(2))
        );
        assert_eq!(rs.next_hop_for(NodeId(99), false), NextHop::Stuck);
        assert!(rs.is_attached());
    }

    #[test]
    fn maintenance_evicts_stale_parent_and_neighbors() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        hear(&mut rs, NodeId(1), 5);
        rs.on_beacon(
            NodeId(1),
            &Beacon {
                hops: 0,
                path_etx: 0.0,
                parent: None,
            },
            SimTime::from_secs(5),
        );
        assert!(rs.is_attached());
        // A long time passes with no traffic from node 1.
        rs.maintenance(SimTime::from_secs(2000));
        assert!(!rs.is_neighbor(NodeId(1)));
        assert!(
            !rs.is_attached(),
            "losing the parent neighbor detaches the node"
        );
    }

    #[test]
    fn summary_neighbors_limited_and_sorted() {
        let cfg = RoutingConfig {
            summary_neighbors: 2,
            ..RoutingConfig::default()
        };
        let mut rs = RoutingState::new(NodeId(5), cfg);
        hear(&mut rs, NodeId(1), 30);
        // Node 2 is heard with many gaps: lower quality.
        for i in 0..10u32 {
            rs.observe_packet(
                &meta(NodeId(2), NodeId(2), None, i * 5),
                SimTime::from_secs(i as u64),
            );
        }
        hear(&mut rs, NodeId(3), 30);
        let best = rs.summary_neighbors();
        assert_eq!(best.len(), 2);
        assert!(best.iter().all(|e| e.node != NodeId(2)));
    }

    #[test]
    fn own_packets_are_not_observed() {
        let mut rs = RoutingState::new(NodeId(5), RoutingConfig::default());
        rs.observe_packet(&meta(NodeId(5), NodeId(5), None, 0), SimTime::from_secs(1));
        assert!(rs.neighbor_table().is_empty());
    }
}
